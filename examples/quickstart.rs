//! Quickstart: the session-based optimizer API on a small module.
//!
//! Builds a function with a cold call-bearing region, configures one
//! [`spillopt::Session`], optimizes the module while streaming
//! per-function progress, and prints what each technique would insert.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spillopt::{FunctionReport, OptimizerBuilder, ProfileSource, Provenance, Strategy};
use spillopt_ir::{BinOp, Callee, Cond, FuncId, FunctionBuilder, Module, Reg};

fn main() {
    // A procedure where the expensive work (a call with a live value
    // across it) happens only on a rare path.
    let mut fb = FunctionBuilder::new("quickstart", 1);
    let entry = fb.create_block(Some("entry"));
    let rare = fb.create_block(Some("rare"));
    let join = fb.create_block(Some("join"));
    fb.switch_to(entry);
    let x = fb.param(0);
    let mask = fb.bin_imm(BinOp::And, Reg::Virt(x), 63);
    let one = fb.li(1);
    // Taken edge jumps over the rare block.
    fb.branch(Cond::Ge, Reg::Virt(mask), Reg::Virt(one), join, rare);
    fb.switch_to(rare);
    let kept = fb.bin_imm(BinOp::Mul, Reg::Virt(x), 3); // lives across the call
    let r = fb.call(Callee::External(0), &[Reg::Virt(x)]);
    let mixed = fb.bin(BinOp::Xor, Reg::Virt(kept), Reg::Virt(r));
    let slot = fb.new_slot();
    fb.store(Reg::Virt(mixed), slot);
    fb.switch_to(join);
    fb.ret(Some(Reg::Virt(x)));

    let mut module = Module::new("demo");
    let fid: FuncId = module.add_func(fb.finish());

    // One session: target + profile source + thread count, validated
    // once. The profile executes the function on a training workload.
    let session = OptimizerBuilder::new()
        .target_named("pa-risc-like")
        .profile(ProfileSource::Workload(
            (0..200).map(|input| (fid, vec![input])).collect(),
        ))
        .threads(1)
        .build()
        .expect("valid configuration");

    // Optimize, streaming per-function reports as they retire.
    let observer = |target: &str, module: &str, report: &FunctionReport, prov: Provenance| {
        println!(
            "retired {module}::{} on {target} ({} blocks, {} callee-saved regs) [{}]",
            report.name,
            report.blocks,
            report.callee_saved,
            prov.name()
        );
    };
    let run = session
        .optimize_observed(&module, &observer)
        .expect("pipeline runs");

    // Compare what each technique would insert.
    for f in &run.report.functions {
        for s in &f.strategies {
            println!(
                "\n{}: predicted dynamic cost {}, {} save/restore instruction(s)",
                s.strategy.name(),
                s.cost,
                s.static_count
            );
            for pt in s.placement.points() {
                println!("  {pt}");
            }
        }
        if let Some(best) = f.best {
            println!("\nbest for {}: {}", f.name, best.name());
        }
    }

    // Materialize the winner (hier-jump here) and show the module-level
    // summary the CLI prints.
    let optimized = run.apply(Some(Strategy::HierJump));
    println!(
        "\noptimized module has {} function(s); speedup over entry/exit: {}",
        optimized.num_funcs(),
        run.report
            .speedup()
            .map_or("n/a".to_string(), |x| format!("{x:.2}x"))
    );
}
