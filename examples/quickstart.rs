//! Quickstart: optimize callee-saved save/restore placement for one
//! procedure.
//!
//! Builds a small function with a cold region, profiles it, runs all
//! placement techniques, and prints what each would insert.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spillopt_core::{
    chow_shrink_wrap, entry_exit_placement, hierarchical_placement, placement_cost,
    CalleeSavedUsage, CostModel,
};
use spillopt_ir::{BinOp, Callee, Cfg, Cond, FuncId, FunctionBuilder, Module, Reg, Target};
use spillopt_profile::Machine;
use spillopt_pst::Pst;
use spillopt_regalloc::allocate;

fn main() {
    let target = Target::default(); // PA-RISC-like: 24 GPRs, 13 callee-saved

    // A procedure where the expensive work (a call with a live value
    // across it) happens only on a rare path.
    let mut fb = FunctionBuilder::new("quickstart", 1);
    let entry = fb.create_block(Some("entry"));
    let rare = fb.create_block(Some("rare"));
    let join = fb.create_block(Some("join"));
    fb.switch_to(entry);
    let x = fb.param(0);
    let mask = fb.bin_imm(BinOp::And, Reg::Virt(x), 63);
    let one = fb.li(1);
    // Taken edge jumps over the rare block.
    fb.branch(Cond::Ge, Reg::Virt(mask), Reg::Virt(one), join, rare);
    fb.switch_to(rare);
    let kept = fb.bin_imm(BinOp::Mul, Reg::Virt(x), 3); // lives across the call
    let r = fb.call(Callee::External(0), &[Reg::Virt(x)]);
    let mixed = fb.bin(BinOp::Xor, Reg::Virt(kept), Reg::Virt(r));
    let slot = fb.new_slot();
    fb.store(Reg::Virt(mixed), slot);
    fb.switch_to(join);
    fb.ret(Some(Reg::Virt(x)));
    let func = fb.finish();

    // Profile it on a few inputs.
    let mut module = Module::new("demo");
    let fid: FuncId = module.add_func(func);
    let mut machine = Machine::new(&module, &target);
    for input in 0..200 {
        machine.call(fid, &[input]).expect("runs");
    }
    let profile = machine.edge_profile(fid);

    // Allocate registers; the call-crossing value lands in a callee-saved
    // register.
    let mut allocated = module.func(fid).clone();
    allocate(&mut allocated, &target, Some(&profile));
    let cfg = Cfg::compute(&allocated);
    let usage = CalleeSavedUsage::from_function(&allocated, &cfg, &target);
    println!("callee-saved registers used: {}", usage.num_regs());

    // Compare placements.
    let pst = Pst::compute(&cfg);
    let baseline = entry_exit_placement(&cfg, &usage);
    let shrinkwrap = chow_shrink_wrap(&cfg, &usage);
    let optimized =
        hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::JumpEdge).placement;

    for (name, p) in [
        ("entry/exit ", &baseline),
        ("shrink-wrap", &shrinkwrap),
        ("hierarchical", &optimized),
    ] {
        let cost = placement_cost(CostModel::JumpEdge, &cfg, &profile, p);
        println!("\n{name}: predicted dynamic cost {cost}");
        for pt in p.points() {
            println!("  {pt}");
        }
    }
}
