//! Runs a subset of the synthetic SPEC CPU2000 suite end to end and
//! prints the Table-1-style ratios.
//!
//! ```sh
//! cargo run --release --example spec_subset [bench ...]
//! ```

use spillopt_harness::runner::{run_named_benchmark, Technique};
use spillopt_ir::Target;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["mcf", "gzip", "crafty"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let target = Target::default();
    for name in names {
        match run_named_benchmark(name, &target) {
            Ok(r) => {
                println!(
                    "{:>8}: optimized {:>6.1}%  shrinkwrap {:>6.1}%  \
                     (baseline overhead {}, {} of {} functions use callee-saved regs)",
                    r.name,
                    r.ratio(Technique::Optimized) * 100.0,
                    r.ratio(Technique::Shrinkwrap) * 100.0,
                    r.of(Technique::Baseline).dynamic_overhead,
                    r.funcs_with_callee_saved,
                    r.funcs,
                );
            }
            Err(e) => eprintln!("{name}: FAILED: {e}"),
        }
    }
}
