//! Using the library as a compiler developer would: write IR in the text
//! format, run the full backend pipeline on it, and inspect the physically
//! transformed program.
//!
//! ```sh
//! cargo run --example custom_pass
//! ```

use spillopt_core::{
    check_placement, hierarchical_placement, insert_placement, CalleeSavedUsage, CostModel,
};
use spillopt_ir::{parse_function, Cfg, Module, RegDiscipline, Target};
use spillopt_profile::Machine;
use spillopt_pst::Pst;
use spillopt_regalloc::allocate;

const SOURCE: &str = r#"
func @hot_loop(2) {
block entry:
  v0 = mov r1          ; n
  v1 = mov r2          ; seed
  v2 = li 0            ; i
  v3 = li 0            ; acc
block header:
  br ge v2, v0, cold, body
block body:
  v3 = add v3, v1
  v1 = mul v1, 1103515245
  v1 = add v1, 12345
  v1 = shr v1, 7
  v2 = add v2, 1
  jmp header
block cold:
  v4 = and v3, 127
  v5 = li 1
  br ge v4, v5, exit, rare
block rare:
  r1 = mov v3
  r0 = call ext:1(r1)
  v6 = mov r0
  v3 = xor v3, v6
  jmp exit
block exit:
  r0 = mov v3
  ret r0
}
"#;

fn main() {
    let func = parse_function(SOURCE).expect("valid IR");
    println!("--- input ---\n{func}");

    let target = Target::default();
    let mut module = Module::new("custom");
    let fid = module.add_func(func);

    // Profile.
    let mut vm = Machine::new(&module, &target);
    for n in [10i64, 100, 1000] {
        vm.call(fid, &[n, 42]).expect("runs");
    }
    let profile = vm.edge_profile(fid);
    let reference = {
        let mut m = Machine::new(&module, &target);
        m.call(fid, &[500, 7]).unwrap()
    };

    // Allocate and place.
    let mut compiled = module.clone();
    let result = allocate(compiled.func_mut(fid), &target, Some(&profile));
    println!(
        "allocation: {} rounds, {} spills, callee-saved {:?}",
        result.iterations, result.spilled_vregs, result.used_callee_saved
    );
    let cfg = Cfg::compute(compiled.func(fid));
    let usage = CalleeSavedUsage::from_function(compiled.func(fid), &cfg, &target);
    let pst = Pst::compute(&cfg);
    let placement =
        hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::JumpEdge).placement;
    assert!(check_placement(&cfg, &usage, &placement).is_empty());
    let report = insert_placement(compiled.func_mut(fid), &cfg, &placement);
    println!(
        "inserted {} save/restore instructions ({} new blocks, {} extra jumps)",
        report.num_spill_insts, report.new_blocks, report.added_jumps
    );
    assert!(spillopt_ir::verify_function(compiled.func(fid), RegDiscipline::Physical).is_empty());
    println!("\n--- compiled ---\n{}", compiled.func(fid));

    // Behaviour is unchanged.
    let mut m = Machine::new(&compiled, &target);
    let got = m.call(fid, &[500, 7]).unwrap();
    assert_eq!(got, reference);
    println!(
        "behaviour preserved (result {got}); dynamic callee-saved overhead: {}",
        m.counts().callee_save_overhead()
    );
}
