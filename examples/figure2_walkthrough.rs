//! The paper's worked example (Figures 2-4), traced region by region.
//!
//! ```sh
//! cargo run --example figure2_walkthrough
//! ```
//!
//! Prints the reconstructed CFG, the costs of the entry/exit and
//! shrink-wrapping placements (200 and 250), and the hierarchical
//! algorithm's decisions under both cost models — reproducing every number
//! from Section 4 of the paper.

fn main() {
    print!("{}", spillopt_harness::experiments::fig2_walkthrough());
    println!();
    print!("{}", spillopt_harness::experiments::fig1());
}
