//! Jump-block insertion on critical edges, across targets.
//!
//! The paper's jump-edge cost model prices the jump instruction a
//! critical jump edge needs; these tests pin the physical realization
//! (`ir::edit::place_on_edge` + `core::insert_placement`) and the
//! shared-jump-cost accounting (`core::EdgeShares`) under the `tiny`
//! test target and the concrete x86-64 / AArch64 conventions.

use spillopt_core::{
    insert_placement, spill_point_cost, Cost, CostModel, EdgeShares, Placement, SaveRestoreSet,
    SpillKind, SpillLoc, SpillPoint,
};
use spillopt_ir::{
    edit, verify_function, Cfg, Cond, DenseBitSet, Function, FunctionBuilder, PReg, Reg,
    RegDiscipline, Target,
};
use spillopt_targets::{aarch64_aapcs64, spec_by_name, x86_64_sysv};

/// A -> {B fall, C taken}; B -> D (jump); C -> D (jump); D -> {B taken,
/// E fall}. B has two predecessors and D two successors, so D->B is a
/// critical jump edge needing a jump block.
fn critical_edge_func(name: &str) -> (Function, spillopt_ir::BlockId, spillopt_ir::BlockId) {
    let mut fb = FunctionBuilder::new(name, 0);
    let a = fb.create_block(Some("A"));
    let b = fb.create_block(Some("B"));
    let c = fb.create_block(Some("C"));
    let d = fb.create_block(Some("D"));
    let e = fb.create_block(Some("E"));
    fb.switch_to(a);
    let x = fb.li(0);
    fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
    fb.switch_to(b);
    fb.jump(d);
    fb.switch_to(c);
    fb.jump(d);
    fb.switch_to(d);
    fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), b, e);
    fb.switch_to(e);
    fb.ret(None);
    (fb.finish(), a, b)
}

/// Two callee-saved registers of `target` restored on the same critical
/// jump edge share one jump block and one jump instruction.
fn assert_shared_jump_block(target: &Target, regs: [PReg; 2]) {
    let (mut f, a, b) = critical_edge_func("f");
    let cfg = Cfg::compute(&f);
    let d = spillopt_ir::BlockId::from_index(3);
    let db = cfg.edge_between(d, b).expect("d->b edge");
    assert!(
        cfg.needs_jump_block(db),
        "d->b must be a critical jump edge"
    );
    for r in regs {
        assert!(
            target.is_callee_saved(r),
            "{r} not callee-saved on {}",
            target.name()
        );
    }

    let placement = Placement::from_points(vec![
        SpillPoint {
            reg: regs[0],
            kind: SpillKind::Save,
            loc: SpillLoc::BlockTop(a),
        },
        SpillPoint {
            reg: regs[1],
            kind: SpillKind::Save,
            loc: SpillLoc::BlockTop(a),
        },
        SpillPoint {
            reg: regs[0],
            kind: SpillKind::Restore,
            loc: SpillLoc::OnEdge(db),
        },
        SpillPoint {
            reg: regs[1],
            kind: SpillKind::Restore,
            loc: SpillLoc::OnEdge(db),
        },
    ]);
    let report = insert_placement(&mut f, &cfg, &placement);
    assert_eq!(report.num_spill_insts, 4);
    assert_eq!(report.new_blocks, 1, "both registers share one edge block");
    assert_eq!(report.added_jumps, 1, "one jump serves both registers");
    assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
}

#[test]
fn tiny_target_shares_the_jump_block() {
    let target = Target::tiny();
    assert_shared_jump_block(&target, [PReg::new(2), PReg::new(3)]);
}

#[test]
fn x86_64_sysv_shares_the_jump_block() {
    let spec = x86_64_sysv();
    let target = spec.to_target();
    // r9 = rbx, r10 = rbp under the spec's numbering.
    assert_shared_jump_block(&target, [PReg::new(9), PReg::new(10)]);
}

#[test]
fn place_on_edge_adds_the_jump_exactly_once() {
    let (mut f, _, b) = critical_edge_func("g");
    let cfg = Cfg::compute(&f);
    let d = spillopt_ir::BlockId::from_index(3);
    let db = cfg.edge_between(d, b).expect("d->b edge");
    let nop = spillopt_ir::Inst::new(spillopt_ir::InstKind::LoadImm {
        dst: Reg::Virt(spillopt_ir::VReg::from_index(1)),
        imm: 0,
    });
    f.reserve_vregs(2);
    match edit::place_on_edge(&mut f, &cfg, db, vec![nop.clone(), nop]) {
        edit::EdgePlacement::NewBlock { block, added_jump } => {
            assert!(added_jump);
            // Two payload instructions plus exactly one terminating jump.
            let insts = &f.block(block).insts;
            assert_eq!(insts.len(), 3);
            assert!(insts[2].is_terminator());
        }
        other => panic!("expected a jump block, got {other:?}"),
    }
    assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
}

/// The paper's rule: the jump instruction's cost on a shared edge is
/// divided among all callee-saved registers with initial locations
/// there. `EdgeShares` supplies the divisor; on pairing targets it also
/// supplies the `stp`/`ldp` divisor for co-located saves.
#[test]
fn edge_shares_split_the_jump_cost() {
    let (f, _, b) = critical_edge_func("h");
    let cfg = Cfg::compute(&f);
    let d = spillopt_ir::BlockId::from_index(3);
    let db = cfg.edge_between(d, b).expect("d->b edge");
    let mut counts = vec![0u64; cfg.num_edges()];
    counts[db.index()] = 12;
    let profile = spillopt_profile::EdgeProfile::new(&cfg, counts, 0);

    let tiny = spec_by_name("tiny").expect("tiny is resolvable by name");
    let mk = |reg: u8| SaveRestoreSet {
        reg: PReg::new(reg),
        points: vec![SpillPoint {
            reg: PReg::new(reg),
            kind: SpillKind::Restore,
            loc: SpillLoc::OnEdge(db),
        }],
        cluster: DenseBitSet::new(cfg.num_blocks()),
        initial: true,
    };
    let sets = [mk(2), mk(3)];
    let shares = EdgeShares::from_sets(&sets);
    assert_eq!(shares.share(SpillLoc::OnEdge(db)), 2);

    // Tiny (unit costs, no pairing): each register pays its restore (12)
    // plus half the jump (6).
    let each = sets[0].cost_with(CostModel::JumpEdge, &tiny.costs, &cfg, &profile, &shares);
    assert_eq!(each, Cost::from_count(12) + Cost::from_fraction(12, 2));
    // Together the two registers pay the whole jump exactly once.
    let both = each + sets[1].cost_with(CostModel::JumpEdge, &tiny.costs, &cfg, &profile, &shares);
    assert_eq!(both, Cost::from_count(12 + 12 + 12));

    // AArch64: the co-located restores additionally share one `ldp`, so
    // each pays half the load and half the jump.
    let a64 = aarch64_aapcs64();
    assert_eq!(
        shares.pair_share(SpillLoc::OnEdge(db), SpillKind::Restore, 2),
        2
    );
    let paired = sets[0].cost_with(CostModel::JumpEdge, &a64.costs, &cfg, &profile, &shares);
    assert_eq!(
        paired,
        Cost::from_fraction(12, 2) + Cost::from_fraction(12, 2)
    );

    // The same accounting through the point-level entry point.
    let pt = spill_point_cost(
        CostModel::JumpEdge,
        &a64.costs,
        &cfg,
        &profile,
        SpillKind::Restore,
        SpillLoc::OnEdge(db),
        2,
        2,
    );
    assert_eq!(pt, paired);
}
