//! Property-based tests over randomly generated programs: the paper's
//! guarantees and the pipeline's invariants must hold for *every* input,
//! not just the worked example.

use proptest::prelude::*;
use spillopt_benchgen::{emit_function, gen_body, EmitConfig, ShapeConfig, Style};
use spillopt_core::{
    check_placement, chow_shrink_wrap, entry_exit_placement, hierarchical_placement,
    insert_placement, modified_shrink_wrap, placement_cost, CalleeSavedUsage, CostModel,
};
use spillopt_ir::{Cfg, Module, RegDiscipline, Target};
use spillopt_profile::Machine;
use spillopt_pst::{verify_pst, Pst};
use spillopt_regalloc::allocate;

/// A deterministic generated function + profile + usage, driven by a
/// proptest seed.
fn build_case(
    seed: u64,
    style: Style,
    budget: usize,
) -> Option<(
    spillopt_ir::Function,
    Cfg,
    spillopt_profile::EdgeProfile,
    CalleeSavedUsage,
)> {
    use rand::SeedableRng as _;
    let target = Target::default();
    let shape = ShapeConfig {
        budget,
        loop_prob: 0.35,
        else_prob: 0.5,
        cold_if_prob: 0.3,
        goto_prob: 0.1,
        call_prob: 0.15,
        loop_trip: (2, 8),
        max_depth: 3,
    };
    let cfg = EmitConfig {
        shape: shape.clone(),
        pressure: 6,
        num_params: 2,
        data_slots: 3,
        style,
        num_handlers: (seed % 3) as usize,
        handler_goto_frac: 0.6,
        hot_segment_calls: (seed % 2) as usize,
        crossing_frac: 0.2,
        cold_crossing: 0.7,
        cold_sites: (seed % 2) as usize,
    };
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let body = gen_body(&shape, &mut rng, 0);
    let mut func = emit_function("case", &target, &cfg, &body, 0, seed ^ 0xf00d);
    let mut module = Module::new("m");
    let profile = {
        let fid = module.add_func(func.clone());
        let mut vm = Machine::new(&module, &target);
        vm.set_fuel(1 << 24);
        for k in 0..4 {
            vm.call(fid, &[seed as i64 ^ k, k * 17 + 1]).ok()?;
        }
        vm.edge_profile(fid)
    };
    allocate(&mut func, &target, Some(&profile));
    let cfg = Cfg::compute(&func);
    let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
    if usage.is_empty() {
        return None;
    }
    Some((func, cfg, profile, usage))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every technique produces a *valid* placement on every generated
    /// program.
    #[test]
    fn all_placements_are_valid(seed in 0u64..10_000, mem in proptest::bool::ANY) {
        let style = if mem { Style::Memory } else { Style::Register };
        if let Some((_f, cfg, profile, usage)) = build_case(seed, style, 24) {
            let pst = Pst::compute(&cfg);
            let placements = [
                entry_exit_placement(&cfg, &usage),
                chow_shrink_wrap(&cfg, &usage),
                modified_shrink_wrap(&cfg, &usage).placement(),
                hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::ExecutionCount)
                    .placement,
                hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::JumpEdge)
                    .placement,
            ];
            for p in &placements {
                let errs = check_placement(&cfg, &usage, p);
                prop_assert!(errs.is_empty(), "invalid placement: {errs:?}");
            }
        }
    }

    /// The paper's guarantee: the hierarchical placement never costs more
    /// than entry/exit or shrink-wrapping, under the model it optimizes.
    #[test]
    fn hierarchical_never_worse(seed in 0u64..10_000, mem in proptest::bool::ANY) {
        let style = if mem { Style::Memory } else { Style::Register };
        if let Some((_f, cfg, profile, usage)) = build_case(seed, style, 24) {
            let pst = Pst::compute(&cfg);
            for model in [CostModel::ExecutionCount, CostModel::JumpEdge] {
                let hier = hierarchical_placement(&cfg, &pst, &usage, &profile, model).placement;
                let eval = |p: &spillopt_core::Placement| placement_cost(model, &cfg, &profile, p);
                let h = eval(&hier);
                let ee = eval(&entry_exit_placement(&cfg, &usage));
                let sw = eval(&chow_shrink_wrap(&cfg, &usage));
                prop_assert!(h <= ee, "{model:?}: {h:?} > entry/exit {ee:?}");
                prop_assert!(h <= sw, "{model:?}: {h:?} > shrink-wrap {sw:?}");
            }
        }
    }

    /// The PST of every generated CFG satisfies its structural invariants.
    #[test]
    fn pst_invariants_hold(seed in 0u64..10_000) {
        if let Some((_f, cfg, _p, _u)) = build_case(seed, Style::Memory, 30) {
            let pst = Pst::compute(&cfg);
            let errs = verify_pst(&cfg, &pst);
            prop_assert!(errs.is_empty(), "{errs:?}");
        }
    }

    /// End to end: allocation plus hierarchical placement preserves
    /// program behaviour exactly, and the convention check passes.
    #[test]
    fn behaviour_preserved_end_to_end(seed in 0u64..10_000) {
        use rand::SeedableRng as _;
        let target = Target::default();
        let shape = ShapeConfig {
            budget: 20,
            loop_prob: 0.3,
            else_prob: 0.5,
            cold_if_prob: 0.3,
            goto_prob: 0.08,
            call_prob: 0.1,
            loop_trip: (2, 6),
            max_depth: 3,
        };
        let emit_cfg = EmitConfig {
            shape: shape.clone(),
            pressure: 7,
            num_params: 2,
            data_slots: 2,
            style: Style::Memory,
            num_handlers: 1,
            handler_goto_frac: 0.5,
            hot_segment_calls: 1,
            crossing_frac: 0.3,
            cold_crossing: 0.7,
            cold_sites: 1,
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let body = gen_body(&shape, &mut rng, 0);
        let func = emit_function("e2e", &target, &emit_cfg, &body, 0, seed);
        let mut module = Module::new("m");
        let fid = module.add_func(func);

        let mut vm = Machine::new(&module, &target);
        vm.set_fuel(1 << 24);
        let inputs: Vec<[i64; 2]> = (0..3).map(|k| [seed as i64 + k, 31 * k + 5]).collect();
        let mut reference = Vec::new();
        for args in &inputs {
            match vm.call(fid, args) {
                Ok(v) => reference.push(v),
                Err(_) => return Ok(()), // fuel-bound outlier; skip
            }
        }
        let profile = vm.edge_profile(fid);

        let mut placed = module.clone();
        allocate(placed.func_mut(fid), &target, Some(&profile));
        let cfg = Cfg::compute(placed.func(fid));
        let usage = CalleeSavedUsage::from_function(placed.func(fid), &cfg, &target);
        if !usage.is_empty() {
            let pst = Pst::compute(&cfg);
            let placement =
                hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::JumpEdge)
                    .placement;
            insert_placement(placed.func_mut(fid), &cfg, &placement);
        }
        prop_assert!(
            spillopt_ir::verify_function(placed.func(fid), RegDiscipline::Physical).is_empty()
        );
        let mut pm = Machine::new(&placed, &target);
        pm.set_fuel(1 << 24);
        for (k, args) in inputs.iter().enumerate() {
            let got = pm.call(fid, args);
            prop_assert_eq!(got.as_ref().ok(), Some(&reference[k]));
        }
    }
}
