//! Workspace-level reproduction checks: the paper's analytical results,
//! exercised through the public crate APIs the way a downstream user
//! would.

use spillopt_core::{
    chow_shrink_wrap, entry_exit_placement, fig1_example, hierarchical_placement, paper_example,
    placement_model_cost, Cost, CostModel, EdgeShares,
};
use spillopt_pst::Pst;

#[test]
fn figure2_headline_numbers() {
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    let cost = |p: &spillopt_core::Placement| {
        placement_model_cost(
            CostModel::ExecutionCount,
            &ex.cfg,
            &ex.profile,
            p,
            &EdgeShares::none(),
        )
    };
    assert_eq!(
        cost(&entry_exit_placement(&ex.cfg, &ex.usage)),
        Cost::from_count(200)
    );
    assert_eq!(
        cost(&chow_shrink_wrap(&ex.cfg, &ex.usage)),
        Cost::from_count(250)
    );
    let exec = hierarchical_placement(
        &ex.cfg,
        &pst,
        &ex.usage,
        &ex.profile,
        CostModel::ExecutionCount,
    );
    assert_eq!(cost(&exec.placement), Cost::from_count(190));
    let jump = hierarchical_placement(&ex.cfg, &pst, &ex.usage, &ex.profile, CostModel::JumpEdge);
    assert_eq!(jump.placement, entry_exit_placement(&ex.cfg, &ex.usage));
}

#[test]
fn figure1_crossover_depends_on_profile() {
    // The paper's Figure 1 point: with both arms shaded, shrink-wrapping
    // beats entry/exit iff the shaded blocks execute rarely enough.
    let entry = 100u64;
    let cost_of = |busy: u64| {
        let ex = fig1_example(entry, busy);
        let sw = chow_shrink_wrap(&ex.cfg, &ex.usage);
        let ee = entry_exit_placement(&ex.cfg, &ex.usage);
        let eval = |p: &spillopt_core::Placement| {
            placement_model_cost(
                CostModel::ExecutionCount,
                &ex.cfg,
                &ex.profile,
                p,
                &EdgeShares::none(),
            )
        };
        (eval(&sw), eval(&ee))
    };
    // Cold arms: shrink-wrapping wins.
    let (sw, ee) = cost_of(10);
    assert!(sw < ee, "{sw:?} vs {ee:?}");
    // Hot arms (both execute half the time): shrink-wrapping loses or
    // ties; each arm costs 2*50 and entry/exit costs 200.
    let (sw, ee) = cost_of(50);
    assert!(sw >= ee, "{sw:?} vs {ee:?}");
    // The hierarchical algorithm with a profile picks the better of the
    // two every time.
    for busy in [0, 10, 25, 50] {
        let ex = fig1_example(entry, busy);
        let pst = Pst::compute(&ex.cfg);
        let hier = hierarchical_placement(
            &ex.cfg,
            &pst,
            &ex.usage,
            &ex.profile,
            CostModel::ExecutionCount,
        );
        let eval = |p: &spillopt_core::Placement| {
            placement_model_cost(
                CostModel::ExecutionCount,
                &ex.cfg,
                &ex.profile,
                p,
                &EdgeShares::none(),
            )
        };
        let h = eval(&hier.placement);
        let (sw, ee) = cost_of(busy);
        assert!(h <= sw && h <= ee, "busy={busy}: {h:?} vs {sw:?}/{ee:?}");
    }
}

#[test]
fn walkthrough_experiment_renders() {
    // The harness's textual walkthrough contains the paper's numbers.
    let out = spillopt_harness::experiments::fig2_walkthrough();
    for needle in ["200", "250", "190", "replace", "keep"] {
        assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
    }
}
