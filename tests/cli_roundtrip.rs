//! End-to-end CLI round-trip: module text → `spillopt optimize` →
//! parseable optimized module, and `spillopt report` → deterministic
//! JSON, driving the real binary.

use spillopt_ir::{
    display, parse_module, Callee, Cond, FunctionBuilder, Module, Reg, RegDiscipline,
};
use std::path::PathBuf;
use std::process::Command;

/// A small module whose functions keep values live across calls, so the
/// allocator must use callee-saved registers and the placement pass has
/// real work to do.
fn sample_module() -> Module {
    let mut module = Module::new("sample");
    for i in 0..3 {
        let mut fb = FunctionBuilder::new(format!("f{i}"), 2);
        let entry = fb.create_block(Some("entry"));
        let cold = fb.create_block(Some("cold"));
        let join = fb.create_block(Some("join"));
        fb.switch_to(entry);
        let a = fb.li(10 + i);
        let b = fb.li(3);
        // Taken edge to `join` (b < a always holds), falling through to
        // the never-executed `cold` block, which is next in layout.
        fb.branch(Cond::Lt, Reg::Virt(b), Reg::Virt(a), join, cold);
        fb.switch_to(cold);
        // A value live across a call: forces callee-saved usage here.
        let _ = fb.call(Callee::External(0), &[]);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(Some(Reg::Virt(a)));
        module.add_func(fb.finish());
    }
    module
}

fn spillopt(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spillopt"))
        .args(args)
        .output()
        .expect("spawn spillopt")
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spillopt-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn optimize_round_trips_through_text() {
    let module = sample_module();
    let input = temp_path("input.ir");
    let output = temp_path("optimized.ir");
    std::fs::write(&input, display::module_to_string(&module)).expect("write input");

    let out = spillopt(&[
        "optimize",
        "--input",
        input.to_str().unwrap(),
        "--out",
        output.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "optimize failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The optimized text parses back into a physical, verifier-clean
    // module with the same function count.
    let text = std::fs::read_to_string(&output).expect("read optimized");
    let optimized = parse_module(&text).expect("parse optimized");
    assert_eq!(optimized.num_funcs(), module.num_funcs());
    for f in optimized.func_ids() {
        let errs = spillopt_ir::verify_function(optimized.func(f), RegDiscipline::Physical);
        assert!(errs.is_empty(), "{:?}", errs);
    }

    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&output);
}

#[test]
fn report_json_is_deterministic_across_thread_counts() {
    let module = sample_module();
    let input = temp_path("report-input.ir");
    std::fs::write(&input, display::module_to_string(&module)).expect("write input");

    let mut reports = Vec::new();
    for threads in ["1", "4"] {
        let out = spillopt(&[
            "report",
            "--input",
            input.to_str().unwrap(),
            "--compact",
            "--threads",
            threads,
        ]);
        assert!(
            out.status.success(),
            "report failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        reports.push(String::from_utf8(out.stdout).expect("utf8"));
    }
    assert_eq!(reports[0], reports[1], "report depends on thread count");
    assert!(reports[0].contains(r#""module":"sample""#));
    assert!(reports[0].contains(r#""strategy":"hier-jump""#));

    let _ = std::fs::remove_file(&input);
}

#[test]
fn bad_usage_exits_with_code_two() {
    let out = spillopt(&["optimize"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
