//! Ordering guarantees of the streaming [`Observer`]:
//!
//! 1. every function retires **exactly once** per optimized module;
//! 2. every `function_retired` for a module precedes that module's
//!    `module_done`;
//! 3. both hold under a multi-threaded `optimize_many` batch, where
//!    retirement order itself is completion order and deliberately
//!    unspecified.
//!
//! The observer here records a totally ordered event log behind one
//! mutex — the lock serializes concurrent callbacks, so "precedes" is
//! well-defined even when workers race.

use spillopt::{FunctionReport, ModuleReport, Observer, OptimizerBuilder, Provenance};
use spillopt_sync::Mutex;
use std::collections::HashMap;

#[derive(Debug)]
enum Event {
    Retired { module: String, function: String },
    ModuleDone { module: String, functions: usize },
}

#[derive(Default)]
struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl Observer for EventLog {
    fn function_retired(
        &self,
        _target: &str,
        module: &str,
        report: &FunctionReport,
        _provenance: Provenance,
    ) {
        self.events.lock().unwrap().push(Event::Retired {
            module: module.to_string(),
            function: report.name.clone(),
        });
    }

    fn module_done(&self, report: &ModuleReport) {
        self.events.lock().unwrap().push(Event::ModuleDone {
            module: report.module.clone(),
            functions: report.functions.len(),
        });
    }
}

impl EventLog {
    fn into_events(self) -> Vec<Event> {
        self.events.into_inner().unwrap()
    }
}

/// Stress-generated modules (distinct names: `stress{seed}`).
fn corpus(seeds: std::ops::Range<u64>) -> Vec<spillopt_ir::Module> {
    let target = spillopt_targets::pa_risc_like().to_target();
    seeds
        .map(|seed| spillopt_stress::gen_case_scaled(&target, seed, 2).module)
        .collect()
}

/// Checks invariants 1 and 2 against one module's worth of events.
fn check_module(events: &[Event], module_name: &str, expected_functions: usize) {
    let mut retired: HashMap<&str, usize> = HashMap::new();
    let mut done_at: Option<usize> = None;
    let mut last_retire_at = 0;
    for (i, event) in events.iter().enumerate() {
        match event {
            Event::Retired { module, function } if module == module_name => {
                *retired.entry(function).or_default() += 1;
                last_retire_at = i;
            }
            Event::ModuleDone { module, functions } if module == module_name => {
                assert!(done_at.is_none(), "module_done twice for {module_name}");
                assert_eq!(
                    *functions, expected_functions,
                    "module_done saw a partial report for {module_name}"
                );
                done_at = Some(i);
            }
            _ => {}
        }
    }
    assert_eq!(
        retired.len(),
        expected_functions,
        "{module_name}: not every function retired"
    );
    for (function, count) in &retired {
        assert_eq!(
            *count, 1,
            "{module_name}::{function} retired {count} times, expected exactly once"
        );
    }
    let done_at = done_at.unwrap_or_else(|| panic!("no module_done for {module_name}"));
    assert!(
        last_retire_at < done_at,
        "{module_name}: a function_retired (index {last_retire_at}) came after \
         module_done (index {done_at})"
    );
}

#[test]
fn serial_optimize_retires_each_function_once_before_module_done() {
    let module = &corpus(0..1)[0];
    let session = OptimizerBuilder::new()
        .target_named("pa-risc-like")
        .threads(1)
        .build()
        .expect("valid session");
    let log = EventLog::default();
    let run = session.optimize_observed(module, &log).expect("optimize");
    let events = log.into_events();
    check_module(&events, module.name(), run.report.functions.len());
    assert_eq!(
        events.len(),
        run.report.functions.len() + 1,
        "stray events: {events:?}"
    );
}

#[test]
fn threaded_optimize_many_keeps_per_module_ordering() {
    let modules = corpus(0..6);
    let session = OptimizerBuilder::new()
        .target_named("pa-risc-like")
        .threads(4)
        .build()
        .expect("valid session");
    let log = EventLog::default();
    let runs = session
        .optimize_many_observed(&modules, &log)
        .expect("batch optimize");
    let events = log.into_events();
    for (module, run) in modules.iter().zip(&runs) {
        check_module(&events, module.name(), run.report.functions.len());
    }
    let done_count = events
        .iter()
        .filter(|e| matches!(e, Event::ModuleDone { .. }))
        .count();
    assert_eq!(done_count, modules.len());
}

#[test]
fn warm_repeat_preserves_the_ordering_guarantees() {
    // Arena hits retire through a different code path (the cached
    // outcome short-circuits the pipeline); the observer contract must
    // not change with arena temperature.
    let modules = corpus(0..3);
    let session = OptimizerBuilder::new()
        .target_named("pa-risc-like")
        .threads(2)
        .build()
        .expect("valid session");
    session.optimize_many(&modules).expect("cold batch");
    let log = EventLog::default();
    let runs = session
        .optimize_many_observed(&modules, &log)
        .expect("warm batch");
    assert!(
        session.stats().arena.hits > 0,
        "warm repeat never hit the arena"
    );
    let events = log.into_events();
    for (module, run) in modules.iter().zip(&runs) {
        check_module(&events, module.name(), run.report.functions.len());
    }
}
