//! Repo lint: every crate gets its synchronization primitives and
//! thread entry points from `spillopt-sync`, never from `std::sync` /
//! `std::thread` directly.
//!
//! The facade is what makes the workspace model-checkable: in normal
//! builds it re-exports std at zero cost, and under `--features model`
//! the same names become scheduling points of the deterministic
//! interleaving explorer (see `crates/sync`). A direct `std::sync`
//! import silently removes that code from the model's view, so this
//! test fails the build for any such import outside `crates/sync`
//! itself. Running as a tier-1 test makes the rule self-enforcing; CI
//! surfaces it as a named step too.

use std::path::{Path, PathBuf};

/// Directories scanned for Rust sources, relative to the workspace
/// root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches", "shims"];

/// The one place allowed to name std primitives: the facade itself
/// (its wrappers delegate to std by design).
const ALLOWED_PREFIX: &str = "crates/sync/";

/// Substrings that indicate a direct std concurrency dependency. The
/// `::`-suffixed forms catch paths (`std::sync::Mutex`,
/// `std::thread::spawn`); `use std::sync` / `use std::thread` catch
/// bare module imports (`use std::thread;`).
const FORBIDDEN: &[&str] = &[
    "std::sync::",
    "std::thread::",
    "use std::sync",
    "use std::thread",
];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Build products never carry source obligations.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_direct_std_sync_outside_the_facade() {
    let root = workspace_root();
    let mut sources = Vec::new();
    for scan in SCAN_ROOTS {
        rust_sources(&root.join(scan), &mut sources);
    }
    assert!(
        sources.iter().any(|p| p.ends_with("src/pool.rs")),
        "lint scanned no known sources - wrong workspace root?"
    );

    let mut offenses = Vec::new();
    for path in sources {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        // The facade delegates to std by design; this file holds the
        // patterns as literals.
        if rel.starts_with(ALLOWED_PREFIX) || rel == "tests/facade_lint.rs" {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (lineno, line) in text.lines().enumerate() {
            if let Some(pat) = FORBIDDEN.iter().find(|pat| line.contains(**pat)) {
                offenses.push(format!(
                    "  {rel}:{}: `{pat}` - import it from spillopt_sync instead",
                    lineno + 1
                ));
            }
        }
    }

    assert!(
        offenses.is_empty(),
        "direct std::sync/std::thread use outside crates/sync \
         (the facade is what keeps the workspace model-checkable):\n{}",
        offenses.join("\n")
    );
}
