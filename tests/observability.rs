//! Shape validation for the observability surface (PR 7):
//!
//! * `spillopt bench --trace FILE` writes valid Chrome Trace Event JSON
//!   (loadable by Perfetto / `chrome://tracing`) with spans for every
//!   core pipeline phase and counters for arena hits and solver
//!   fixpoint iterations;
//! * `spillopt bench --json` carries the per-phase breakdown section;
//! * `spillopt stats --json` follows its documented schema;
//! * `spillopt optimize --trace FILE` records a one-shot run.
//!
//! The workspace is dependency-free, so the checks parse JSON with the
//! minimal recursive-descent parser below instead of `serde_json`. All
//! trace-content assertions are *presence* checks (never exact counts):
//! the recorder is process-global and a concurrently running test may
//! add events to an active recording — it can never remove them.

use spillopt_driver::cli::run;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Minimal JSON parser (object/array/string/number/bool/null, the string
// escapes the workspace's writers emit).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(HashMap<String, Value>),
}

impl Value {
    fn get(&self, key: &str) -> &Value {
        match self {
            Value::Obj(map) => map
                .get(key)
                .unwrap_or_else(|| panic!("missing key `{key}` in {self:?}")),
            other => panic!("`{key}` looked up on non-object {other:?}"),
        }
    }

    fn has(&self, key: &str) -> bool {
        matches!(self, Value::Obj(map) if map.contains_key(key))
    }

    fn str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Value {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).expect("unexpected end of JSON")
    }

    fn eat(&mut self, b: u8) {
        assert_eq!(
            self.peek(),
            b,
            "expected `{}` at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn value(&mut self) -> Value {
        self.skip_ws();
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Value::Str(self.string()),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Value {
        assert!(
            self.bytes[self.pos..].starts_with(lit.as_bytes()),
            "bad literal at byte {}",
            self.pos
        );
        self.pos += lit.len();
        v
    }

    fn number(&mut self) -> Value {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Value::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number `{text}`")),
        )
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.peek() {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            self.pos += 4;
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            out.push(char::from_u32(code).expect("bad code point"));
                        }
                        other => panic!("unknown escape `\\{}`", other as char),
                    }
                }
                _ => {
                    // Multibyte UTF-8 passes through byte by byte; the
                    // final String::from_utf8 via as_bytes stays valid
                    // because we only split at ASCII delimiters.
                    let start = self.pos;
                    while !matches!(self.peek(), b'"' | b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn array(&mut self) -> Value {
        self.eat(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Value::Arr(items);
        }
        loop {
            items.push(self.value());
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Value::Arr(items);
                }
                other => panic!("expected `,` or `]`, got `{}`", other as char),
            }
        }
    }

    fn object(&mut self) -> Value {
        self.eat(b'{');
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Value::Obj(map);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.skip_ws();
            self.eat(b':');
            map.insert(key, self.value());
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Value::Obj(map);
                }
                other => panic!("expected `,` or `}}`, got `{}`", other as char),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn run_cli(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    run(&args, &mut buf).unwrap_or_else(|e| panic!("cli failed on {args:?}: {e:?}"));
    String::from_utf8(buf).expect("utf8 cli output")
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("spillopt-observability-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Spans every pipeline run must record: the per-function umbrella, the
/// eager analyses, the lazy analyses, the solver, one placement
/// technique per strategy, and validation.
const CORE_PHASES: &[&str] = &[
    "function",
    "allocate",
    "cfg",
    "liveness",
    "callee_saved_usage",
    "sccs",
    "pst",
    "derived_cfg",
    "solver_fixpoint",
    "place_entry_exit",
    "place_chow",
    "place_hier_exec",
    "place_hier_jump",
    "validate",
];

/// Validates the Chrome Trace Event envelope and returns (span names,
/// final counter values — last `C` event per name wins, matching how
/// trace viewers display counter tracks).
fn check_chrome_trace(trace: &Value) -> (Vec<String>, HashMap<String, f64>) {
    let events = trace.get("traceEvents").arr();
    assert!(!events.is_empty(), "empty traceEvents");
    assert_eq!(trace.get("displayTimeUnit").str(), "ms");
    let mut spans = Vec::new();
    let mut counters = HashMap::new();
    for event in events {
        let ph = event.get("ph").str();
        let name = event.get("name").str().to_string();
        event.get("pid").num();
        event.get("tid").num();
        match ph {
            "X" => {
                assert!(event.get("ts").num() >= 0.0);
                assert!(event.get("dur").num() >= 0.0);
                spans.push(name);
            }
            "C" => {
                assert!(event.get("ts").num() >= 0.0);
                let value = event.get("args").get("value").num();
                counters.insert(name, value);
            }
            "M" => assert!(event.has("args"), "metadata event without args"),
            other => panic!("unexpected event phase `{other}`"),
        }
    }
    (spans, counters)
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

/// `bench --trace` + `bench --json` in one run: the trace file is valid
/// Chrome Trace Event JSON with every core phase and the arena/solver
/// counters; the JSON record carries the `phases` breakdown.
#[test]
fn bench_trace_and_json_phase_breakdown() {
    let trace_path = temp_path("bench.trace.json");
    let json_path = temp_path("bench.json");
    run_cli(&[
        "bench",
        "--smoke",
        "--functions",
        "8",
        "--reps",
        "1",
        "--json",
        "--trace",
        trace_path.to_str().unwrap(),
        "--out",
        json_path.to_str().unwrap(),
    ]);

    // --- the trace file ---
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let trace = parse_json(&trace_text);
    let (spans, counters) = check_chrome_trace(&trace);
    for phase in CORE_PHASES {
        assert!(
            spans.iter().any(|s| s == phase),
            "trace has no `{phase}` span (spans: {spans:?})"
        );
    }
    for counter in ["arena_hit", "arena_miss", "solver_fixpoint_iters"] {
        let value = counters
            .get(counter)
            .unwrap_or_else(|| panic!("trace has no `{counter}` counter: {counters:?}"));
        assert!(*value > 0.0, "counter `{counter}` is zero");
    }

    // --- the JSON record ---
    let record = parse_json(&std::fs::read_to_string(&json_path).expect("record written"));
    assert_eq!(record.get("schema_version").num(), 2.0);
    assert_eq!(record.get("reports_identical"), &Value::Bool(true));
    let phases = record.get("phases").arr();
    assert!(!phases.is_empty(), "empty phases breakdown");
    for phase in phases {
        for key in ["phase", "count", "total_ms", "p50_ms", "p95_ms", "max_ms"] {
            assert!(phase.has(key), "phase entry missing `{key}`: {phase:?}");
        }
        assert!(phase.get("count").num() >= 1.0);
        assert!(phase.get("max_ms").num() >= phase.get("p50_ms").num());
    }
    for phase in ["function", "solver_fixpoint", "validate"] {
        assert!(
            phases.iter().any(|p| p.get("phase").str() == phase),
            "phases breakdown has no `{phase}`"
        );
    }
    assert!(record.get("counters").get("arena_hit").num() > 0.0);
    assert!(record.get("counters").get("solver_fixpoint_iters").num() > 0.0);
}

/// The `stats --json` schema: envelope, phase table, counters, arena
/// ledger, pool workers.
#[test]
fn stats_json_schema() {
    let out = run_cli(&["stats", "--bench", "mcf", "--threads", "1", "--json"]);
    let stats = parse_json(&out);
    assert_eq!(stats.get("report").str(), "stats");
    assert_eq!(stats.get("schema_version").num(), 1.0);
    assert_eq!(stats.get("module").str(), "mcf");
    assert_eq!(stats.get("target").str(), "pa-risc-like");
    assert_eq!(stats.get("runs").num(), 3.0);
    let functions = stats.get("functions").num();
    assert!(functions > 0.0);
    assert!(stats.get("elapsed_ms").num() > 0.0);

    let phases = stats.get("phases").arr();
    for phase in ["function", "cfg", "liveness"] {
        assert!(
            phases.iter().any(|p| p.get("phase").str() == phase),
            "stats has no `{phase}` phase"
        );
    }
    for phase in phases {
        for key in ["phase", "count", "total_ms", "p50_ms", "p95_ms", "max_ms"] {
            assert!(phase.has(key), "phase entry missing `{key}`: {phase:?}");
        }
    }

    // Cold + warm + drifted through the arena: the ledger must show a
    // full warm pass (hits >= functions), no more misses than cold
    // lookups, and an incremental re-fold of strictly fewer regions
    // than the whole-function total on the drifted pass.
    let hits = stats.get("arena").get("hits").num();
    let misses = stats.get("arena").get("misses").num();
    assert!(hits >= functions, "warm pass missed the arena: {out}");
    assert!(misses <= functions, "too many cold misses: {out}");
    assert!(stats.get("counters").get("arena_hit").num() >= functions);
    assert!(
        stats.get("arena").get("incremental").num() > 0.0,
        "drifted pass skipped the incremental path: {out}"
    );
    let refolded = stats.get("arena").get("regions_refolded").num();
    let total = stats.get("arena").get("regions_total").num();
    assert!(
        refolded > 0.0 && refolded < total,
        "dirty-region ledger not partial ({refolded}/{total}): {out}"
    );

    // threads=1 runs inline: no persistent pool workers.
    assert_eq!(stats.get("pool_workers").arr().len(), 0);
}

/// `stats` with a worker pool reports per-worker activity.
#[test]
fn stats_json_reports_pool_workers() {
    let out = run_cli(&["stats", "--bench", "mcf", "--threads", "2", "--json"]);
    let stats = parse_json(&out);
    let workers = stats.get("pool_workers").arr();
    assert_eq!(workers.len(), 2, "expected 2 workers: {out}");
    for w in workers {
        for key in ["items", "busy_ms", "idle_ms"] {
            assert!(w.has(key), "worker entry missing `{key}`: {w:?}");
        }
    }
    let items: f64 = workers.iter().map(|w| w.get("items").num()).sum();
    assert!(
        items >= stats.get("functions").num(),
        "workers processed fewer items than one run's functions: {out}"
    );
}

/// A one-shot `optimize --trace` records the run: the trace validates
/// and covers the analysis phases.
#[test]
fn optimize_trace_records_the_pipeline() {
    let trace_path = temp_path("optimize.trace.json");
    let ir_path = temp_path("optimize.out.ir");
    run_cli(&[
        "optimize",
        "--bench",
        "mcf",
        "--threads",
        "1",
        "--trace",
        trace_path.to_str().unwrap(),
        "--out",
        ir_path.to_str().unwrap(),
    ]);
    let trace = parse_json(&std::fs::read_to_string(&trace_path).expect("trace written"));
    let (spans, _) = check_chrome_trace(&trace);
    for phase in ["function", "cfg", "liveness", "validate"] {
        assert!(
            spans.iter().any(|s| s == phase),
            "optimize trace has no `{phase}` span"
        );
    }
}
