//! Differential tests for the session-based API redesign: the new
//! `OptimizerBuilder`/`Session` facade must be **byte-identical** to the
//! deprecated free-function entry points it replaces, and a warm session
//! must answer exactly like a cold one.
//!
//! This file (with `tests/differential_solver.rs`) is the sanctioned
//! caller of the deprecated shims — the comparison is its purpose.
#![allow(deprecated)]

use spillopt::{OptimizerBuilder, ProfileSource};
use spillopt_driver::{cross_target_runs, optimize_module, optimize_module_for, DriverConfig};
use spillopt_ir::Target;
use spillopt_targets::registry;

/// Stress-generated modules for one target (the adversarial corpus the
/// SPEC stand-ins never produce).
fn stress_modules(
    target: &Target,
    seeds: std::ops::Range<u64>,
    scale: u32,
) -> Vec<spillopt_ir::Module> {
    seeds
        .map(|seed| spillopt_stress::gen_case_scaled(target, seed, scale).module)
        .collect()
}

/// The acceptance gate of the redesign: on every registered target, the
/// deprecated `optimize_module_for` shim and the new `Session` produce
/// byte-identical `ModuleReport` JSON over stress-generated modules.
#[test]
fn session_matches_deprecated_shims_byte_for_byte_on_every_target() {
    let config = DriverConfig {
        threads: 1,
        profile: ProfileSource::default(),
    };
    for spec in registry() {
        let target = spec.to_target();
        let session = OptimizerBuilder::new()
            .target_spec(spec.clone())
            .threads(1)
            .build()
            .expect("valid session");
        for (seed, module) in stress_modules(&target, 0..4, 2).iter().enumerate() {
            let old = optimize_module_for(module, &spec, &config).expect("deprecated shim");
            let new = session.optimize(module).expect("session");
            assert_eq!(
                old.report.to_json().to_compact(),
                new.report.to_json().to_compact(),
                "facade diverged from shim: target {} seed {seed}",
                spec.name
            );
        }
    }
}

/// The preset-target shim (`optimize_module`, unit costs) against a
/// session built from the same preset `Target`.
#[test]
fn session_matches_deprecated_preset_target_shim() {
    let target = Target::default();
    let config = DriverConfig {
        threads: 1,
        profile: ProfileSource::default(),
    };
    let session = OptimizerBuilder::new()
        .target(target.clone())
        .threads(1)
        .build()
        .expect("valid session");
    for module in stress_modules(&target, 0..4, 2) {
        let old = optimize_module(&module, &target, &config).expect("deprecated shim");
        let new = session.optimize(&module).expect("session");
        assert_eq!(
            old.report.to_json().to_compact(),
            new.report.to_json().to_compact()
        );
    }
}

/// `Session::cross_target` against the deprecated `cross_target_runs`,
/// over the same loader.
#[test]
fn session_cross_target_matches_deprecated_fan_out() {
    let specs = registry();
    let load = |spec: &spillopt_targets::TargetSpec| {
        let module = spillopt_stress::gen_case_scaled(&spec.to_target(), 7, 2).module;
        Ok((module, ProfileSource::default()))
    };
    let old = cross_target_runs(&specs, 2, load).expect("deprecated fan-out");
    let session = OptimizerBuilder::new()
        .all_targets()
        .threads(2)
        .build()
        .expect("valid session");
    let new = session.cross_target(load).expect("session fan-out");
    assert_eq!(old.to_json().to_compact(), new.to_json().to_compact());
}

/// Warm-session batching: `optimize_many` over N modules must equal N
/// independent `optimize` calls, byte for byte — and a *warm* repeat
/// must be served from the arena without changing a byte.
#[test]
fn optimize_many_equals_independent_optimize_calls() {
    let spec = spillopt_targets::pa_risc_like();
    let target = spec.to_target();
    let modules = stress_modules(&target, 0..6, 2);

    let batch_session = OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(4)
        .build()
        .expect("valid session");
    let batch = batch_session
        .optimize_many(&modules)
        .expect("batch optimize");
    assert_eq!(batch.len(), modules.len());

    for (module, run) in modules.iter().zip(&batch) {
        // A fresh session per module: fully independent calls.
        let independent = OptimizerBuilder::new()
            .target_spec(spec.clone())
            .threads(1)
            .build()
            .expect("valid session")
            .optimize(module)
            .expect("independent optimize");
        assert_eq!(
            independent.report.to_json().to_compact(),
            run.report.to_json().to_compact(),
            "optimize_many diverged from an independent optimize"
        );
    }

    // Warm repeat on the batch session: every function is served from
    // the arena, byte-identically. `Session::stats` gives the exact
    // ledger: one lookup per function per batch, so two batches make
    // `2 * functions` lookups; the warm batch may not miss once, and
    // the cold batch may only *hit* where the corpus repeats a
    // function body verbatim.
    let functions: usize = modules.iter().map(|m| m.num_funcs()).sum();
    let warm = batch_session
        .optimize_many(&modules)
        .expect("warm batch optimize");
    let stats = batch_session.stats();
    assert_eq!(
        stats.arena.hits + stats.arena.misses,
        2 * functions as u64,
        "unexpected lookup count: {stats:?}"
    );
    assert!(
        stats.arena.hits >= functions as u64,
        "warm batch missed the arena: {stats:?} over {functions} functions"
    );
    assert!(
        stats.arena.misses <= functions as u64,
        "more misses than cold lookups: {stats:?}"
    );
    for (cold, hot) in batch.iter().zip(&warm) {
        assert_eq!(
            cold.report.to_json().to_compact(),
            hot.report.to_json().to_compact(),
            "warm batch changed report bytes"
        );
    }
}
