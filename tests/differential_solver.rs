//! Differential property tests: the word-parallel/dense rewrites must be
//! decision-for-decision identical to the retired per-register reference
//! implementations, over stress-generated modules.
//!
//! Layers covered, innermost out:
//!
//! 1. the bit-parallel saved-region solver against the per-register
//!    growth of `spillopt_core::dataflow` (the retired solver, kept as
//!    the oracle);
//! 2. the whole placement suite (Chow, both hierarchical variants,
//!    predicted costs, traces) against
//!    `spillopt_core::reference::run_suite_priced_reference`;
//! 3. the word-parallel validator against the per-register one (as
//!    violation sets);
//! 4. the end-to-end module pipeline — profile, allocation, analyses,
//!    suite, report — against the frozen pre-rewrite pipeline
//!    (`spillopt_driver::refimpl`), as `ModuleReport` JSON bytes.
//!
//! The same equality gate runs at module scale inside `spillopt bench`
//! on every CI run; these tests keep the per-layer diagnosis sharp.
//!
//! This file (with `tests/session_facade.rs`) is the sanctioned caller
//! of the deprecated pre-session entry points: the shims must stay
//! byte-identical to the paths that replaced them until they are
//! removed.
#![allow(deprecated)]

use spillopt_core::{CalleeSavedUsage, RegWords};
use spillopt_driver::driver::{optimize_module_for, DriverConfig, ProfileSource};
use spillopt_driver::refimpl::optimize_module_reference;
use spillopt_ir::analysis::loops::sccs;
use spillopt_ir::{Cfg, DerivedCfg};
use spillopt_profile::random_walk_profile;
use spillopt_pst::Pst;
use spillopt_targets::{registry, TargetSpec};

/// Allocated stress functions with their profiles, for per-layer checks.
fn allocated_functions(
    spec: &TargetSpec,
    seeds: std::ops::Range<u64>,
    scale: u32,
) -> Vec<(spillopt_ir::Function, spillopt_profile::EdgeProfile)> {
    let target = spec.to_target();
    let mut out = Vec::new();
    for seed in seeds {
        let case = spillopt_stress::gen_case_scaled(&target, seed, scale);
        for (i, f) in case.module.func_ids().enumerate() {
            let mut func = case.module.func(f).clone();
            let cfg = Cfg::compute(&func);
            let profile = random_walk_profile(&cfg, 128, 256, seed * 31 + i as u64);
            spillopt_regalloc::allocate(&mut func, &target, Some(&profile));
            out.push((func, profile));
        }
    }
    out
}

#[test]
fn bit_parallel_solver_matches_per_register_on_stress_modules() {
    let spec = spillopt_targets::pa_risc_like();
    let target = spec.to_target();
    let mut checked_regs = 0usize;
    for (func, _) in allocated_functions(&spec, 0..6, 1) {
        let cfg = Cfg::compute(&func);
        let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
        if usage.is_empty() {
            continue;
        }
        let cyclic = sccs(&cfg);
        let derived = DerivedCfg::compute(&cfg);
        let mut words = RegWords::from_busy(cfg.num_blocks(), &usage).expect("<= 64 registers");
        spillopt_core::solver::chow_grow_all(&derived, cfg.entry().index(), &cyclic, &mut words);
        for (bit, (_, busy)) in usage.regs().enumerate() {
            let reference = spillopt_core::dataflow::chow_grow(&cfg, &cyclic, busy);
            assert_eq!(
                words.project(bit),
                reference,
                "register bit {bit} of `{}` diverged",
                func.name()
            );
            checked_regs += 1;
        }
    }
    assert!(checked_regs > 0, "no callee-saved registers exercised");
}

#[test]
fn suite_and_validator_match_reference_on_stress_modules() {
    for spec in registry() {
        let target = spec.to_target();
        for (func, profile) in allocated_functions(&spec, 0..4, 1) {
            let cfg = Cfg::compute(&func);
            let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
            if usage.is_empty() {
                continue;
            }
            let cyclic = sccs(&cfg);
            let pst = Pst::compute(&cfg);
            let fast =
                spillopt_core::run_suite_priced(&cfg, &cyclic, &pst, &usage, &profile, &spec.costs);
            let slow = spillopt_core::reference::run_suite_priced_reference(
                &cfg,
                &cyclic,
                &pst,
                &usage,
                &profile,
                &spec.costs,
            );
            assert_eq!(fast.entry_exit, slow.entry_exit);
            assert_eq!(fast.chow, slow.chow, "`{}` chow diverged", func.name());
            assert_eq!(
                fast.hierarchical_exec.placement,
                slow.hierarchical_exec.placement,
                "`{}` hier-exec diverged",
                func.name()
            );
            assert_eq!(
                fast.hierarchical_jump.placement,
                slow.hierarchical_jump.placement,
                "`{}` hier-jump diverged",
                func.name()
            );
            assert_eq!(fast.predicted, slow.predicted);
            assert_eq!(
                fast.hierarchical_jump.trace.len(),
                slow.hierarchical_jump.trace.len()
            );
            for (a, b) in fast
                .hierarchical_jump
                .trace
                .iter()
                .zip(&slow.hierarchical_jump.trace)
            {
                assert_eq!((a.region, a.reg, a.replaced), (b.region, b.reg, b.replaced));
                assert_eq!(a.contained_cost, b.contained_cost);
                assert_eq!(a.boundary_cost, b.boundary_cost);
            }
            // Validator agreement, as sets (list order interleaves
            // registers differently).
            for placement in [
                &fast.entry_exit,
                &fast.chow,
                &fast.hierarchical_jump.placement,
            ] {
                let fe = spillopt_core::check_placement(&cfg, &usage, placement);
                let se =
                    spillopt_core::reference::check_placement_reference(&cfg, &usage, placement);
                assert_eq!(fe.len(), se.len());
                for e in &fe {
                    assert!(se.contains(e), "validator-only violation {e:?}");
                }
            }
        }
    }
}

#[test]
fn module_reports_are_byte_identical_to_frozen_pipeline() {
    let config = DriverConfig {
        threads: 1,
        profile: ProfileSource::default(),
    };
    for spec in registry() {
        let target = spec.to_target();
        // A few small cases plus one scaled-up module-sized case.
        for (seed, scale) in [(0, 1), (1, 1), (2, 1), (3, 4)] {
            let case = spillopt_stress::gen_case_scaled(&target, seed, scale);
            let current = optimize_module_for(&case.module, &spec, &config).expect("current");
            let reference =
                optimize_module_reference(&case.module, &spec, &config).expect("reference");
            assert_eq!(
                current.report.to_json().to_compact(),
                reference.report.to_json().to_compact(),
                "report bytes diverged: target {} seed {seed} scale {scale}",
                spec.name
            );
        }
    }
}
