//! End-to-end checks over the synthetic SPEC suite (a fast subset; the
//! full Figure 5 / Table 1 run lives in the `repro` binary).

use spillopt_harness::runner::{run_named_benchmark, Technique};
use spillopt_ir::Target;

#[test]
fn mcf_has_trivial_callee_saved_overhead() {
    // Paper: "The graph-coloring register allocator is often able to
    // perform a register allocation that uses only the caller-saved
    // registers" — ratios are 100%/100%.
    let r = run_named_benchmark("mcf", &Target::default()).expect("pipeline");
    assert!((r.ratio(Technique::Optimized) - 1.0).abs() < 1e-9);
    assert!((r.ratio(Technique::Shrinkwrap) - 1.0).abs() < 1e-9);
    assert!(
        r.funcs_with_callee_saved * 4 <= r.funcs,
        "mcf should rarely use callee-saved registers: {}/{}",
        r.funcs_with_callee_saved,
        r.funcs
    );
}

#[test]
fn gzip_shows_the_papers_shape() {
    // Optimized wins; shrink-wrapping is counterproductive (ratio > 1).
    let r = run_named_benchmark("gzip", &Target::default()).expect("pipeline");
    let opt = r.ratio(Technique::Optimized);
    let sw = r.ratio(Technique::Shrinkwrap);
    assert!(opt < 1.0, "optimized must win: {opt}");
    assert!(sw > 1.0, "shrink-wrapping must lose to entry/exit: {sw}");
    assert!(opt <= sw + 1e-9);
}

#[test]
fn crafty_shows_a_large_optimized_win() {
    // Paper: > 50% reduction for crafty while shrink-wrapping manages 7%.
    let r = run_named_benchmark("crafty", &Target::default()).expect("pipeline");
    let opt = r.ratio(Technique::Optimized);
    let sw = r.ratio(Technique::Shrinkwrap);
    assert!(opt < 0.7, "crafty optimized ratio too weak: {opt}");
    assert!(sw > 0.8, "crafty shrink-wrap should gain little: {sw}");
}

#[test]
fn guarantee_holds_across_the_fast_subset() {
    // "The dynamic number of callee-saved save and restore instructions
    // inserted with this new approach is never greater than the number
    // produced by Chow's shrink-wrapping technique or the placement at
    // procedure entry and exit." Measured on executed code, with the
    // caveat that profiles come from the train workload and measurement
    // uses ref (tiny divergences are legitimate; we allow 1%).
    for name in ["mcf", "gzip", "vpr", "bzip2"] {
        let r = run_named_benchmark(name, &Target::default()).expect("pipeline");
        let opt = r.of(Technique::Optimized).callee_saved_overhead as f64;
        let base = r.of(Technique::Baseline).callee_saved_overhead as f64;
        let sw = r.of(Technique::Shrinkwrap).callee_saved_overhead as f64;
        assert!(opt <= base * 1.01 + 1.0, "{name}: {opt} > baseline {base}");
        assert!(opt <= sw * 1.01 + 1.0, "{name}: {opt} > shrink-wrap {sw}");
    }
}

#[test]
fn static_overhead_ranking_matches_the_paper() {
    // Entry/exit minimizes static overhead; the optimized placement may
    // place more instructions (the paper explicitly does not optimize
    // static overhead).
    for name in ["gzip", "vpr"] {
        let r = run_named_benchmark(name, &Target::default()).expect("pipeline");
        let base = r.of(Technique::Baseline).static_count;
        let sw = r.of(Technique::Shrinkwrap).static_count;
        assert!(base <= sw, "{name}: entry/exit has lowest static count");
    }
}
