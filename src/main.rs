//! The `spillopt` command-line tool: module-scale callee-saved spill
//! code optimization (see `spillopt-driver` for the implementation).

fn main() {
    std::process::exit(spillopt_driver::cli::run_main());
}
