//! # spillopt
//!
//! The root crate of the *spillopt* workspace — a reproduction and
//! module-scale extension of Lupo & Wilken, "Post Register Allocation
//! Spill Code Optimization" (CGO 2006).
//!
//! This library re-exports the **session-based optimizer API** from
//! `spillopt-driver`: build an [`OptimizerBuilder`], get a warm
//! [`Session`], and feed it modules. The binary of the same name is the
//! CLI over exactly this API.
//!
//! # Quickstart
//!
//! ```
//! use spillopt::{OptimizerBuilder, Strategy, TechniqueSet};
//!
//! // Parse a module from IR text (usually you'd read a file).
//! let module = spillopt_ir::parse_module(
//!     "module demo\n\
//!      func @f(1) {\n\
//!      block entry:\n\
//!        v0 = mov r1\n\
//!        r1 = mov v0\n\
//!        r0 = call ext:0(r1)\n\
//!        v1 = mov r0\n\
//!        v1 = add v1, v0\n\
//!        r0 = mov v1\n\
//!        ret r0\n\
//!      }\n",
//! )
//! .unwrap();
//!
//! // Configure once; reuse the session for as many modules as you like.
//! let session = OptimizerBuilder::new()
//!     .target_named("pa-risc-like")
//!     .techniques(TechniqueSet::ALL)
//!     .threads(1)
//!     .build()
//!     .unwrap();
//!
//! let run = session.optimize(&module).unwrap();
//! assert!(run.report.total_cost(Strategy::HierJump)
//!     <= run.report.total_cost(Strategy::Baseline));
//!
//! // Materialize the optimized module under the per-function best.
//! let optimized = run.apply(None);
//! assert_eq!(optimized.num_funcs(), 1);
//! ```

pub use spillopt_driver::{
    run_drift, ArenaStats, BenchConfig, BenchOutcome, CrossTargetReport, DriftConfig, DriftFailure,
    DriftSummary, DriverError, FunctionReport, ModuleReport, ModuleRun, Observer, OptimizerBuilder,
    PoolWorkerStats, ProfileSource, Provenance, Session, SessionStats, Strategy, StrategyReport,
    TechniqueSet, DEFAULT_DRIFT_STEPS, REPORT_SCHEMA_VERSION,
};
