//! Reproduces, number for number, the worked example of the paper's
//! Section 4 (Figures 2, 3, and 4).
//!
//! * entry/exit placement costs 200;
//! * Chow's shrink-wrapping places saves before C, G, K, N and restores
//!   after F, G, K, N, costing 250 — *more* than entry/exit;
//! * the modified shrink-wrapping initial sets cost 80 (Set 1, around
//!   D/E), 50 (Set 2, G), 50 (Set 3, K), 50 (Set 4, N);
//! * maximal SESE regions R1 ⊇ {C,D,E,F} (boundary 100), R2 ⊇ R1 ∪ {J,G,M}
//!   (boundary 140), R3 ⊇ {I,K,L,N,O} (boundary 60);
//! * execution count model: R3's sets are replaced (100 > 60), everything
//!   else kept; final cost 190;
//! * jump edge model: Set 1 costs 110, replaced at R1 (100), replaced
//!   again at R2 (150 > 140), and the final tie at 200 sends everything
//!   to procedure entry/exit.

use spillopt_core::{
    check_placement, chow_shrink_wrap, entry_exit_placement, hierarchical_placement,
    insert_placement, modified_shrink_wrap, paper_example, placement_model_cost, Cost, CostModel,
    EdgeShares, SpillKind, SpillLoc,
};
use spillopt_pst::Pst;

fn count(c: u64) -> Cost {
    Cost::from_count(c)
}

#[test]
fn entry_exit_costs_200() {
    let ex = paper_example();
    let p = entry_exit_placement(&ex.cfg, &ex.usage);
    assert!(check_placement(&ex.cfg, &ex.usage, &p).is_empty());
    let cost = placement_model_cost(
        CostModel::ExecutionCount,
        &ex.cfg,
        &ex.profile,
        &p,
        &EdgeShares::none(),
    );
    assert_eq!(cost, count(200));
    assert_eq!(p.static_count(), 2);
}

#[test]
fn chow_places_at_c_g_k_n_and_costs_250() {
    let ex = paper_example();
    let p = chow_shrink_wrap(&ex.cfg, &ex.usage);
    assert!(check_placement(&ex.cfg, &ex.usage, &p).is_empty());

    // Saves before C, G, K, N (on their unique incoming edges).
    let save_edges: Vec<_> = p
        .points()
        .iter()
        .filter(|pt| pt.kind == SpillKind::Save)
        .map(|pt| pt.loc)
        .collect();
    let expected_saves = vec![
        SpillLoc::OnEdge(ex.edge('H', 'C')),
        SpillLoc::OnEdge(ex.edge('J', 'G')),
        SpillLoc::OnEdge(ex.edge('I', 'K')),
        SpillLoc::OnEdge(ex.edge('L', 'N')),
    ];
    for e in &expected_saves {
        assert!(save_edges.contains(e), "missing save at {e}");
    }
    assert_eq!(save_edges.len(), 4);

    // Restores after F, G, K, N (on their unique outgoing edges).
    let restore_edges: Vec<_> = p
        .points()
        .iter()
        .filter(|pt| pt.kind == SpillKind::Restore)
        .map(|pt| pt.loc)
        .collect();
    let expected_restores = vec![
        SpillLoc::OnEdge(ex.edge('F', 'J')),
        SpillLoc::OnEdge(ex.edge('G', 'M')),
        SpillLoc::OnEdge(ex.edge('K', 'L')),
        SpillLoc::OnEdge(ex.edge('N', 'O')),
    ];
    for e in &expected_restores {
        assert!(restore_edges.contains(e), "missing restore at {e}");
    }
    assert_eq!(restore_edges.len(), 4);

    let cost = placement_model_cost(
        CostModel::ExecutionCount,
        &ex.cfg,
        &ex.profile,
        &p,
        &EdgeShares::none(),
    );
    assert_eq!(
        cost,
        count(250),
        "shrink-wrapping is worse than entry/exit here"
    );
}

#[test]
fn initial_sets_cost_80_50_50_50() {
    let ex = paper_example();
    let init = modified_shrink_wrap(&ex.cfg, &ex.usage);
    assert!(check_placement(&ex.cfg, &ex.usage, &init.placement()).is_empty());
    assert_eq!(init.sets.len(), 4);
    let shares = EdgeShares::from_sets(&init.sets);
    let mut costs: Vec<u64> = init
        .sets
        .iter()
        .map(|s| {
            s.cost(CostModel::ExecutionCount, &ex.cfg, &ex.profile, &shares)
                .expect_count()
        })
        .collect();
    costs.sort();
    assert_eq!(costs, vec![50, 50, 50, 80]);

    // Set 1 detail: save into D (edge C->D), restore after E (edge E->F),
    // restore on the jump edge D->F.
    let set1 = init
        .sets
        .iter()
        .find(|s| s.cluster.contains(ex.block('D').index()))
        .expect("set around D/E");
    let locs: Vec<SpillLoc> = set1.points.iter().map(|p| p.loc).collect();
    assert!(locs.contains(&SpillLoc::OnEdge(ex.edge('C', 'D'))));
    assert!(locs.contains(&SpillLoc::OnEdge(ex.edge('E', 'F'))));
    assert!(locs.contains(&SpillLoc::OnEdge(ex.edge('D', 'F'))));
    assert_eq!(locs.len(), 3);

    // Under the jump edge model Set 1 costs 110 (paper: 40 + 10 + 30+30).
    assert_eq!(
        set1.cost(CostModel::JumpEdge, &ex.cfg, &ex.profile, &shares),
        count(110)
    );
}

#[test]
fn pst_finds_the_papers_regions() {
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    let blocks =
        |letters: &str| -> Vec<usize> { letters.chars().map(|c| ex.block(c).index()).collect() };
    let find_region = |letters: &str| {
        let want = blocks(letters);
        pst.regions()
            .find(|r| r.blocks.count() == want.len() && want.iter().all(|&b| r.blocks.contains(b)))
    };
    let r1 = find_region("CDEF").expect("paper Region 1");
    let r2 = find_region("HCDEFJGM").expect("paper Region 2");
    let r3 = find_region("IKLNO").expect("paper Region 3");
    // Boundary edges (entry, exit).
    use spillopt_pst::RegionBoundary as RB;
    assert_eq!(r1.entry, RB::CfgEdge(ex.edge('H', 'C')));
    assert_eq!(r1.exit, RB::CfgEdge(ex.edge('F', 'J')));
    assert_eq!(r2.entry, RB::CfgEdge(ex.edge('B', 'H')));
    assert_eq!(r2.exit, RB::CfgEdge(ex.edge('M', 'P')));
    assert_eq!(r3.entry, RB::CfgEdge(ex.edge('B', 'I')));
    assert_eq!(r3.exit, RB::CfgEdge(ex.edge('O', 'P')));
    // Nesting: R1 inside R2; R2 and R3 disjoint siblings.
    assert!(r1.blocks.is_subset(&r2.blocks));
    assert!(r2.blocks.is_disjoint(&r3.blocks));
    assert!(spillopt_pst::verify_pst(&ex.cfg, &pst).is_empty());
}

#[test]
fn execution_count_model_matches_walkthrough() {
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    let res = hierarchical_placement(
        &ex.cfg,
        &pst,
        &ex.usage,
        &ex.profile,
        CostModel::ExecutionCount,
    );
    assert!(check_placement(&ex.cfg, &ex.usage, &res.placement).is_empty());

    // Walkthrough decisions, looked up by region block sets.
    let region_of = |letters: &str| {
        let want: Vec<usize> = letters.chars().map(|c| ex.block(c).index()).collect();
        pst.regions()
            .find(|r| r.blocks.count() == want.len() && want.iter().all(|&b| r.blocks.contains(b)))
            .expect("region")
            .id
    };
    let ev = |region: spillopt_pst::RegionId| {
        res.trace
            .iter()
            .find(|t| t.region == region)
            .expect("trace event")
    };

    // Region 1: Set 1 (80) vs boundary 100 — kept.
    let t1 = ev(region_of("CDEF"));
    assert_eq!(t1.contained_cost, count(80));
    assert_eq!(t1.boundary_cost, count(100));
    assert!(!t1.replaced);
    assert_eq!(t1.num_contained, 1);

    // Region 2: Sets 1+2 (130) vs 140 — kept.
    let t2 = ev(region_of("HCDEFJGM"));
    assert_eq!(t2.contained_cost, count(130));
    assert_eq!(t2.boundary_cost, count(140));
    assert!(!t2.replaced);
    assert_eq!(t2.num_contained, 2);

    // Region 3: Sets 3+4 (100) vs 60 — replaced by Set 5.
    let t3 = ev(region_of("IKLNO"));
    assert_eq!(t3.contained_cost, count(100));
    assert_eq!(t3.boundary_cost, count(60));
    assert!(t3.replaced);
    assert_eq!(t3.num_contained, 2);

    // Root: Sets 1, 2, 5 (190) vs 200 — kept.
    let troot = ev(pst.root());
    assert_eq!(troot.contained_cost, count(190));
    assert_eq!(troot.boundary_cost, count(200));
    assert!(!troot.replaced);

    // Final placement: Sets 1, 2, 5 — total 190.
    let total = placement_model_cost(
        CostModel::ExecutionCount,
        &ex.cfg,
        &ex.profile,
        &res.placement,
        &EdgeShares::none(),
    );
    assert_eq!(total, count(190));
    assert_eq!(res.final_sets.len(), 3);
    // Set 5 sits at Region 3's boundaries.
    assert!(res
        .placement
        .points()
        .iter()
        .any(|p| p.loc == SpillLoc::OnEdge(ex.edge('B', 'I')) && p.kind == SpillKind::Save));
    assert!(res
        .placement
        .points()
        .iter()
        .any(|p| p.loc == SpillLoc::OnEdge(ex.edge('O', 'P')) && p.kind == SpillKind::Restore));
}

#[test]
fn jump_edge_model_matches_walkthrough_and_lands_at_entry_exit() {
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    let res = hierarchical_placement(&ex.cfg, &pst, &ex.usage, &ex.profile, CostModel::JumpEdge);
    assert!(check_placement(&ex.cfg, &ex.usage, &res.placement).is_empty());

    let region_of = |letters: &str| {
        let want: Vec<usize> = letters.chars().map(|c| ex.block(c).index()).collect();
        pst.regions()
            .find(|r| r.blocks.count() == want.len() && want.iter().all(|&b| r.blocks.contains(b)))
            .expect("region")
            .id
    };
    let ev = |region: spillopt_pst::RegionId| {
        res.trace
            .iter()
            .find(|t| t.region == region)
            .expect("trace event")
    };

    // Region 1: Set 1 now costs 110 > 100 — replaced (Set 6).
    let t1 = ev(region_of("CDEF"));
    assert_eq!(t1.contained_cost, count(110));
    assert_eq!(t1.boundary_cost, count(100));
    assert!(t1.replaced);

    // Region 2: Set 6 + Set 2 = 150 > 140 — replaced (Set 7).
    let t2 = ev(region_of("HCDEFJGM"));
    assert_eq!(t2.contained_cost, count(150));
    assert_eq!(t2.boundary_cost, count(140));
    assert!(t2.replaced);

    // Region 3: unaffected by the jump model — replaced as before (Set 5).
    let t3 = ev(region_of("IKLNO"));
    assert_eq!(t3.contained_cost, count(100));
    assert_eq!(t3.boundary_cost, count(60));
    assert!(t3.replaced);

    // Root: 140 + 60 = 200 ≤ 200 — the tie replaces everything with the
    // procedure entry/exit placement (paper Figure 4(b): save in A,
    // restore in P).
    let troot = ev(pst.root());
    assert_eq!(troot.contained_cost, count(200));
    assert_eq!(troot.boundary_cost, count(200));
    assert!(troot.replaced);

    // The final placement is exactly entry/exit.
    let baseline = entry_exit_placement(&ex.cfg, &ex.usage);
    assert_eq!(res.placement, baseline);
}

#[test]
fn insertion_realizes_the_paper_narrative() {
    // Figure 4(a): the exec-model placement has Set 1's save inserted into
    // basic block D (before its other instructions), the E restore as the
    // last instruction of E, and the D->F restore in a new jump block.
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    let res = hierarchical_placement(
        &ex.cfg,
        &pst,
        &ex.usage,
        &ex.profile,
        CostModel::ExecutionCount,
    );
    let mut func = ex.func.clone();
    let report = insert_placement(&mut func, &ex.cfg, &res.placement);
    assert!(spillopt_ir::verify_function(&func, spillopt_ir::RegDiscipline::Virtual).is_empty());
    // Exactly one jump block: the D->F restore.
    assert_eq!(report.added_jumps, 1);
    // Save is the first instruction of D.
    let d = ex.block('D');
    let first = &func.block(d).insts[0];
    assert!(
        matches!(
            first.kind,
            spillopt_ir::InstKind::Store {
                kind: spillopt_ir::MemKind::CalleeSave,
                ..
            }
        ),
        "expected save at top of D, found {first:?}"
    );
    // Restore is the last instruction of E (E falls through, no
    // terminator).
    let e = ex.block('E');
    let last = func.block(e).insts.last().unwrap();
    assert!(matches!(
        last.kind,
        spillopt_ir::InstKind::Load {
            kind: spillopt_ir::MemKind::CalleeSave,
            ..
        }
    ));
}

#[test]
fn guarantee_never_worse_than_chow_or_entry_exit() {
    // The paper's headline guarantee, on its own example, under both
    // models and both accounting schemes.
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    for model in [CostModel::ExecutionCount, CostModel::JumpEdge] {
        let res = hierarchical_placement(&ex.cfg, &pst, &ex.usage, &ex.profile, model);
        let eval = |p: &spillopt_core::Placement| {
            spillopt_core::placement_cost(model, &ex.cfg, &ex.profile, p)
        };
        let hier = eval(&res.placement);
        assert!(hier <= eval(&entry_exit_placement(&ex.cfg, &ex.usage)));
        assert!(hier <= eval(&chow_shrink_wrap(&ex.cfg, &ex.usage)));
    }
}
