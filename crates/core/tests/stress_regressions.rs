//! Minimized counterexamples found by the differential stress subsystem
//! (`spillopt-stress`), checked in as regressions.
//!
//! Each case is a module the random-CFG generator produced (and the
//! minimizer reduced) that exposed a bug — or, for the optimality-gap
//! case at the bottom, a measured limitation — in this crate; the fix
//! (or the open gap) is described at the test. Every case re-runs the
//! full oracle battery — semantic equivalence under the interpreter,
//! model fidelity (predicted save/restore/jump counts vs measured), the
//! never-worse guarantee, and the exact-optimum gap check — plus
//! targeted assertions on the behaviour in question.

use spillopt_core::{
    check_placement, entry_exit_placement, insert_placement, run_suite, run_suite_incremental,
    run_suite_memoized, CalleeSavedUsage, CostModel, Placement, SuiteInputs, SuiteOptions,
};
use spillopt_exact::{solve_exact, ExactLimits};
use spillopt_ir::{parse_module, Cfg, FuncId, Module, RegDiscipline};
use spillopt_regalloc::allocate;
use spillopt_stress::{check_case, check_case_with, ExactOptions};

/// Stress seed 0 (pa-risc-like), minimized by hand to the trigger: a
/// **back edge into the entry block**. Entry/exit placement puts every
/// save at `top(entry)`; before the fix that save re-executed on each
/// loop iteration, overwriting the caller's saved value with the
/// function's working value — `check_placement` flagged it as an
/// inconsistent merge and the whole suite panicked. The fix gives
/// `BlockTop(entry)` once-per-call semantics: the validator models it as
/// a virtual pre-entry transition, the insertion pass realizes it in a
/// fresh header block above the loop, the cost models price it by the
/// entry count, and edges into the entry block count the procedure
/// entry as an implicit predecessor (they can never sink code into the
/// entry's top).
const ENTRY_LOOP: &str = "\
module entry_loop
func @f0(0) {
  frame 1
  vregs 4
block entry:
  v0 = li 7
  v1 = load.data slot0
  v1 = add v1, 1
  store.data v1, slot0
  v2 = li 4
  r0 = call ext:1()
  v3 = mov r0
  v0 = xor v0, v3
  br lt v1, v2, entry, exit
block exit:
  r0 = mov v0
  ret r0
}
";

/// Stress seed 394 (riscv64-lp64 and aarch64-aapcs64), minimized by the
/// stress minimizer: the **modified** shrink-wrapping's initial sets
/// (per-path restores behind a shared handler) cost more than Chow's
/// original placement (one shared late restore), and the hierarchical
/// traversal — which can only replace sets at region boundaries — could
/// not recover, ending dynamically *worse than Chow* (28 vs 26 under
/// unit pricing). Fixed by the final group-wise comparison in
/// `hierarchical_placement_vs`: the traversal's result is compared
/// against both entry/exit and Chow under the physically accurate
/// accounting, on every cost model, and the cheapest wins.
const MODIFIED_WORSE_THAN_CHOW: &str = "\
module stress394
func @f0(2) {
  frame 0
  vregs 33
block entry:
  v0 = mov r0
  v1 = mov r1
  v2 = li 118430
  v1 = shr v1, 11
  v3 = and v1, 15
  v4 = li 14
  br ge v3, v4, bb4, bb3
block bb3:
  v5 = and v0, 63
  v6 = li 1
  br lt v5, v6, handler0, bb6
block bb6:
  v7 = li 0
  v8 = li 2
block bb7:
  br ge v7, v8, bb9, bb8
block bb8:
  v9 = and v1, 63
  v10 = li 1
  br lt v9, v10, bb9, bb10
block bb10:
  r0 = mov v1
  r1 = mov v1
  r0 = call ext:0(r0, r1)
  v7 = add v7, 1
  jmp bb7
block bb9:
  jmp bb5
block bb4:
  v12 = and v1, 15
  v13 = li 1
  br lt v12, v13, epilogue, bb11
block bb11:
  v15 = and v2, 15
  v16 = li 1
  br lt v15, v16, handler0, bb12
block bb12:
  v17 = and v1, 15
  v18 = li 1
  br lt v17, v18, epilogue, bb13
block bb13:
block bb5:
  v19 = and v1, 15
  v20 = li 14
  br ge v19, v20, bb15, bb14
block bb14:
  jmp bb16
block bb15:
  v21 = and v0, 15
  v22 = li 1
  br lt v21, v22, handler0, bb17
block bb17:
block bb16:
  v23 = and v0, 15
  v24 = li 8
  br ge v23, v24, bb19, bb18
block bb18:
  v25 = and v0, 127
  v26 = li 1
  br lt v25, v26, handler0, bb20
block bb20:
block bb19:
  v27 = and v0, 15
  v28 = li 8
  br ge v27, v28, bb22, bb21
block bb21:
  v29 = and v0, 127
  v30 = li 1
  br lt v29, v30, handler0, bb23
block bb23:
block bb22:
  jmp bb24
block handler0:
  jmp epilogue
block bb24:
block epilogue:
  v31 = xor v0, v1
  v32 = xor v31, v2
  r0 = mov v32
  ret r0
}
";

fn parse(text: &str) -> Module {
    let m = parse_module(text).expect("regression module parses");
    let errs = spillopt_ir::verify_module(&m, RegDiscipline::Virtual);
    assert!(errs.is_empty(), "regression module invalid: {errs:?}");
    m
}

#[test]
fn entry_loop_passes_all_oracles() {
    let module = parse(ENTRY_LOOP);
    let runs = vec![(FuncId::from_index(0), vec![])];
    for spec in spillopt_targets::registry() {
        check_case(&module, &runs, &spec)
            .unwrap_or_else(|e| panic!("entry-loop oracles on {}: {e}", spec.name));
    }
}

#[test]
fn entry_loop_placement_is_valid_and_realized_above_the_loop() {
    let module = parse(ENTRY_LOOP);
    let target = spillopt_ir::Target::default();
    let mut func = module.func(FuncId::from_index(0)).clone();
    allocate(&mut func, &target, None);
    let cfg = Cfg::compute(&func);
    let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
    assert!(!usage.is_empty(), "a value crosses the call");

    // The back edge into the entry is critical even with one explicit
    // predecessor: the procedure entry is an implicit second one.
    let back = cfg
        .edge_ids()
        .find(|&e| cfg.edge(e).to == cfg.entry())
        .expect("back edge to entry");
    assert!(cfg.is_critical(back));

    // Entry/exit placement validates (the original panic) ...
    let placement = entry_exit_placement(&cfg, &usage);
    assert_eq!(check_placement(&cfg, &usage, &placement), vec![]);

    // ... and insertion realizes the entry saves in a fresh header block
    // above the loop: the new layout head has no predecessors and falls
    // through into the old entry.
    let blocks_before = func.num_blocks();
    let report = insert_placement(&mut func, &cfg, &placement);
    assert!(report.new_blocks >= 1, "entry must be split");
    assert!(func.num_blocks() > blocks_before);
    let new_cfg = Cfg::compute(&func);
    assert_eq!(new_cfg.num_preds(new_cfg.entry()), 0);
    assert!(spillopt_ir::verify_function(&func, RegDiscipline::Physical).is_empty());
}

#[test]
fn hierarchical_is_never_worse_than_chow_on_the_394_module() {
    let module = parse(MODIFIED_WORSE_THAN_CHOW);
    let runs = vec![
        (FuncId::from_index(0), vec![-16439, 302436]),
        (FuncId::from_index(0), vec![426964, -393359]),
    ];
    // The module reads r0/r1 as its two arguments, which only matches
    // conventions whose first argument register is the return register
    // (RISC-V a0, AArch64 x0) — the targets the fuzzer caught it on.
    for name in ["riscv64-lp64", "aarch64-aapcs64"] {
        let spec = spillopt_targets::spec_by_name(name).expect("registered");
        let target = spec.try_to_target().expect("valid");

        // Full oracle battery (includes the never-worse check).
        check_case(&module, &runs, &spec).unwrap_or_else(|e| panic!("394 oracles on {name}: {e}"));

        // Targeted: reproduce the suite and assert the ordering that
        // used to fail: hier-jump <= chow and <= entry/exit.
        let mut vm = spillopt_profile::Machine::new(&module, &target);
        vm.set_fuel(1 << 28);
        for (f, args) in &runs {
            vm.call(*f, args).expect("reference run");
        }
        let profile = vm.edge_profile(FuncId::from_index(0));
        drop(vm);
        let mut func = module.func(FuncId::from_index(0)).clone();
        allocate(&mut func, &target, Some(&profile));
        let cfg = Cfg::compute(&func);
        let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
        assert!(!usage.is_empty());
        let inputs = SuiteInputs::compute(&cfg, &usage, &profile);
        let suite = run_suite(&cfg, &inputs, &SuiteOptions::priced(spec.costs))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let [entry_exit, chow, _, hier_jump] = suite.predicted;
        assert!(
            hier_jump <= chow,
            "{name}: hier-jump {hier_jump:?} worse than chow {chow:?}"
        );
        assert!(
            hier_jump <= entry_exit,
            "{name}: hier-jump {hier_jump:?} worse than entry/exit {entry_exit:?}"
        );
    }
}

/// Drift-regression slot: minimized counterexamples from `spillopt
/// stress --drift` (a warm session's incremental re-fold diverging from
/// the cold oracle) land here, replayed at the core level —
/// `run_suite_incremental` against `run_suite` over the same analyses
/// under the recorded profile drift. No divergence has been caught to
/// date; the exemplar below drives the entry-loop module (above, with
/// its critical back edge into the entry block) through the drift kinds
/// the fuzzer mutates — zero delta, entry bump, back-edge bump, full
/// re-weight — and pins the placement-level agreement the fuzzer
/// enforces byte-for-byte end to end.
#[test]
fn entry_loop_incremental_refold_matches_cold_under_drift() {
    let module = parse(ENTRY_LOOP);
    let target = spillopt_ir::Target::default();
    let mut func = module.func(FuncId::from_index(0)).clone();
    allocate(&mut func, &target, None);
    let cfg = Cfg::compute(&func);
    let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
    assert!(!usage.is_empty(), "a value crosses the call");
    let cyclic = spillopt_ir::analysis::loops::sccs(&cfg);
    let pst = spillopt_pst::Pst::compute(&cfg);
    let derived = spillopt_ir::DerivedCfg::compute(&cfg);
    let opts = SuiteOptions::default();

    let base = spillopt_profile::random_walk_profile(&cfg, 64, 128, 7);
    let inputs = SuiteInputs::analyzed(&usage, &base, &cyclic, &pst, &derived);
    let (_, mut memo) = run_suite_memoized(&cfg, &inputs, &opts).expect("memoized fold");

    let back = cfg
        .edge_ids()
        .find(|&e| cfg.edge(e).to == cfg.entry())
        .expect("back edge to entry");
    let mut prev = base;
    for step in 0..4u64 {
        let mut counts = prev.edge_counts().to_vec();
        let mut entry = prev.entry_count();
        match step {
            0 => {}
            1 => entry += 5,
            2 => counts[back.index()] += 100,
            _ => {
                for (i, c) in counts.iter_mut().enumerate() {
                    *c = (*c + 1) * (i as u64 + 2) % 251;
                }
                entry = entry / 2 + 1;
            }
        }
        let next = spillopt_profile::EdgeProfile::new(&cfg, counts, entry);
        let delta = spillopt_profile::ProfileDelta::between(&prev, &next);
        let inputs = SuiteInputs::analyzed(&usage, &next, &cyclic, &pst, &derived);
        let (incremental, stats) = run_suite_incremental(&cfg, &inputs, &opts, &mut memo, &delta)
            .expect("incremental fold");
        let cold = run_suite(&cfg, &inputs, &opts).expect("cold fold");
        assert_eq!(incremental.entry_exit, cold.entry_exit, "step {step}");
        assert_eq!(incremental.chow, cold.chow, "step {step}");
        assert_eq!(
            incremental.hierarchical_exec.placement, cold.hierarchical_exec.placement,
            "step {step}: exec placement"
        );
        assert_eq!(
            incremental.hierarchical_jump.placement, cold.hierarchical_jump.placement,
            "step {step}: jump placement"
        );
        assert_eq!(incremental.predicted, cold.predicted, "step {step}");
        if step == 0 {
            assert_eq!(stats.regions_refolded, 0, "zero delta must re-fold nothing");
        }
        prev = next;
    }
}

/// Stress seed 92 (every registered target; this is the pa-risc-like
/// minimization), found by the **exact-optimum oracle**: the
/// hierarchical jump-model placement prices at 3 jump-model transitions
/// while the branch-and-bound certificate proves the minimum is 2 — a
/// 50% relative gap on a 1-transition absolute overshoot, the worst
/// case in the 500-seed corpus (everything else measures <= 10%). The
/// module is a chain of cold guard diamonds sharing one `handler0`
/// side exit plus a counted loop; the hierarchical traversal, which
/// only exchanges save/restore sets at region boundaries, keeps one
/// transition the global min cut avoids. `DEFAULT_GAP_PERCENT` (50) in
/// `spillopt-stress` is derived from exactly this case.
const SUBOPTIMAL_HIER_JUMP: &str = "\
module stress92\n\
\n\
func @f0(2) {\n\
  frame 7\n\
  vregs 181\n\
block entry:\n\
  v1 = mov r2\n\
  v3 = li 301783\n\
  store.data v3, slot3\n\
  store.data v1, slot6\n\
  v8 = load.data slot4\n\
  v11 = load.data slot6\n\
  v10 = xor v8, v11\n\
  store.data v10, slot4\n\
  v19 = load.data slot3\n\
  v20 = and v19, 15\n\
  v21 = li 1\n\
  br lt v20, v21, handler0, bb3\n\
block bb3:\n\
  v28 = load.data slot4\n\
  v29 = and v28, 15\n\
  v30 = li 8\n\
  br ge v29, v30, bb5, bb4\n\
block bb4:\n\
  v47 = load.data slot3\n\
  v48 = and v47, 15\n\
  v49 = li 1\n\
  br lt v48, v49, handler0, bb7\n\
block bb7:\n\
  v50 = load.data slot2\n\
  v51 = and v50, 63\n\
  v52 = li 1\n\
  br lt v51, v52, handler0, bb8\n\
block bb8:\n\
  v53 = load.data slot0\n\
  v54 = and v53, 63\n\
  v55 = li 1\n\
  br ge v54, v55, bb10, bb9\n\
block bb9:\n\
  jmp bb11\n\
block bb10:\n\
  v71 = load.data slot2\n\
  v72 = and v71, 15\n\
  v73 = li 1\n\
  br lt v72, v73, handler0, bb12\n\
block bb12:\n\
block bb11:\n\
  v74 = load.data slot1\n\
  v75 = and v74, 63\n\
  v76 = li 1\n\
  br lt v75, v76, handler0, bb13\n\
block bb13:\n\
  jmp bb6\n\
block bb5:\n\
  v83 = load.data slot0\n\
  v84 = and v83, 63\n\
  v85 = li 1\n\
  br ge v84, v85, bb15, bb14\n\
block bb14:\n\
block bb15:\n\
  v96 = load.data slot1\n\
  v97 = and v96, 15\n\
  v98 = li 1\n\
  br lt v97, v98, epilogue, bb16\n\
block bb16:\n\
block bb6:\n\
  v111 = li 0\n\
  v112 = li 3\n\
block bb17:\n\
  br ge v111, v112, bb19, bb18\n\
block bb18:\n\
  jmp bb17\n\
block bb19:\n\
  v150 = load.data slot1\n\
  v151 = and v150, 15\n\
  v152 = li 8\n\
  br ge v151, v152, bb21, bb20\n\
block bb20:\n\
  v153 = load.data slot2\n\
  v154 = and v153, 127\n\
  v155 = li 1\n\
  br lt v154, v155, handler0, bb22\n\
block bb22:\n\
block bb21:\n\
  v156 = load.data slot2\n\
  v157 = and v156, 15\n\
  v158 = li 8\n\
  br ge v157, v158, bb24, bb23\n\
block bb23:\n\
  v159 = load.data slot3\n\
  v160 = and v159, 127\n\
  v161 = li 1\n\
  br lt v160, v161, handler0, bb25\n\
block bb25:\n\
block bb24:\n\
  jmp bb26\n\
block handler0:\n\
  v162 = load.data slot3\n\
  v163 = load.data slot3\n\
  v164 = load.data slot0\n\
  r1 = mov v162\n\
  r2 = mov v163\n\
  r0 = call ext:0(r1, r2)\n\
  v165 = mov r0\n\
  v166 = xor v164, v165\n\
  jmp epilogue\n\
block bb26:\n\
block epilogue:\n\
  v172 = load.data slot0\n\
  v173 = load.data slot1\n\
  v174 = xor v172, v173\n\
  v175 = load.data slot2\n\
  v176 = xor v174, v175\n\
  v177 = load.data slot3\n\
  v178 = xor v176, v177\n\
  v179 = load.data slot4\n\
  v180 = xor v178, v179\n\
  r0 = mov v180\n\
  ret r0\n\
}\n";

/// Seed 92's workload on pa-risc-like (the profile the placements were
/// trained on).
fn seed_92_runs() -> Vec<(FuncId, Vec<i64>)> {
    vec![
        (FuncId::from_index(0), vec![520920, -444280]),
        (FuncId::from_index(0), vec![756635, -521788]),
    ]
}

/// Reproduces seed 92's suite and exact certificate on pa-risc-like:
/// `(hier-jump predicted, certified optimum)` in raw jump-model units.
fn seed_92_hier_jump_vs_optimum() -> (u64, u64) {
    let module = parse(SUBOPTIMAL_HIER_JUMP);
    let runs = seed_92_runs();
    let spec = spillopt_targets::spec_by_name("pa-risc-like").expect("registered");
    let target = spec.try_to_target().expect("valid");

    let mut vm = spillopt_profile::Machine::new(&module, &target);
    vm.set_fuel(1 << 28);
    for (f, args) in &runs {
        vm.call(*f, args).expect("reference run");
    }
    let profile = vm.edge_profile(FuncId::from_index(0));
    drop(vm);

    let mut func = module.func(FuncId::from_index(0)).clone();
    allocate(&mut func, &target, Some(&profile));
    let cfg = Cfg::compute(&func);
    let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
    assert!(!usage.is_empty(), "a callee-saved register is in play");
    let inputs = SuiteInputs::compute(&cfg, &usage, &profile);
    let suite = run_suite(&cfg, &inputs, &SuiteOptions::priced(spec.costs))
        .unwrap_or_else(|e| panic!("seed-92 suite: {e}"));
    let seeds: [&Placement; 4] = [
        &suite.entry_exit,
        &suite.chow,
        &suite.hierarchical_exec.placement,
        &suite.hierarchical_jump.placement,
    ];
    let outcome = solve_exact(
        &cfg,
        &usage,
        &profile,
        CostModel::JumpEdge,
        &spec.costs,
        &seeds,
        &ExactLimits::default(),
    );
    let sol = outcome
        .solved()
        .expect("within the default solver envelope");
    (suite.predicted[3].raw(), sol.optimum.raw())
}

#[test]
fn seed_92_gap_is_reproducible_and_bounds_the_default() {
    // Full oracle battery at the shipped defaults: the case must pass,
    // because this is the corpus worst case that *sets* the default gap.
    let module = parse(SUBOPTIMAL_HIER_JUMP);
    let spec = spillopt_targets::spec_by_name("pa-risc-like").expect("registered");
    check_case_with(
        &module,
        &seed_92_runs(),
        &spec,
        Some(&ExactOptions::default()),
    )
    .unwrap_or_else(|e| panic!("seed-92 oracles on pa-risc-like: {e}"));

    // Targeted: the measured gap is exactly 3 vs 2 (50%). If the first
    // assertion starts failing the gap has closed — un-ignore
    // `seed_92_hier_jump_reaches_the_certified_optimum` and tighten
    // `DEFAULT_GAP_PERCENT` to the next corpus worst case (10%).
    let (hier, optimum) = seed_92_hier_jump_vs_optimum();
    assert!(
        optimum < hier,
        "gap closed (both {optimum}): tighten DEFAULT_GAP_PERCENT"
    );
    assert_eq!(hier * 2, optimum * 3, "gap moved: was 3 vs 2 exactly");
}

/// The aspirational form: hier-jump lands on the certified optimum.
/// Ignored while the gap is open — the hierarchical traversal's
/// region-boundary set exchanges cannot reach the min-cut placement on
/// this module. Un-ignore after improving the traversal (and re-derive
/// `DEFAULT_GAP_PERCENT` from the then-worst corpus case).
#[test]
#[ignore = "known 50% hier-jump optimality gap (3 vs certified 2); see seed_92_gap_is_reproducible_and_bounds_the_default"]
fn seed_92_hier_jump_reaches_the_certified_optimum() {
    let (hier, optimum) = seed_92_hier_jump_vs_optimum();
    assert_eq!(
        hier, optimum,
        "hier-jump must price at the certified optimum"
    );
}
