//! Minimized counterexamples found by the differential stress subsystem
//! (`spillopt-stress`), checked in as regressions.
//!
//! Each case is a module the random-CFG generator produced (and the
//! minimizer reduced) that exposed a bug in this crate; the fix is
//! described at the test. Every case re-runs the full oracle battery —
//! semantic equivalence under the interpreter, model fidelity
//! (predicted save/restore/jump counts vs measured), and the never-worse
//! guarantee — plus targeted assertions on the fixed behaviour.

use spillopt_core::{
    check_placement, entry_exit_placement, insert_placement, run_suite, CalleeSavedUsage,
    SuiteInputs, SuiteOptions,
};
use spillopt_ir::{parse_module, Cfg, FuncId, Module, RegDiscipline};
use spillopt_regalloc::allocate;
use spillopt_stress::check_case;

/// Stress seed 0 (pa-risc-like), minimized by hand to the trigger: a
/// **back edge into the entry block**. Entry/exit placement puts every
/// save at `top(entry)`; before the fix that save re-executed on each
/// loop iteration, overwriting the caller's saved value with the
/// function's working value — `check_placement` flagged it as an
/// inconsistent merge and the whole suite panicked. The fix gives
/// `BlockTop(entry)` once-per-call semantics: the validator models it as
/// a virtual pre-entry transition, the insertion pass realizes it in a
/// fresh header block above the loop, the cost models price it by the
/// entry count, and edges into the entry block count the procedure
/// entry as an implicit predecessor (they can never sink code into the
/// entry's top).
const ENTRY_LOOP: &str = "\
module entry_loop
func @f0(0) {
  frame 1
  vregs 4
block entry:
  v0 = li 7
  v1 = load.data slot0
  v1 = add v1, 1
  store.data v1, slot0
  v2 = li 4
  r0 = call ext:1()
  v3 = mov r0
  v0 = xor v0, v3
  br lt v1, v2, entry, exit
block exit:
  r0 = mov v0
  ret r0
}
";

/// Stress seed 394 (riscv64-lp64 and aarch64-aapcs64), minimized by the
/// stress minimizer: the **modified** shrink-wrapping's initial sets
/// (per-path restores behind a shared handler) cost more than Chow's
/// original placement (one shared late restore), and the hierarchical
/// traversal — which can only replace sets at region boundaries — could
/// not recover, ending dynamically *worse than Chow* (28 vs 26 under
/// unit pricing). Fixed by the final group-wise comparison in
/// `hierarchical_placement_vs`: the traversal's result is compared
/// against both entry/exit and Chow under the physically accurate
/// accounting, on every cost model, and the cheapest wins.
const MODIFIED_WORSE_THAN_CHOW: &str = "\
module stress394
func @f0(2) {
  frame 0
  vregs 33
block entry:
  v0 = mov r0
  v1 = mov r1
  v2 = li 118430
  v1 = shr v1, 11
  v3 = and v1, 15
  v4 = li 14
  br ge v3, v4, bb4, bb3
block bb3:
  v5 = and v0, 63
  v6 = li 1
  br lt v5, v6, handler0, bb6
block bb6:
  v7 = li 0
  v8 = li 2
block bb7:
  br ge v7, v8, bb9, bb8
block bb8:
  v9 = and v1, 63
  v10 = li 1
  br lt v9, v10, bb9, bb10
block bb10:
  r0 = mov v1
  r1 = mov v1
  r0 = call ext:0(r0, r1)
  v7 = add v7, 1
  jmp bb7
block bb9:
  jmp bb5
block bb4:
  v12 = and v1, 15
  v13 = li 1
  br lt v12, v13, epilogue, bb11
block bb11:
  v15 = and v2, 15
  v16 = li 1
  br lt v15, v16, handler0, bb12
block bb12:
  v17 = and v1, 15
  v18 = li 1
  br lt v17, v18, epilogue, bb13
block bb13:
block bb5:
  v19 = and v1, 15
  v20 = li 14
  br ge v19, v20, bb15, bb14
block bb14:
  jmp bb16
block bb15:
  v21 = and v0, 15
  v22 = li 1
  br lt v21, v22, handler0, bb17
block bb17:
block bb16:
  v23 = and v0, 15
  v24 = li 8
  br ge v23, v24, bb19, bb18
block bb18:
  v25 = and v0, 127
  v26 = li 1
  br lt v25, v26, handler0, bb20
block bb20:
block bb19:
  v27 = and v0, 15
  v28 = li 8
  br ge v27, v28, bb22, bb21
block bb21:
  v29 = and v0, 127
  v30 = li 1
  br lt v29, v30, handler0, bb23
block bb23:
block bb22:
  jmp bb24
block handler0:
  jmp epilogue
block bb24:
block epilogue:
  v31 = xor v0, v1
  v32 = xor v31, v2
  r0 = mov v32
  ret r0
}
";

fn parse(text: &str) -> Module {
    let m = parse_module(text).expect("regression module parses");
    let errs = spillopt_ir::verify_module(&m, RegDiscipline::Virtual);
    assert!(errs.is_empty(), "regression module invalid: {errs:?}");
    m
}

#[test]
fn entry_loop_passes_all_oracles() {
    let module = parse(ENTRY_LOOP);
    let runs = vec![(FuncId::from_index(0), vec![])];
    for spec in spillopt_targets::registry() {
        check_case(&module, &runs, &spec)
            .unwrap_or_else(|e| panic!("entry-loop oracles on {}: {e}", spec.name));
    }
}

#[test]
fn entry_loop_placement_is_valid_and_realized_above_the_loop() {
    let module = parse(ENTRY_LOOP);
    let target = spillopt_ir::Target::default();
    let mut func = module.func(FuncId::from_index(0)).clone();
    allocate(&mut func, &target, None);
    let cfg = Cfg::compute(&func);
    let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
    assert!(!usage.is_empty(), "a value crosses the call");

    // The back edge into the entry is critical even with one explicit
    // predecessor: the procedure entry is an implicit second one.
    let back = cfg
        .edge_ids()
        .find(|&e| cfg.edge(e).to == cfg.entry())
        .expect("back edge to entry");
    assert!(cfg.is_critical(back));

    // Entry/exit placement validates (the original panic) ...
    let placement = entry_exit_placement(&cfg, &usage);
    assert_eq!(check_placement(&cfg, &usage, &placement), vec![]);

    // ... and insertion realizes the entry saves in a fresh header block
    // above the loop: the new layout head has no predecessors and falls
    // through into the old entry.
    let blocks_before = func.num_blocks();
    let report = insert_placement(&mut func, &cfg, &placement);
    assert!(report.new_blocks >= 1, "entry must be split");
    assert!(func.num_blocks() > blocks_before);
    let new_cfg = Cfg::compute(&func);
    assert_eq!(new_cfg.num_preds(new_cfg.entry()), 0);
    assert!(spillopt_ir::verify_function(&func, RegDiscipline::Physical).is_empty());
}

#[test]
fn hierarchical_is_never_worse_than_chow_on_the_394_module() {
    let module = parse(MODIFIED_WORSE_THAN_CHOW);
    let runs = vec![
        (FuncId::from_index(0), vec![-16439, 302436]),
        (FuncId::from_index(0), vec![426964, -393359]),
    ];
    // The module reads r0/r1 as its two arguments, which only matches
    // conventions whose first argument register is the return register
    // (RISC-V a0, AArch64 x0) — the targets the fuzzer caught it on.
    for name in ["riscv64-lp64", "aarch64-aapcs64"] {
        let spec = spillopt_targets::spec_by_name(name).expect("registered");
        let target = spec.try_to_target().expect("valid");

        // Full oracle battery (includes the never-worse check).
        check_case(&module, &runs, &spec).unwrap_or_else(|e| panic!("394 oracles on {name}: {e}"));

        // Targeted: reproduce the suite and assert the ordering that
        // used to fail: hier-jump <= chow and <= entry/exit.
        let mut vm = spillopt_profile::Machine::new(&module, &target);
        vm.set_fuel(1 << 28);
        for (f, args) in &runs {
            vm.call(*f, args).expect("reference run");
        }
        let profile = vm.edge_profile(FuncId::from_index(0));
        drop(vm);
        let mut func = module.func(FuncId::from_index(0)).clone();
        allocate(&mut func, &target, Some(&profile));
        let cfg = Cfg::compute(&func);
        let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
        assert!(!usage.is_empty());
        let inputs = SuiteInputs::compute(&cfg, &usage, &profile);
        let suite = run_suite(&cfg, &inputs, &SuiteOptions::priced(spec.costs))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let [entry_exit, chow, _, hier_jump] = suite.predicted;
        assert!(
            hier_jump <= chow,
            "{name}: hier-jump {hier_jump:?} worse than chow {chow:?}"
        );
        assert!(
            hier_jump <= entry_exit,
            "{name}: hier-jump {hier_jump:?} worse than entry/exit {entry_exit:?}"
        );
    }
}
