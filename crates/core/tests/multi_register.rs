//! Multi-register behaviour of the hierarchical algorithm: registers are
//! optimized independently ("for each callee-saved register allocated"),
//! jump-block cost is shared among initial sets, and hoisting respects
//! webs of the same register that cross a region boundary.

use spillopt_core::{
    check_placement, hierarchical_placement, modified_shrink_wrap, paper_example,
    placement_model_cost, CalleeSavedUsage, Cost, CostModel, EdgeShares, SpillKind, SpillLoc,
};
use spillopt_ir::{Cfg, Cond, FunctionBuilder, PReg, Reg};
use spillopt_profile::EdgeProfile;
use spillopt_pst::Pst;

/// Two registers with different busy regions get independent decisions.
#[test]
fn registers_are_placed_independently() {
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    // Second register busy only in K (cold); the first as in the paper.
    let mut usage = CalleeSavedUsage::new();
    for letter in ['D', 'E', 'G', 'K', 'N'] {
        usage.set_busy(ex.reg, ex.block(letter), 16);
    }
    let r2 = PReg::new(12);
    usage.set_busy(r2, ex.block('K'), 16);

    let res = hierarchical_placement(
        &ex.cfg,
        &pst,
        &usage,
        &ex.profile,
        CostModel::ExecutionCount,
    );
    assert!(check_placement(&ex.cfg, &usage, &res.placement).is_empty());

    // r11's outcome is unchanged by r2's presence: total r11 cost 190.
    let r11_cost: Cost = res
        .placement
        .points()
        .iter()
        .filter(|p| p.reg == ex.reg)
        .map(|p| {
            spillopt_core::location_cost(CostModel::ExecutionCount, &ex.cfg, &ex.profile, p.loc, 1)
        })
        .sum();
    assert_eq!(r11_cost, Cost::from_count(190));

    // r2 keeps its tight wrap around K (cost 50 < any boundary).
    let r2_points: Vec<_> = res.placement.points_for(r2).collect();
    assert_eq!(r2_points.len(), 2);
    assert!(r2_points
        .iter()
        .any(|p| p.kind == SpillKind::Save && p.loc == SpillLoc::OnEdge(ex.edge('I', 'K'))));
    assert!(r2_points
        .iter()
        .any(|p| p.kind == SpillKind::Restore && p.loc == SpillLoc::OnEdge(ex.edge('K', 'L'))));
}

/// Two registers busy in D/E share the D->F jump block: under the jump
/// edge model each initial set pays half the jump instruction.
#[test]
fn initial_sets_share_jump_cost() {
    let ex = paper_example();
    let mut usage = CalleeSavedUsage::new();
    let r2 = PReg::new(12);
    for letter in ['D', 'E'] {
        usage.set_busy(ex.reg, ex.block(letter), 16);
        usage.set_busy(r2, ex.block(letter), 16);
    }
    let init = modified_shrink_wrap(&ex.cfg, &usage);
    assert_eq!(init.sets.len(), 2);
    let shares = EdgeShares::from_sets(&init.sets);
    assert_eq!(shares.share(SpillLoc::OnEdge(ex.edge('D', 'F'))), 2);
    for set in &init.sets {
        // 40 + 10 + 30 + 30/2 = 95 (vs 110 unshared).
        assert_eq!(
            set.cost(CostModel::JumpEdge, &ex.cfg, &ex.profile, &shares),
            Cost::from_count(80) + Cost::from_fraction(30, 2)
        );
    }
}

/// A region is not hoisted when another web of the same register crosses
/// its boundary: the placement must stay valid.
#[test]
fn hoisting_guard_keeps_placements_valid() {
    // A -> B(busy) -> C(busy) -> D(busy) -> ret, where B..D would form a
    // hoistable chain, but the busy range extends past any single region.
    // Plus a diamond around C so a region exists whose boundary splits the
    // busy range.
    let mut fb = FunctionBuilder::new("guard", 0);
    let a = fb.create_block(None);
    let b = fb.create_block(None);
    let c1 = fb.create_block(None);
    let c2 = fb.create_block(None);
    let d = fb.create_block(None);
    fb.switch_to(a);
    let x = fb.li(0);
    fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c1, b);
    fb.switch_to(b);
    fb.jump(c2);
    fb.switch_to(c1);
    fb.jump(c2);
    fb.switch_to(c2);
    fb.jump(d);
    fb.switch_to(d);
    fb.ret(None);
    let f = fb.finish();
    let cfg = Cfg::compute(&f);
    let pst = Pst::compute(&cfg);
    let profile = spillopt_profile::random_walk_profile(&cfg, 100, 32, 5);

    // One register, two disjoint webs: {b} and {c2, d} — the second
    // crosses several region boundaries.
    let r = PReg::new(11);
    let mut usage = CalleeSavedUsage::new();
    usage.set_busy(r, b, 5);
    usage.set_busy(r, c2, 5);
    usage.set_busy(r, d, 5);

    for model in [CostModel::ExecutionCount, CostModel::JumpEdge] {
        let res = hierarchical_placement(&cfg, &pst, &usage, &profile, model);
        let errs = check_placement(&cfg, &usage, &res.placement);
        assert!(errs.is_empty(), "{model:?}: {errs:?}");
    }
}

/// All thirteen callee-saved registers at once: the full-convention stress
/// case stays valid and never beats per-register lower bounds.
#[test]
fn thirteen_registers_stress() {
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    let mut usage = CalleeSavedUsage::new();
    let letters = [
        'D', 'E', 'G', 'K', 'N', 'C', 'F', 'J', 'M', 'I', 'L', 'O', 'B',
    ];
    for (i, &letter) in letters.iter().enumerate() {
        let reg = PReg::new(11 + (i as u8 % 13).min(12));
        usage.set_busy(reg, ex.block(letter), 16);
    }
    for model in [CostModel::ExecutionCount, CostModel::JumpEdge] {
        let res = hierarchical_placement(&ex.cfg, &pst, &usage, &ex.profile, model);
        let errs = check_placement(&ex.cfg, &usage, &res.placement);
        assert!(errs.is_empty(), "{model:?}: {errs:?}");
        // Never worse than entry/exit in total.
        let ee = spillopt_core::entry_exit_placement(&ex.cfg, &usage);
        let cost = |p: &spillopt_core::Placement| {
            placement_model_cost(model, &ex.cfg, &ex.profile, p, &EdgeShares::none())
        };
        assert!(cost(&res.placement) <= cost(&ee));
    }
}

/// A profile of all zeroes (procedure never entered during training) must
/// not break anything: ties go to replacement, everything stays valid.
#[test]
fn zero_profile_degenerates_gracefully() {
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    let zero = EdgeProfile::zeroed(&ex.cfg);
    for model in [CostModel::ExecutionCount, CostModel::JumpEdge] {
        let res = hierarchical_placement(&ex.cfg, &pst, &ex.usage, &zero, model);
        assert!(check_placement(&ex.cfg, &ex.usage, &res.placement).is_empty());
    }
}
