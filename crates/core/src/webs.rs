//! Grouping save/restore locations into sets by data-flow webs.
//!
//! The paper identifies the initial save/restore sets "using standard
//! compiler data flow techniques for computing variable live ranges or
//! webs. Save instructions represent the beginning of a web [...] and
//! restore instructions represent the termination of a web." This module
//! implements that construction generically over any placement: a
//! *reaching saves* analysis connects each restore to the saves that reach
//! it, and the connected components are the sets.
//!
//! [`crate::modified`] builds its sets directly from busy clusters; tests
//! assert both constructions agree, which is exactly the live-range/web
//! equivalence the paper appeals to.

use crate::location::{Placement, SpillKind, SpillLoc, SpillPoint};
use spillopt_ir::{Cfg, DenseBitSet, PReg, UnionFind};

/// Groups the points of `placement` into save/restore sets (webs), per
/// register. Each returned group is one web: saves and the restores they
/// reach, transitively connected.
pub fn group_into_webs(cfg: &Cfg, placement: &Placement) -> Vec<Vec<SpillPoint>> {
    let mut out = Vec::new();
    for reg in placement.regs() {
        out.extend(webs_for_reg(cfg, placement, reg));
    }
    out
}

fn webs_for_reg(cfg: &Cfg, placement: &Placement, reg: PReg) -> Vec<Vec<SpillPoint>> {
    let points: Vec<&SpillPoint> = placement.points_for(reg).collect();
    if points.is_empty() {
        return Vec::new();
    }
    let num_points = points.len();
    let point_index = |p: &SpillPoint| points.iter().position(|q| *q == p).expect("own point");

    // Per-location point lists (restores sort before saves, preserving
    // the same-location semantics).
    let n = cfg.num_blocks();
    let mut top: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut bottom: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut on_edge: Vec<Vec<usize>> = vec![Vec::new(); cfg.num_edges()];
    for (i, p) in points.iter().enumerate() {
        match p.loc {
            SpillLoc::BlockTop(b) => top[b.index()].push(i),
            SpillLoc::BlockBottom(b) => bottom[b.index()].push(i),
            SpillLoc::OnEdge(e) => on_edge[e.index()].push(i),
        }
    }

    // Reaching-saves fixpoint; at each restore, union it with every
    // reaching save.
    let mut uf = UnionFind::new(num_points);
    let mut entry_state: Vec<DenseBitSet> = vec![DenseBitSet::new(num_points); n];
    // Scratch buffers reused across the whole fixpoint (no per-block or
    // per-edge allocation).
    let mut active = DenseBitSet::new(num_points);
    let mut after = DenseBitSet::new(num_points);
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..n {
            active.copy_from(&entry_state[bi]);
            let transfer = |ids: &[usize], active: &mut DenseBitSet, uf: &mut UnionFind| {
                for &i in ids {
                    match points[i].kind {
                        SpillKind::Restore => {
                            for s in active.iter() {
                                uf.union(i, s);
                            }
                            active.clear();
                        }
                        SpillKind::Save => {
                            active.insert(i);
                        }
                    }
                }
            };
            transfer(&top[bi], &mut active, &mut uf);
            transfer(&bottom[bi], &mut active, &mut uf);
            for &e in cfg.succ_edges(spillopt_ir::BlockId::from_index(bi)) {
                after.copy_from(&active);
                transfer(&on_edge[e.index()], &mut after, &mut uf);
                let to = cfg.edge(e).to.index();
                if entry_state[to].union_with(&after) {
                    changed = true;
                }
            }
        }
    }

    // Components.
    let mut comp: std::collections::HashMap<usize, Vec<SpillPoint>> =
        std::collections::HashMap::new();
    for p in &points {
        let root = uf.find(point_index(p));
        comp.entry(root).or_default().push(**p);
    }
    let mut webs: Vec<Vec<SpillPoint>> = comp.into_values().collect();
    for w in &mut webs {
        w.sort();
    }
    webs.sort();
    webs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modified::modified_shrink_wrap;
    use crate::usage::CalleeSavedUsage;
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    #[test]
    fn separate_clusters_yield_separate_webs() {
        // A(busy r11) -> B -> C(busy r11) -> ret.
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(c);
        fb.switch_to(c);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let r = spillopt_ir::PReg::new(11);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(r, a, 3);
        usage.set_busy(r, c, 3);
        let init = modified_shrink_wrap(&cfg, &usage);
        let placement = init.placement();
        let webs = group_into_webs(&cfg, &placement);
        assert_eq!(webs.len(), 2, "two independent webs");
        // Webs agree with the cluster-based sets.
        let mut cluster_sets: Vec<Vec<SpillPoint>> = init
            .sets
            .iter()
            .map(|s| {
                let mut v = s.points.clone();
                v.sort();
                v
            })
            .collect();
        cluster_sets.sort();
        assert_eq!(webs, cluster_sets);
    }

    #[test]
    fn branching_web_stays_connected() {
        // Busy diamond: save above the branch, restores on both arms'
        // exits — one web.
        let mut fb = FunctionBuilder::new("g", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let r = spillopt_ir::PReg::new(11);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(r, b, 4);
        usage.set_busy(r, c, 4);
        // Busy on both arms: clusters {B} and {C} are disjoint in the
        // graph, so two webs; but busy A too makes one.
        usage.set_busy(r, a, 4);
        let init = modified_shrink_wrap(&cfg, &usage);
        let webs = group_into_webs(&cfg, &init.placement());
        assert_eq!(webs.len(), 1);
        let w = &webs[0];
        assert_eq!(
            w.iter().filter(|p| p.kind == SpillKind::Save).count(),
            1,
            "single save at entry"
        );
        assert_eq!(
            w.iter().filter(|p| p.kind == SpillKind::Restore).count(),
            2,
            "restore on each arm exit"
        );
    }

    #[test]
    fn different_registers_never_share_webs() {
        let mut fb = FunctionBuilder::new("h", 0);
        let a = fb.create_block(None);
        fb.switch_to(a);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(spillopt_ir::PReg::new(11), a, 1);
        usage.set_busy(spillopt_ir::PReg::new(12), a, 1);
        let init = modified_shrink_wrap(&cfg, &usage);
        let webs = group_into_webs(&cfg, &init.placement());
        assert_eq!(webs.len(), 2);
    }
}
