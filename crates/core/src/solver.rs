//! The bit-parallel saved-region solver: all callee-saved registers of a
//! target at once.
//!
//! The retired solver ([`crate::dataflow`], kept as the differential
//! oracle) grows one saved region per register — each register pays its
//! own anticipation/availability fixpoints over the whole CFG. Targets
//! cap callee-saved registers far below the machine word (13 on the
//! paper's PA-RISC), so this module packs *all* of them into one word
//! per block ([`RegWords`]) and runs every transfer function as word
//! ops:
//!
//! * Chow's growth rules (loop absorption, anticipation/availability
//!   hoisting, jump-edge absorption) apply to all registers
//!   simultaneously ([`chow_grow_all`]); the per-register projection of
//!   the result equals [`crate::dataflow::chow_grow`] exactly, because
//!   every rule is a monotone inflationary operator and the least common
//!   closure is unique;
//! * the region boundary of every register falls out of **one** edge
//!   sweep (`w[from] ^ w[to]` masks) instead of one sweep per register
//!   ([`chow_points_all`]);
//! * the paper's initial save/restore sets are assembled from the same
//!   single sweep over per-register busy words plus a cluster labelling
//!   ([`initial_sets_all`]), replacing one boundary sweep per (register,
//!   cluster).
//!
//! More than 64 callee-saved registers cannot occur on a real target
//! (conventions top out around a dozen); the entry points fall back to
//! the per-register reference implementation in that case rather than
//! chunking words.

use crate::location::{SpillKind, SpillLoc, SpillPoint};
use crate::sets::SaveRestoreSet;
use crate::usage::CalleeSavedUsage;
use spillopt_ir::analysis::loops::CyclicRegion;
use spillopt_ir::{Cfg, DenseBitSet, DerivedCfg, PReg};

/// One membership word per block: bit `r` of `words[b]` means block `b`
/// is in register `r`'s set, with registers numbered by their
/// [`CalleeSavedUsage`] order.
#[derive(Clone, Debug)]
pub struct RegWords {
    /// Per-block membership words.
    pub words: Vec<u64>,
    /// Bit order: `regs[r]` is the register of bit `r`.
    pub regs: Vec<PReg>,
}

impl RegWords {
    /// Packs the busy sets of `usage` into per-block words. Returns
    /// `None` when more than 64 registers are in use (callers fall back
    /// to the per-register path).
    pub fn from_busy(num_blocks: usize, usage: &CalleeSavedUsage) -> Option<Self> {
        if usage.num_regs() > 64 {
            return None;
        }
        let regs: Vec<PReg> = usage.regs().map(|(r, _)| r).collect();
        let mut words = vec![0u64; num_blocks];
        for (bit, (_, busy)) in usage.regs().enumerate() {
            for b in busy.iter_ones() {
                words[b] |= 1 << bit;
            }
        }
        Some(RegWords { words, regs })
    }

    /// Projects bit `r` out into a per-block set (for tests and
    /// differential checks).
    pub fn project(&self, bit: usize) -> DenseBitSet {
        let mut out = DenseBitSet::new(self.words.len());
        for (b, &w) in self.words.iter().enumerate() {
            if w & (1 << bit) != 0 {
                out.insert(b);
            }
        }
        out
    }
}

/// Grows every register's busy set into Chow's saved region in one
/// fixpoint over membership words. See [`crate::dataflow::chow_grow`]
/// for the rules; each is applied to all registers at once:
///
/// * **loop rule** — `any = OR, all = AND` over a cyclic region's words;
///   registers in `any & !all` absorb the whole region;
/// * **hoisting** — anticipation (`w[b] |= AND over successors`) and
///   availability (`w[b] |= AND over predecessors`) iterate as word ops
///   to their own fixpoints;
/// * **jump-edge rule** — for each critical jump edge, registers with
///   exactly one endpoint inside (`w[from] ^ w[to]`) absorb the other
///   endpoint.
pub fn chow_grow_all(
    derived: &DerivedCfg,
    entry: usize,
    cyclic: &[CyclicRegion],
    w: &mut RegWords,
) {
    let _s = spillopt_obs::span("solver_fixpoint");
    let n = derived.num_blocks();
    // The critical jump edges, from the derived edge tables.
    let mut jump_edges: Vec<(u32, u32)> = Vec::new();
    for e in derived.needs_jump.iter_ones() {
        jump_edges.push((derived.edge_from[e], derived.edge_to[e]));
    }

    let mut iterations: u64 = 0;
    loop {
        let mut changed = false;
        iterations += 1;
        spillopt_obs::fault::budget_tick("solver_fixpoint", 1);

        // 1. Loop rule.
        for region in cyclic {
            let mut any = 0u64;
            let mut all = !0u64;
            for b in region.blocks.iter_ones() {
                any |= w.words[b];
                all &= w.words[b];
            }
            let grow = any & !all;
            if grow != 0 {
                for b in region.blocks.iter_ones() {
                    w.words[b] |= grow;
                }
                changed = true;
            }
        }

        // 2. Hoisting closures, each to its own fixpoint (matching the
        // reference, which closes anticipation fully, then availability).
        let mut local = true;
        while local {
            local = false;
            for bi in (0..n).rev() {
                let succs = derived.succ.row(bi);
                if succs.is_empty() {
                    continue;
                }
                let mut all = !0u64;
                for &e in succs {
                    all &= w.words[derived.edge_to[e as usize] as usize];
                }
                let next = w.words[bi] | all;
                if next != w.words[bi] {
                    w.words[bi] = next;
                    local = true;
                    changed = true;
                }
            }
        }
        let mut local = true;
        while local {
            local = false;
            for bi in 0..n {
                if bi == entry {
                    continue;
                }
                let preds = derived.pred.row(bi);
                if preds.is_empty() {
                    continue;
                }
                let mut all = !0u64;
                for &e in preds {
                    all &= w.words[derived.edge_from[e as usize] as usize];
                }
                let next = w.words[bi] | all;
                if next != w.words[bi] {
                    w.words[bi] = next;
                    local = true;
                    changed = true;
                }
            }
        }

        // 3. Jump-edge rule: absorb the outside endpoint of any critical
        // jump edge crossed by a register's boundary.
        for &(from, to) in &jump_edges {
            let cross = w.words[from as usize] ^ w.words[to as usize];
            if cross != 0 {
                w.words[from as usize] |= cross;
                w.words[to as usize] |= cross;
                changed = true;
            }
        }

        if !changed {
            spillopt_obs::count("solver_fixpoint_iters", iterations);
            return;
        }
    }
}

/// Chow's shrink-wrapping placement for all used callee-saved registers
/// via the bit-parallel solver, as [`SpillPoint`]s (unsorted; the caller
/// builds the [`crate::Placement`], which sorts). Returns `None` when
/// the register count exceeds one word.
pub fn chow_points_all(
    cfg: &Cfg,
    derived: &DerivedCfg,
    cyclic: &[CyclicRegion],
    usage: &CalleeSavedUsage,
) -> Option<Vec<SpillPoint>> {
    let mut w = RegWords::from_busy(cfg.num_blocks(), usage)?;
    chow_grow_all(derived, cfg.entry().index(), cyclic, &mut w);
    Some(chow_boundaries(cfg, &w))
}

/// Extracts every register's region-boundary placement from grown
/// membership words in one sweep over the entry, the edges, and the
/// exits.
fn chow_boundaries(cfg: &Cfg, w: &RegWords) -> Vec<SpillPoint> {
    let mut points = Vec::new();
    let entry = cfg.entry().index();
    let entry_word = w.words[entry];
    for (bit, &reg) in w.regs.iter().enumerate() {
        if entry_word & (1 << bit) != 0 {
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(cfg.entry()),
            });
        }
    }
    for (id, e) in cfg.edges() {
        let (fw, tw) = (w.words[e.from.index()], w.words[e.to.index()]);
        let mut saves = !fw & tw;
        let mut restores = fw & !tw;
        debug_assert!(
            saves | restores == 0 || !cfg.needs_jump_block(id),
            "Chow placement reached a critical jump edge"
        );
        while saves != 0 {
            let bit = saves.trailing_zeros() as usize;
            saves &= saves - 1;
            points.push(SpillPoint {
                reg: w.regs[bit],
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(id),
            });
        }
        while restores != 0 {
            let bit = restores.trailing_zeros() as usize;
            restores &= restores - 1;
            points.push(SpillPoint {
                reg: w.regs[bit],
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(id),
            });
        }
    }
    for &x in cfg.exit_blocks() {
        let mut word = w.words[x.index()];
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            points.push(SpillPoint {
                reg: w.regs[bit],
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(x),
            });
        }
    }
    points
}

/// The paper's initial save/restore sets — one set per (register,
/// connected busy cluster) — assembled from a single edge sweep over the
/// busy membership words. Returns `None` when the register count exceeds
/// one word.
///
/// Produces exactly the sets of the retired per-cluster scan
/// ([`crate::reference::modified_shrink_wrap_reference`]): same set
/// order (registers in usage order, clusters by smallest block index),
/// same point order within each set (entry save, save edges ascending,
/// restore edges ascending, exit restores in exit-block order).
pub fn initial_sets_all(
    cfg: &Cfg,
    derived: &DerivedCfg,
    usage: &CalleeSavedUsage,
) -> Option<Vec<SaveRestoreSet>> {
    let n = cfg.num_blocks();
    let w = RegWords::from_busy(n, usage)?;
    let num_regs = w.regs.len();
    if num_regs == 0 {
        return Some(Vec::new());
    }

    // Label the busy clusters of every register: labels[r][b] = dense
    // cluster id (discovery order = ascending smallest block index,
    // matching `busy_clusters`).
    let mut labels = vec![u32::MAX; num_regs * n];
    let mut cluster_blocks: Vec<Vec<DenseBitSet>> = vec![Vec::new(); num_regs];
    let mut stack: Vec<usize> = Vec::new();
    for (bit, (_, busy)) in usage.regs().enumerate() {
        let lab = &mut labels[bit * n..(bit + 1) * n];
        for start in busy.iter_ones() {
            if lab[start] != u32::MAX {
                continue;
            }
            let id = cluster_blocks[bit].len() as u32;
            let mut comp = DenseBitSet::new(n);
            lab[start] = id;
            comp.insert(start);
            stack.push(start);
            while let Some(b) = stack.pop() {
                let succs = derived
                    .succ
                    .row(b)
                    .iter()
                    .map(|&e| derived.edge_to[e as usize]);
                let preds = derived
                    .pred
                    .row(b)
                    .iter()
                    .map(|&e| derived.edge_from[e as usize]);
                for nb in succs.chain(preds) {
                    let i = nb as usize;
                    if busy.contains(i) && lab[i] == u32::MAX {
                        lab[i] = id;
                        comp.insert(i);
                        stack.push(i);
                    }
                }
            }
            cluster_blocks[bit].push(comp);
        }
    }

    // Per (register, cluster) point accumulators, filled in one sweep.
    let mut entry_save: Vec<Vec<bool>> = (0..num_regs)
        .map(|bit| vec![false; cluster_blocks[bit].len()])
        .collect();
    let mut saves: Vec<Vec<Vec<SpillPoint>>> = (0..num_regs)
        .map(|bit| vec![Vec::new(); cluster_blocks[bit].len()])
        .collect();
    let mut restores: Vec<Vec<Vec<SpillPoint>>> = (0..num_regs)
        .map(|bit| vec![Vec::new(); cluster_blocks[bit].len()])
        .collect();
    let mut exits: Vec<Vec<Vec<SpillPoint>>> = (0..num_regs)
        .map(|bit| vec![Vec::new(); cluster_blocks[bit].len()])
        .collect();

    let entry = cfg.entry().index();
    let mut word = w.words[entry];
    while word != 0 {
        let bit = word.trailing_zeros() as usize;
        word &= word - 1;
        let c = labels[bit * n + entry] as usize;
        entry_save[bit][c] = true;
    }
    for e in 0..derived.num_edges() {
        let (from, to) = (derived.edge_from[e] as usize, derived.edge_to[e] as usize);
        let (fw, tw) = (w.words[from], w.words[to]);
        let id = spillopt_ir::EdgeId::from_index(e);
        let mut save_mask = !fw & tw;
        while save_mask != 0 {
            let bit = save_mask.trailing_zeros() as usize;
            save_mask &= save_mask - 1;
            let c = labels[bit * n + to] as usize;
            saves[bit][c].push(SpillPoint {
                reg: w.regs[bit],
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(id),
            });
        }
        let mut restore_mask = fw & !tw;
        while restore_mask != 0 {
            let bit = restore_mask.trailing_zeros() as usize;
            restore_mask &= restore_mask - 1;
            let c = labels[bit * n + from] as usize;
            restores[bit][c].push(SpillPoint {
                reg: w.regs[bit],
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(id),
            });
        }
    }
    for &x in cfg.exit_blocks() {
        let mut word = w.words[x.index()];
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            let c = labels[bit * n + x.index()] as usize;
            exits[bit][c].push(SpillPoint {
                reg: w.regs[bit],
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(x),
            });
        }
    }

    let mut sets = Vec::new();
    for bit in 0..num_regs {
        let reg = w.regs[bit];
        for (c, cluster) in cluster_blocks[bit].drain(..).enumerate() {
            let mut points = Vec::with_capacity(
                entry_save[bit][c] as usize
                    + saves[bit][c].len()
                    + restores[bit][c].len()
                    + exits[bit][c].len(),
            );
            if entry_save[bit][c] {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Save,
                    loc: SpillLoc::BlockTop(cfg.entry()),
                });
            }
            points.append(&mut saves[bit][c]);
            points.append(&mut restores[bit][c]);
            points.append(&mut exits[bit][c]);
            sets.push(SaveRestoreSet {
                reg,
                points,
                cluster,
                initial: true,
            });
        }
    }
    Some(sets)
}

/// Per-(region, register) busy-block counts over a PST — the
/// profile-independent half of the hierarchical traversal's hoistability
/// test, solved bit-parallel: one sweep per region over the packed busy
/// words instead of one bitset intersection per (region, register) per
/// cost model per session.
///
/// The delta-driven session memo ([`crate::incremental`]) computes this
/// once per function structure and reuses it across every cost model and
/// every incremental refold; the cold traversal keeps the per-register
/// scratch-bitset intersection as the differential oracle.
#[derive(Clone, Debug)]
pub struct RegionBusyCounts {
    /// Bit order, as in [`RegWords::regs`] (usage order).
    regs: Vec<PReg>,
    /// `counts[region * regs.len() + bit]` = number of busy blocks of
    /// register `bit` inside that region.
    counts: Vec<u32>,
}

impl RegionBusyCounts {
    /// Counts, for every PST region and callee-saved register, the busy
    /// blocks of the register inside the region. Returns `None` when
    /// more than 64 registers are in use (callers keep the per-register
    /// intersection path).
    pub fn compute(
        pst: &spillopt_pst::Pst,
        num_blocks: usize,
        usage: &CalleeSavedUsage,
    ) -> Option<Self> {
        let w = RegWords::from_busy(num_blocks, usage)?;
        let num_regs = w.regs.len();
        let mut counts = vec![0u32; pst.num_regions() * num_regs];
        for region in pst.regions() {
            let row = &mut counts[region.id.index() * num_regs..][..num_regs];
            for b in region.blocks.iter() {
                let mut word = w.words[b];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    row[bit] += 1;
                }
            }
        }
        Some(RegionBusyCounts {
            regs: w.regs,
            counts,
        })
    }

    /// The busy-block count of `reg` inside `region`, or `None` if the
    /// register is not tracked (never busy anywhere).
    pub fn count(&self, region: spillopt_pst::RegionId, reg: PReg) -> Option<usize> {
        let bit = self.regs.iter().position(|&r| r == reg)?;
        Some(self.counts[region.index() * self.regs.len() + bit] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::chow_grow;
    use spillopt_ir::analysis::loops::sccs;
    use spillopt_ir::{BlockId, Cond, FunctionBuilder, Reg};

    /// A loopy multi-exit shape exercising every growth rule.
    fn shape() -> spillopt_ir::Function {
        let mut fb = FunctionBuilder::new("s", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        let e = fb.create_block(None);
        let f = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), b, e);
        fb.switch_to(e);
        fb.branch(Cond::Eq, Reg::Virt(x), Reg::Virt(x), a, f);
        fb.switch_to(f);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn bit_parallel_growth_matches_per_register() {
        let f = shape();
        let cfg = Cfg::compute(&f);
        let cyclic = sccs(&cfg);
        let n = cfg.num_blocks();
        // Several registers with different busy shapes.
        let mut usage = CalleeSavedUsage::new();
        for (i, blocks) in [vec![1], vec![2, 3], vec![4], vec![0, 5], vec![3]]
            .iter()
            .enumerate()
        {
            for &b in blocks {
                usage.set_busy(PReg::new(11 + i as u8), BlockId::from_index(b), n);
            }
        }
        let mut w = RegWords::from_busy(n, &usage).expect("fits one word");
        let derived = DerivedCfg::compute(&cfg);
        chow_grow_all(&derived, cfg.entry().index(), &cyclic, &mut w);
        for (bit, (_, busy)) in usage.regs().enumerate() {
            let expect = chow_grow(&cfg, &cyclic, busy);
            assert_eq!(w.project(bit), expect, "register bit {bit}");
        }
    }

    #[test]
    fn region_busy_counts_match_bitset_intersections() {
        let f = shape();
        let cfg = Cfg::compute(&f);
        let pst = spillopt_pst::Pst::compute(&cfg);
        let n = cfg.num_blocks();
        let mut usage = CalleeSavedUsage::new();
        for (i, blocks) in [vec![1], vec![2, 3], vec![0, 5], vec![4]]
            .iter()
            .enumerate()
        {
            for &b in blocks {
                usage.set_busy(PReg::new(11 + i as u8), BlockId::from_index(b), n);
            }
        }
        let counts = RegionBusyCounts::compute(&pst, n, &usage).expect("fits one word");
        let mut scratch = DenseBitSet::new(n);
        for region in pst.regions() {
            for (reg, busy) in usage.regs() {
                scratch.set_to_intersection(busy, &region.blocks);
                assert_eq!(
                    counts.count(region.id, reg),
                    Some(scratch.count()),
                    "region {} reg {reg:?}",
                    region.id
                );
            }
        }
        assert_eq!(counts.count(pst.root(), PReg::new(42)), None);
    }

    #[test]
    fn initial_sets_match_reference() {
        let f = shape();
        let cfg = Cfg::compute(&f);
        let n = cfg.num_blocks();
        let mut usage = CalleeSavedUsage::new();
        for (i, blocks) in [vec![1], vec![2, 5], vec![0, 3], vec![4]]
            .iter()
            .enumerate()
        {
            for &b in blocks {
                usage.set_busy(PReg::new(11 + i as u8), BlockId::from_index(b), n);
            }
        }
        let derived = DerivedCfg::compute(&cfg);
        let fast = initial_sets_all(&cfg, &derived, &usage).expect("fits one word");
        let slow = crate::reference::modified_shrink_wrap_reference(&cfg, &usage);
        assert_eq!(fast.len(), slow.sets.len());
        for (a, b) in fast.iter().zip(&slow.sets) {
            assert_eq!(a, b);
        }
    }
}
