//! The save/restore region dataflow shared by Chow's shrink-wrapping and
//! the paper's modified variant.
//!
//! Both techniques reduce to choosing, per callee-saved register, a
//! *saved region* `W ⊇ busy blocks`, then placing a save on every edge
//! entering `W` (plus the procedure entry if the entry block is in `W`)
//! and a restore on every edge leaving `W` (plus before every return in
//! `W`). Such a placement is valid for **any** `W ⊇ busy`: along every
//! execution path, crossings of the region boundary alternate
//! save/restore, every busy block is reached in saved state, and the
//! original value is always restored before leaving.
//!
//! * The **modified** technique (the paper's initial save/restore sets)
//!   uses `W = busy` exactly.
//! * **Chow's original** technique grows `W` to a fixpoint of three rules:
//!   cyclic regions (his artificial data flow over loop bodies),
//!   all-paths anticipation/availability closure (his save hoisting), and
//!   absorption across critical jump edges (his prohibition of spill code
//!   on jump edges). See [`chow_grow`].

use spillopt_ir::{BlockId, Cfg, DenseBitSet, EdgeId};

/// The save/restore boundary of a saved region `W`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionBoundaryPlacement {
    /// Save at the top of the entry block (entry block ∈ W).
    pub save_at_entry: bool,
    /// Save on each of these edges (from outside W into W).
    pub save_edges: Vec<EdgeId>,
    /// Restore on each of these edges (from W to outside W).
    pub restore_edges: Vec<EdgeId>,
    /// Restore at the bottom of each of these return blocks (∈ W).
    pub restore_at_exits: Vec<BlockId>,
}

/// Computes the boundary placement of saved region `w`.
pub fn region_boundary(cfg: &Cfg, w: &DenseBitSet) -> RegionBoundaryPlacement {
    let mut out = RegionBoundaryPlacement {
        save_at_entry: w.contains(cfg.entry().index()),
        ..Default::default()
    };
    for (id, e) in cfg.edges() {
        let from_in = w.contains(e.from.index());
        let to_in = w.contains(e.to.index());
        if !from_in && to_in {
            out.save_edges.push(id);
        } else if from_in && !to_in {
            out.restore_edges.push(id);
        }
    }
    for &b in cfg.exit_blocks() {
        if w.contains(b.index()) {
            out.restore_at_exits.push(b);
        }
    }
    out
}

/// All-paths anticipation: blocks from which *every* path to an exit
/// (immediately) stays headed into `w`. `antic(b)` is true iff `b ∈ w` or
/// all of `b`'s successors are anticipated (and `b` has successors).
pub fn antic_closure(cfg: &Cfg, w: &DenseBitSet) -> DenseBitSet {
    let n = cfg.num_blocks();
    let mut antic = w.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..n).rev() {
            if antic.contains(bi) {
                continue;
            }
            let b = BlockId::from_index(bi);
            let mut succs = cfg.succ_blocks(b).peekable();
            if succs.peek().is_none() {
                continue;
            }
            if succs.all(|s| antic.contains(s.index())) {
                antic.insert(bi);
                changed = true;
            }
        }
    }
    antic
}

/// All-paths availability: blocks that every path from the entry reaches
/// only after entering `w`. `avail(b)` is true iff `b ∈ w` or all of `b`'s
/// predecessors are available (and `b` is not the entry).
pub fn avail_closure(cfg: &Cfg, w: &DenseBitSet) -> DenseBitSet {
    let n = cfg.num_blocks();
    let mut avail = w.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..n {
            if avail.contains(bi) {
                continue;
            }
            let b = BlockId::from_index(bi);
            if b == cfg.entry() {
                continue;
            }
            let mut preds = cfg.pred_blocks(b).peekable();
            if preds.peek().is_none() {
                continue;
            }
            if preds.all(|p| avail.contains(p.index())) {
                avail.insert(bi);
                changed = true;
            }
        }
    }
    avail
}

/// Grows a busy set into Chow's saved region: the fixpoint of
///
/// 1. **loop rule** — absorb any cyclic region (SCC) intersecting `W`
///    (Chow's artificial data flow over loop bodies, which keeps saves and
///    restores out of loops);
/// 2. **hoisting rule** — absorb the anticipation and availability
///    closures (Chow's dataflow places the save where the register first
///    becomes anticipated along all paths, and the restore where it stops
///    being available);
/// 3. **jump-edge rule** — if a boundary edge is a critical *jump* edge
///    (spill code there would need a jump block, which Chow prohibits),
///    absorb its outside endpoint (Chow's artificial data flow along the
///    jump edge) and reiterate.
pub fn chow_grow(
    cfg: &Cfg,
    cyclic_regions: &[spillopt_ir::analysis::loops::CyclicRegion],
    busy: &DenseBitSet,
) -> DenseBitSet {
    let mut w = busy.clone();
    loop {
        let mut changed = false;

        // 1. Loop rule.
        for region in cyclic_regions {
            if !w.is_disjoint(&region.blocks) && !region.blocks.is_subset(&w) {
                w.union_with(&region.blocks);
                changed = true;
            }
        }

        // 2. Hoisting closures.
        let antic = antic_closure(cfg, &w);
        if antic != w {
            w = antic;
            changed = true;
        }
        let avail = avail_closure(cfg, &w);
        if avail != w {
            w = avail;
            changed = true;
        }

        // 3. Jump-edge rule.
        let boundary = region_boundary(cfg, &w);
        for &e in boundary.save_edges.iter().chain(&boundary.restore_edges) {
            if cfg.needs_jump_block(e) {
                let edge = cfg.edge(e);
                let outside = if w.contains(edge.from.index()) {
                    edge.to
                } else {
                    edge.from
                };
                if w.insert(outside.index()) {
                    changed = true;
                }
            }
        }

        if !changed {
            return w;
        }
    }
}

/// Connected components of a busy set under (undirected) CFG adjacency.
/// Each component is an independent save/restore *web*: the initial
/// save/restore sets of the paper.
pub fn busy_clusters(cfg: &Cfg, busy: &DenseBitSet) -> Vec<DenseBitSet> {
    let n = cfg.num_blocks();
    let mut seen = DenseBitSet::new(n);
    let mut out = Vec::new();
    for start in busy.iter() {
        if seen.contains(start) {
            continue;
        }
        let mut comp = DenseBitSet::new(n);
        let mut stack = vec![BlockId::from_index(start)];
        comp.insert(start);
        seen.insert(start);
        while let Some(b) = stack.pop() {
            for nb in cfg.succ_blocks(b).chain(cfg.pred_blocks(b)) {
                if busy.contains(nb.index()) && !seen.contains(nb.index()) {
                    seen.insert(nb.index());
                    comp.insert(nb.index());
                    stack.push(nb);
                }
            }
        }
        out.push(comp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::analysis::loops::sccs;
    use spillopt_ir::{Cond, Function, FunctionBuilder, Reg};

    /// A -> {B busy, C} -> D(ret). Busy = {B}.
    fn diamond_busy() -> (Function, [BlockId; 4]) {
        let mut fb = FunctionBuilder::new("d", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        (fb.finish(), [a, b, c, d])
    }

    #[test]
    fn boundary_of_single_block_region() {
        let (f, [a, b, _c, d]) = diamond_busy();
        let cfg = Cfg::compute(&f);
        let mut w = DenseBitSet::new(4);
        w.insert(b.index());
        let rb = region_boundary(&cfg, &w);
        assert!(!rb.save_at_entry);
        assert_eq!(rb.save_edges, vec![cfg.edge_between(a, b).unwrap()]);
        assert_eq!(rb.restore_edges, vec![cfg.edge_between(b, d).unwrap()]);
        assert!(rb.restore_at_exits.is_empty());
    }

    #[test]
    fn whole_procedure_region_uses_entry_and_exits() {
        let (f, [a, _b, _c, d]) = diamond_busy();
        let cfg = Cfg::compute(&f);
        let mut w = DenseBitSet::new(4);
        for i in 0..4 {
            w.insert(i);
        }
        let rb = region_boundary(&cfg, &w);
        assert!(rb.save_at_entry);
        assert!(rb.save_edges.is_empty());
        assert!(rb.restore_edges.is_empty());
        assert_eq!(rb.restore_at_exits, vec![d]);
        let _ = a;
    }

    #[test]
    fn antic_closure_stops_at_partial_paths() {
        let (f, [a, b, _c, _d]) = diamond_busy();
        let cfg = Cfg::compute(&f);
        let mut w = DenseBitSet::new(4);
        w.insert(b.index());
        let antic = antic_closure(&cfg, &w);
        // A has a successor (C) that is not anticipated: A stays out.
        assert!(!antic.contains(a.index()));
        assert_eq!(antic.count(), 1);
    }

    #[test]
    fn antic_closure_absorbs_straightline_gap() {
        // A -> B(busy) -> C -> D(busy) -> E(ret): C and gap blocks absorb.
        let mut fb = FunctionBuilder::new("s", 0);
        let blocks: Vec<BlockId> = (0..5).map(|_| fb.create_block(None)).collect();
        for i in 0..4 {
            fb.switch_to(blocks[i]);
            fb.jump(blocks[i + 1]);
        }
        fb.switch_to(blocks[4]);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut w = DenseBitSet::new(5);
        w.insert(1);
        w.insert(3);
        let antic = antic_closure(&cfg, &w);
        assert!(antic.contains(2), "gap block absorbed");
        assert!(
            antic.contains(0),
            "prefix absorbed (all paths lead to busy)"
        );
        assert!(!antic.contains(4));
        let avail = avail_closure(&cfg, &w);
        assert!(avail.contains(2));
        assert!(avail.contains(4), "suffix absorbed");
        assert!(!avail.contains(0));
    }

    #[test]
    fn chow_grow_absorbs_loops() {
        // entry -> header <-> body(busy); header -> exit(ret).
        let mut fb = FunctionBuilder::new("l", 0);
        let entry = fb.create_block(None);
        let header = fb.create_block(None);
        let body = fb.create_block(None);
        let exit = fb.create_block(None);
        fb.switch_to(entry);
        let x = fb.li(0);
        fb.jump(header);
        fb.switch_to(header);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), exit, body);
        fb.switch_to(body);
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let cyclic = sccs(&cfg);
        let mut busy = DenseBitSet::new(4);
        busy.insert(body.index());
        let w = chow_grow(&cfg, &cyclic, &busy);
        assert!(w.contains(header.index()), "loop body absorbed");
        // The hoisting closure may extend W to the entry (all paths lead
        // into the loop) and to the exit; what matters is that no
        // boundary location lands inside the loop.
        let b = region_boundary(&cfg, &w);
        for &e in b.save_edges.iter().chain(&b.restore_edges) {
            let edge = cfg.edge(e);
            let inside = [header, body].contains(&edge.from) && [header, body].contains(&edge.to);
            assert!(!inside, "boundary edge inside the loop");
        }
        // Straight-line prefix means the save hoists to procedure entry.
        assert!(b.save_at_entry);
        assert_eq!(b.restore_at_exits, vec![exit]);
    }

    #[test]
    fn clusters_are_connected_components() {
        let (f, [_a, b, c, _d]) = diamond_busy();
        let cfg = Cfg::compute(&f);
        let mut busy = DenseBitSet::new(4);
        busy.insert(b.index());
        busy.insert(c.index());
        let clusters = busy_clusters(&cfg, &busy);
        // B and C are not adjacent: two clusters.
        assert_eq!(clusters.len(), 2);
        let mut busy2 = DenseBitSet::new(4);
        busy2.insert(0);
        busy2.insert(b.index());
        let clusters2 = busy_clusters(&cfg, &busy2);
        assert_eq!(clusters2.len(), 1, "A and B are adjacent");
    }
}
