//! One-call driver: all placement techniques on one procedure.

use crate::cost::{Cost, CostModel, SpillCostModel};
use crate::entry_exit::entry_exit_placement;
use crate::hierarchical::{hierarchical_placement_seeded, HierarchicalResult};
use crate::location::Placement;
use crate::overhead::placement_cost_with;
use crate::usage::CalleeSavedUsage;
use crate::validate::check_placement;
use spillopt_ir::analysis::loops::{sccs, CyclicRegion};
use spillopt_ir::{Cfg, DerivedCfg};
use spillopt_profile::EdgeProfile;
use spillopt_pst::Pst;

/// All placements of one procedure, with their predicted costs under the
/// jump-edge model (the physically accurate accounting).
#[derive(Clone, Debug)]
pub struct PlacementSuite {
    /// Entry/exit baseline.
    pub entry_exit: Placement,
    /// Chow's original shrink-wrapping.
    pub chow: Placement,
    /// Hierarchical, execution count model.
    pub hierarchical_exec: HierarchicalResult,
    /// Hierarchical, jump edge model (the paper's evaluated variant).
    pub hierarchical_jump: HierarchicalResult,
    /// Predicted cost (jump-edge accounting) of each, in the same order:
    /// (entry_exit, chow, hierarchical_exec, hierarchical_jump).
    pub predicted: [Cost; 4],
}

/// Runs every technique on one procedure and verifies the results.
///
/// # Panics
///
/// Panics if any produced placement fails validity checking — that would
/// be a bug in this crate, never a property of the input.
pub fn run_suite(
    cfg: &Cfg,
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
) -> PlacementSuite {
    let cyclic = sccs(cfg);
    run_suite_with(cfg, &cyclic, pst, usage, profile)
}

/// As [`run_suite`], with every analysis borrowed from the caller: the
/// module driver (`spillopt-driver`) computes each function's analyses
/// once and runs all four techniques against them, so nothing here may
/// recompute SCCs or the PST.
pub fn run_suite_with(
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
) -> PlacementSuite {
    run_suite_priced(cfg, cyclic, pst, usage, profile, &SpillCostModel::UNIT)
}

/// As [`run_suite_with`], priced with a target's [`SpillCostModel`]:
/// both hierarchical variants make their replace-decisions under the
/// target's instruction costs, and all four predicted costs use the
/// target's physically accurate jump-edge accounting
/// ([`placement_cost_with`]). With [`SpillCostModel::UNIT`] this is
/// [`run_suite_with`] exactly.
pub fn run_suite_priced(
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    costs: &SpillCostModel,
) -> PlacementSuite {
    let derived = DerivedCfg::compute(cfg);
    run_suite_analyzed(cfg, &derived, cyclic, pst, usage, profile, costs)
}

/// As [`run_suite_priced`], with the caller's cached [`DerivedCfg`] —
/// the module driver's `AnalysisCache` computes every derived structure
/// once per function and all four techniques consume it here.
pub fn run_suite_analyzed(
    cfg: &Cfg,
    derived: &DerivedCfg,
    cyclic: &[CyclicRegion],
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    costs: &SpillCostModel,
) -> PlacementSuite {
    let entry_exit = entry_exit_placement(cfg, usage);
    let chow = crate::chow::chow_shrink_wrap_derived(cfg, derived, cyclic, usage);
    // Both hierarchical runs start from the same initial solution;
    // compute it once and seed both (identical decisions — the initial
    // sets do not depend on the cost model).
    let initial = crate::modified::modified_shrink_wrap_derived(cfg, derived, usage);
    let hierarchical_exec = hierarchical_placement_seeded(
        cfg,
        pst,
        usage,
        profile,
        CostModel::ExecutionCount,
        costs,
        &chow,
        initial.clone(),
    );
    let hierarchical_jump = hierarchical_placement_seeded(
        cfg,
        pst,
        usage,
        profile,
        CostModel::JumpEdge,
        costs,
        &chow,
        initial,
    );

    for (name, p) in [
        ("entry_exit", &entry_exit),
        ("chow", &chow),
        ("hierarchical_exec", &hierarchical_exec.placement),
        ("hierarchical_jump", &hierarchical_jump.placement),
    ] {
        let errs = check_placement(cfg, usage, p);
        assert!(errs.is_empty(), "{name} placement invalid: {errs:?}\n{p}");
    }

    let predicted = [
        placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &entry_exit),
        placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &chow),
        placement_cost_with(
            CostModel::JumpEdge,
            costs,
            cfg,
            profile,
            &hierarchical_exec.placement,
        ),
        placement_cost_with(
            CostModel::JumpEdge,
            costs,
            cfg,
            profile,
            &hierarchical_jump.placement,
        ),
    ];

    PlacementSuite {
        entry_exit,
        chow,
        hierarchical_exec,
        hierarchical_jump,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, PReg, Reg};
    use spillopt_profile::random_walk_profile;

    #[test]
    fn suite_runs_and_orders_costs() {
        let mut fb = FunctionBuilder::new("s", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        let profile = random_walk_profile(&cfg, 100, 32, 1);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        let suite = run_suite(&cfg, &pst, &usage, &profile);
        // The paper's guarantee under the jump model: hierarchical(jump)
        // ≤ entry/exit and ≤ chow.
        assert!(suite.predicted[3] <= suite.predicted[0]);
        assert!(suite.predicted[3] <= suite.predicted[1]);
    }
}
