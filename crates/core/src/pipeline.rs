//! One-call driver: all placement techniques on one procedure.
//!
//! The one supported entry point is [`run_suite`]: the procedure's
//! analyses travel in a [`SuiteInputs`] — each analysis either **owned**
//! (computed here, the one-call path) or **borrowed** (the module
//! driver's cached path), behind one signature — the knobs travel in a
//! [`SuiteOptions`], and an invalid placement surfaces as a structured
//! [`SuiteError`] instead of a panic unwinding through whoever scheduled
//! the function.
//!
//! The historical entry-point ladder that grew one variant per
//! capability (`run_suite_with` for borrowed analyses, `run_suite_priced`
//! for target pricing, `run_suite_analyzed` for the cached `DerivedCfg`)
//! is kept as thin `#[deprecated]` shims for one release; every new knob
//! lands as a field of [`SuiteOptions`] or [`SuiteInputs`] instead of a
//! fifth free function.

use crate::cost::{Cost, CostModel, SpillCostModel};
use crate::entry_exit::entry_exit_placement;
use crate::hierarchical::{hierarchical_placement_seeded, HierarchicalResult};
use crate::location::Placement;
use crate::overhead::placement_cost_with;
use crate::usage::CalleeSavedUsage;
use crate::validate::{check_placement, PlacementError};
use spillopt_ir::analysis::loops::{sccs, CyclicRegion};
use spillopt_ir::{Cfg, DerivedCfg};
use spillopt_profile::EdgeProfile;
use spillopt_pst::Pst;
use std::fmt;

/// All placements of one procedure, with their predicted costs under the
/// jump-edge model (the physically accurate accounting).
#[derive(Clone, Debug)]
pub struct PlacementSuite {
    /// Entry/exit baseline.
    pub entry_exit: Placement,
    /// Chow's original shrink-wrapping.
    pub chow: Placement,
    /// Hierarchical, execution count model.
    pub hierarchical_exec: HierarchicalResult,
    /// Hierarchical, jump edge model (the paper's evaluated variant).
    pub hierarchical_jump: HierarchicalResult,
    /// Predicted cost (jump-edge accounting) of each, in the same order:
    /// (entry_exit, chow, hierarchical_exec, hierarchical_jump).
    pub predicted: [Cost; 4],
}

/// An analysis that is either computed here or borrowed from a caller's
/// cache (`Cow` without the `ToOwned` bound — `Pst` and `DerivedCfg`
/// need no `Clone`).
#[derive(Debug)]
enum Val<'a, T> {
    Owned(T),
    Borrowed(&'a T),
}

impl<T> Val<'_, T> {
    fn get(&self) -> &T {
        match self {
            Val::Owned(t) => t,
            Val::Borrowed(t) => t,
        }
    }
}

/// As [`Val`], for slice-shaped analyses.
#[derive(Debug)]
enum Slice<'a, T> {
    Owned(Vec<T>),
    Borrowed(&'a [T]),
}

impl<T> Slice<'_, T> {
    fn get(&self) -> &[T] {
        match self {
            Slice::Owned(v) => v,
            Slice::Borrowed(s) => s,
        }
    }
}

/// Everything [`run_suite`] consumes about one procedure: the callee-saved
/// usage, the edge profile, and the three CFG-derived analyses every
/// technique shares (SCCs, the PST, the dense [`DerivedCfg`] tables).
///
/// Each analysis is owned-or-borrowed, so the one-call path
/// ([`SuiteInputs::compute`]) and the cached module-driver path
/// ([`SuiteInputs::analyzed`]) share one [`run_suite`] signature — adding
/// a fifth analysis adds a field here, not a fifth entry point.
#[derive(Debug)]
pub struct SuiteInputs<'a> {
    usage: &'a CalleeSavedUsage,
    profile: &'a EdgeProfile,
    cyclic: Slice<'a, CyclicRegion>,
    pst: Val<'a, Pst>,
    derived: Val<'a, DerivedCfg>,
}

impl<'a> SuiteInputs<'a> {
    /// The one-call path: computes every shared analysis (SCCs, PST,
    /// dense CFG tables) from `cfg`.
    pub fn compute(cfg: &Cfg, usage: &'a CalleeSavedUsage, profile: &'a EdgeProfile) -> Self {
        let cyclic = {
            let _s = spillopt_obs::span("sccs");
            Slice::Owned(sccs(cfg))
        };
        let pst = {
            let _s = spillopt_obs::span("pst");
            Val::Owned(Pst::compute(cfg))
        };
        let derived = {
            let _s = spillopt_obs::span("derived_cfg");
            Val::Owned(DerivedCfg::compute(cfg))
        };
        SuiteInputs {
            usage,
            profile,
            cyclic,
            pst,
            derived,
        }
    }

    /// The cached path: every analysis borrowed from the caller (the
    /// module driver's `AnalysisCache`); nothing is recomputed here.
    pub fn analyzed(
        usage: &'a CalleeSavedUsage,
        profile: &'a EdgeProfile,
        cyclic: &'a [CyclicRegion],
        pst: &'a Pst,
        derived: &'a DerivedCfg,
    ) -> Self {
        SuiteInputs {
            usage,
            profile,
            cyclic: Slice::Borrowed(cyclic),
            pst: Val::Borrowed(pst),
            derived: Val::Borrowed(derived),
        }
    }

    /// The callee-saved usage.
    pub fn usage(&self) -> &CalleeSavedUsage {
        self.usage
    }

    /// The edge profile.
    pub fn profile(&self) -> &EdgeProfile {
        self.profile
    }

    /// Strongly connected components (Chow's artificial loop flow).
    pub fn cyclic(&self) -> &[CyclicRegion] {
        self.cyclic.get()
    }

    /// The Program Structure Tree.
    pub fn pst(&self) -> &Pst {
        self.pst.get()
    }

    /// The dense derived CFG tables.
    pub fn derived(&self) -> &DerivedCfg {
        self.derived.get()
    }
}

/// Knobs of one suite run. `#[non_exhaustive]`: future capabilities (a
/// new cost knob, a validation mode) land here as fields with defaults,
/// not as new entry-point variants. Construct via [`SuiteOptions::default`]
/// or [`SuiteOptions::priced`] and mutate fields as needed.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SuiteOptions {
    /// The target's spill-cost model: both hierarchical variants make
    /// their replace-decisions under these instruction costs, and all
    /// four predicted costs use the target's physically accurate
    /// jump-edge accounting. [`SpillCostModel::UNIT`] reproduces the
    /// paper's PA-RISC accounting exactly.
    pub costs: SpillCostModel,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            costs: SpillCostModel::UNIT,
        }
    }
}

impl SuiteOptions {
    /// Options priced by a target's cost model.
    pub fn priced(costs: SpillCostModel) -> Self {
        SuiteOptions { costs }
    }
}

/// A produced placement failed validity checking — always a bug in this
/// crate, never a property of the input, but surfaced structurally so a
/// module-scale caller can name the failing function instead of catching
/// a panic off a worker thread.
#[derive(Clone, Debug)]
pub struct SuiteError {
    /// Which technique produced the invalid placement (`"entry_exit"`,
    /// `"chow"`, `"hierarchical_exec"`, or `"hierarchical_jump"`).
    pub technique: &'static str,
    /// The validity violations.
    pub errors: Vec<PlacementError>,
    /// The offending placement.
    pub placement: Placement,
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} placement invalid: ", self.technique)?;
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "\n{}", self.placement)
    }
}

impl std::error::Error for SuiteError {}

/// Runs every technique on one procedure and verifies the results — the
/// single supported entry point for the four-technique comparison.
///
/// # Errors
///
/// Returns a [`SuiteError`] if any produced placement fails validity
/// checking; that is a bug in this crate, never a property of the input.
pub fn run_suite(
    cfg: &Cfg,
    inputs: &SuiteInputs<'_>,
    options: &SuiteOptions,
) -> Result<PlacementSuite, SuiteError> {
    let usage = inputs.usage;
    let profile = inputs.profile;
    let derived = inputs.derived();
    let costs = &options.costs;

    let entry_exit = {
        let _s = spillopt_obs::span("place_entry_exit");
        entry_exit_placement(cfg, usage)
    };
    let chow = {
        let _s = spillopt_obs::span("place_chow");
        crate::chow::chow_shrink_wrap_derived(cfg, derived, inputs.cyclic(), usage)
    };
    // Both hierarchical runs start from the same initial solution;
    // compute it once and seed both (identical decisions — the initial
    // sets do not depend on the cost model).
    let initial = {
        let _s = spillopt_obs::span("place_hier_seed");
        crate::modified::modified_shrink_wrap_derived(cfg, derived, usage)
    };
    let hierarchical_exec = {
        let _s = spillopt_obs::span("place_hier_exec");
        hierarchical_placement_seeded(
            cfg,
            inputs.pst(),
            usage,
            profile,
            CostModel::ExecutionCount,
            costs,
            &chow,
            initial.clone(),
        )
    };
    let hierarchical_jump = {
        let _s = spillopt_obs::span("place_hier_jump");
        hierarchical_placement_seeded(
            cfg,
            inputs.pst(),
            usage,
            profile,
            CostModel::JumpEdge,
            costs,
            &chow,
            initial,
        )
    };

    {
        let _s = spillopt_obs::span("validate");
        for (technique, p) in [
            ("entry_exit", &entry_exit),
            ("chow", &chow),
            ("hierarchical_exec", &hierarchical_exec.placement),
            ("hierarchical_jump", &hierarchical_jump.placement),
        ] {
            let errors = check_placement(cfg, usage, p);
            if !errors.is_empty() {
                return Err(SuiteError {
                    technique,
                    errors,
                    placement: p.clone(),
                });
            }
        }
    }

    let predicted = {
        let _s = spillopt_obs::span("price");
        [
            placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &entry_exit),
            placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &chow),
            placement_cost_with(
                CostModel::JumpEdge,
                costs,
                cfg,
                profile,
                &hierarchical_exec.placement,
            ),
            placement_cost_with(
                CostModel::JumpEdge,
                costs,
                cfg,
                profile,
                &hierarchical_jump.placement,
            ),
        ]
    };

    Ok(PlacementSuite {
        entry_exit,
        chow,
        hierarchical_exec,
        hierarchical_jump,
        predicted,
    })
}

/// One placement technique of the suite, for callers that want a single
/// result instead of the four-way comparison — the degradation ladder a
/// fault-tolerant driver walks when the full suite fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Technique {
    /// Entry/exit baseline (no fixpoint, no PST — the last rung).
    EntryExit,
    /// Chow's original shrink-wrapping.
    Chow,
    /// Hierarchical, execution count model.
    HierExec,
    /// Hierarchical, jump edge model.
    HierJump,
}

impl Technique {
    /// The label used by [`SuiteError::technique`] for this technique.
    pub fn label(self) -> &'static str {
        match self {
            Technique::EntryExit => "entry_exit",
            Technique::Chow => "chow",
            Technique::HierExec => "hierarchical_exec",
            Technique::HierJump => "hierarchical_jump",
        }
    }
}

/// Runs one technique on one procedure, validates it, and prices it under
/// the jump-edge model — computing only what that technique needs (the
/// hierarchical variants internally rebuild their Chow baseline and seed).
///
/// # Errors
///
/// Returns a [`SuiteError`] if the produced placement fails validity
/// checking.
pub fn run_technique(
    cfg: &Cfg,
    inputs: &SuiteInputs<'_>,
    options: &SuiteOptions,
    technique: Technique,
) -> Result<(Placement, Cost), SuiteError> {
    let usage = inputs.usage;
    let profile = inputs.profile;
    let costs = &options.costs;

    let placement = match technique {
        Technique::EntryExit => {
            let _s = spillopt_obs::span("place_entry_exit");
            entry_exit_placement(cfg, usage)
        }
        Technique::Chow => {
            let _s = spillopt_obs::span("place_chow");
            crate::chow::chow_shrink_wrap_derived(cfg, inputs.derived(), inputs.cyclic(), usage)
        }
        Technique::HierExec | Technique::HierJump => {
            let derived = inputs.derived();
            let chow = {
                let _s = spillopt_obs::span("place_chow");
                crate::chow::chow_shrink_wrap_derived(cfg, derived, inputs.cyclic(), usage)
            };
            let initial = {
                let _s = spillopt_obs::span("place_hier_seed");
                crate::modified::modified_shrink_wrap_derived(cfg, derived, usage)
            };
            let model = match technique {
                Technique::HierExec => CostModel::ExecutionCount,
                _ => CostModel::JumpEdge,
            };
            let span = match technique {
                Technique::HierExec => "place_hier_exec",
                _ => "place_hier_jump",
            };
            let _s = spillopt_obs::span(span);
            hierarchical_placement_seeded(
                cfg,
                inputs.pst(),
                usage,
                profile,
                model,
                costs,
                &chow,
                initial,
            )
            .placement
        }
    };

    {
        let _s = spillopt_obs::span("validate");
        let errors = check_placement(cfg, usage, &placement);
        if !errors.is_empty() {
            return Err(SuiteError {
                technique: technique.label(),
                errors,
                placement,
            });
        }
    }

    let cost = {
        let _s = spillopt_obs::span("price");
        placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &placement)
    };
    Ok((placement, cost))
}

/// The shim bodies: reproduce the historical panic-on-invalid behaviour
/// exactly (the deprecated entry points documented a panic, and their
/// remaining callers rely on it).
fn run_or_panic(cfg: &Cfg, inputs: &SuiteInputs<'_>, options: &SuiteOptions) -> PlacementSuite {
    run_suite(cfg, inputs, options).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`run_suite`], with SCCs and the PST borrowed from the caller.
///
/// # Panics
///
/// Panics if any produced placement fails validity checking.
#[deprecated(
    since = "0.2.0",
    note = "use `run_suite` with `SuiteInputs::analyzed` (or `SuiteInputs::compute`)"
)]
pub fn run_suite_with(
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
) -> PlacementSuite {
    let inputs = SuiteInputs {
        usage,
        profile,
        cyclic: Slice::Borrowed(cyclic),
        pst: Val::Borrowed(pst),
        derived: Val::Owned(DerivedCfg::compute(cfg)),
    };
    run_or_panic(cfg, &inputs, &SuiteOptions::default())
}

/// As [`run_suite`], with borrowed SCCs/PST and a target cost model.
///
/// # Panics
///
/// Panics if any produced placement fails validity checking.
#[deprecated(
    since = "0.2.0",
    note = "use `run_suite` with `SuiteInputs` and `SuiteOptions::priced`"
)]
pub fn run_suite_priced(
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    costs: &SpillCostModel,
) -> PlacementSuite {
    let inputs = SuiteInputs {
        usage,
        profile,
        cyclic: Slice::Borrowed(cyclic),
        pst: Val::Borrowed(pst),
        derived: Val::Owned(DerivedCfg::compute(cfg)),
    };
    run_or_panic(cfg, &inputs, &SuiteOptions::priced(*costs))
}

/// As [`run_suite`], with every analysis (including the dense
/// [`DerivedCfg`]) borrowed from the caller.
///
/// # Panics
///
/// Panics if any produced placement fails validity checking.
#[deprecated(
    since = "0.2.0",
    note = "use `run_suite` with `SuiteInputs::analyzed` and `SuiteOptions::priced`"
)]
#[allow(clippy::too_many_arguments)]
pub fn run_suite_analyzed(
    cfg: &Cfg,
    derived: &DerivedCfg,
    cyclic: &[CyclicRegion],
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    costs: &SpillCostModel,
) -> PlacementSuite {
    let inputs = SuiteInputs::analyzed(usage, profile, cyclic, pst, derived);
    run_or_panic(cfg, &inputs, &SuiteOptions::priced(*costs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, PReg, Reg};
    use spillopt_profile::random_walk_profile;

    fn diamond() -> (Cfg, CalleeSavedUsage, EdgeProfile) {
        let mut fb = FunctionBuilder::new("s", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let profile = random_walk_profile(&cfg, 100, 32, 1);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        (cfg, usage, profile)
    }

    #[test]
    fn suite_runs_and_orders_costs() {
        let (cfg, usage, profile) = diamond();
        let inputs = SuiteInputs::compute(&cfg, &usage, &profile);
        let suite = run_suite(&cfg, &inputs, &SuiteOptions::default()).expect("valid placements");
        // The paper's guarantee under the jump model: hierarchical(jump)
        // ≤ entry/exit and ≤ chow.
        assert!(suite.predicted[3] <= suite.predicted[0]);
        assert!(suite.predicted[3] <= suite.predicted[1]);
    }

    #[test]
    fn owned_and_borrowed_inputs_agree() {
        let (cfg, usage, profile) = diamond();
        let cyclic = sccs(&cfg);
        let pst = Pst::compute(&cfg);
        let derived = DerivedCfg::compute(&cfg);
        let owned = SuiteInputs::compute(&cfg, &usage, &profile);
        let borrowed = SuiteInputs::analyzed(&usage, &profile, &cyclic, &pst, &derived);
        let opts = SuiteOptions::default();
        let a = run_suite(&cfg, &owned, &opts).expect("valid");
        let b = run_suite(&cfg, &borrowed, &opts).expect("valid");
        assert_eq!(a.entry_exit, b.entry_exit);
        assert_eq!(a.chow, b.chow);
        assert_eq!(a.hierarchical_jump.placement, b.hierarchical_jump.placement);
        assert_eq!(a.predicted, b.predicted);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_new_entry_point() {
        let (cfg, usage, profile) = diamond();
        let cyclic = sccs(&cfg);
        let pst = Pst::compute(&cfg);
        let derived = DerivedCfg::compute(&cfg);
        let inputs = SuiteInputs::analyzed(&usage, &profile, &cyclic, &pst, &derived);
        let new = run_suite(&cfg, &inputs, &SuiteOptions::default()).expect("valid");
        let shim = run_suite_with(&cfg, &cyclic, &pst, &usage, &profile);
        assert_eq!(new.entry_exit, shim.entry_exit);
        assert_eq!(new.chow, shim.chow);
        assert_eq!(new.predicted, shim.predicted);
        let priced = run_suite_priced(&cfg, &cyclic, &pst, &usage, &profile, &SpillCostModel::UNIT);
        assert_eq!(new.predicted, priced.predicted);
        let analyzed = run_suite_analyzed(
            &cfg,
            &derived,
            &cyclic,
            &pst,
            &usage,
            &profile,
            &SpillCostModel::UNIT,
        );
        assert_eq!(new.predicted, analyzed.predicted);
    }

    #[test]
    fn single_technique_matches_the_suite() {
        let (cfg, usage, profile) = diamond();
        let inputs = SuiteInputs::compute(&cfg, &usage, &profile);
        let opts = SuiteOptions::default();
        let suite = run_suite(&cfg, &inputs, &opts).expect("valid");
        for (technique, placement, cost) in [
            (Technique::EntryExit, &suite.entry_exit, suite.predicted[0]),
            (Technique::Chow, &suite.chow, suite.predicted[1]),
            (
                Technique::HierExec,
                &suite.hierarchical_exec.placement,
                suite.predicted[2],
            ),
            (
                Technique::HierJump,
                &suite.hierarchical_jump.placement,
                suite.predicted[3],
            ),
        ] {
            let (single, single_cost) =
                run_technique(&cfg, &inputs, &opts, technique).expect("valid");
            assert_eq!(&single, placement, "{}", technique.label());
            assert_eq!(single_cost, cost, "{}", technique.label());
        }
    }

    #[test]
    fn suite_error_renders_technique_and_violations() {
        use crate::location::{SpillKind, SpillLoc, SpillPoint};
        let (cfg, usage, profile) = diamond();
        let _ = (&cfg, &profile);
        let mut placement = Placement::new();
        let point = SpillPoint {
            reg: PReg::new(11),
            kind: SpillKind::Restore,
            loc: SpillLoc::BlockTop(cfg.entry()),
        };
        placement.push(point);
        let err = SuiteError {
            technique: "chow",
            errors: vec![PlacementError::RestoreWithoutSave { point }],
            placement,
        };
        let rendered = err.to_string();
        assert!(rendered.contains("chow placement invalid"), "{rendered}");
        assert!(rendered.contains("restore without save"), "{rendered}");
        let _ = usage;
    }
}
