//! Model-predicted overhead of placements.

use crate::cost::{location_cost, Cost, CostModel, SpillCostModel};
use crate::location::{Placement, SpillKind, SpillLoc};
use crate::sets::EdgeShares;
use spillopt_ir::{Cfg, EdgeId, PReg};
use spillopt_profile::{EdgeProfile, SpillCounts};
use std::collections::HashMap;

/// The predicted dynamic cost of a whole placement under a model.
///
/// Jump-instruction cost on critical jump edges is charged *per edge*
/// (shared by all registers placing code there), which is the physically
/// accurate accounting — [`crate::insert`] creates one jump block per
/// edge. This is what the harness compares against measured execution.
pub fn placement_cost(
    model: CostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    placement: &Placement,
) -> Cost {
    // Base costs (entry-top points priced once per procedure entry).
    let mut total: Cost = placement
        .points()
        .iter()
        .map(|p| location_cost(CostModel::ExecutionCount, cfg, profile, p.loc, 1))
        .sum();
    if model == CostModel::JumpEdge {
        // One jump penalty per distinct critical jump edge used.
        let mut edges: Vec<EdgeId> = placement
            .points()
            .iter()
            .filter_map(|p| match p.loc {
                SpillLoc::OnEdge(e) if cfg.needs_jump_block(e) => Some(e),
                _ => None,
            })
            .collect();
        edges.sort();
        edges.dedup();
        for e in edges {
            total += Cost::from_count(profile.edge_count(e));
        }
    }
    total
}

/// As [`placement_cost`], priced with a target's [`SpillCostModel`] —
/// the physically accurate accounting for that target.
///
/// Registers placing a save (or restore) at the same location share
/// paired instructions: `n` registers need `ceil(n / pair_size)`
/// instructions there ([`crate::insert`] realizes co-located code
/// together, which a pairing backend would emit as `stp`/`ldp` runs).
/// Entry saves and exit restores use their cheaper per-target weights,
/// and one jump per distinct critical jump edge is charged under
/// [`CostModel::JumpEdge`]. With [`SpillCostModel::UNIT`] this equals
/// [`placement_cost`] exactly.
pub fn placement_cost_with(
    model: CostModel,
    costs: &SpillCostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    placement: &Placement,
) -> Cost {
    let pair = costs.pair_size.max(1) as u64;
    // Group registers per (location, kind) by sorting the points' dense
    // keys — identical grouping and summation order to the retired
    // hash-then-sort accounting ([`placement_cost_with_reference`]), with
    // no hashing and one small scratch allocation.
    let n = cfg.num_blocks();
    let mut keys: Vec<u32> = placement
        .points()
        .iter()
        .map(|p| {
            let loc = match p.loc {
                SpillLoc::BlockTop(b) => b.index(),
                SpillLoc::BlockBottom(b) => n + b.index(),
                SpillLoc::OnEdge(e) => 2 * n + e.index(),
            };
            (loc * 2 + p.kind as usize) as u32
        })
        .collect();
    keys.sort_unstable();
    let decode = |key: u32| -> (SpillLoc, SpillKind) {
        let kind = if key.is_multiple_of(2) {
            SpillKind::Restore
        } else {
            SpillKind::Save
        };
        let loc = (key / 2) as usize;
        let loc = if loc < n {
            SpillLoc::BlockTop(spillopt_ir::BlockId::from_index(loc))
        } else if loc < 2 * n {
            SpillLoc::BlockBottom(spillopt_ir::BlockId::from_index(loc - n))
        } else {
            SpillLoc::OnEdge(EdgeId::from_index(loc - 2 * n))
        };
        (loc, kind)
    };
    let mut total = Cost::ZERO;
    let mut i = 0;
    while i < keys.len() {
        let key = keys[i];
        let mut regs = 0u64;
        while i < keys.len() && keys[i] == key {
            regs += 1;
            i += 1;
        }
        let (loc, kind) = decode(key);
        let insts = regs.div_ceil(pair);
        let count = crate::cost::location_exec_count(cfg, profile, loc);
        total += costs
            .insn(cfg, kind, loc)
            .of(count.saturating_mul(insts), 1);
    }
    if model == CostModel::JumpEdge {
        let mut edges: Vec<EdgeId> = placement
            .points()
            .iter()
            .filter_map(|p| match p.loc {
                SpillLoc::OnEdge(e) if cfg.needs_jump_block(e) => Some(e),
                _ => None,
            })
            .collect();
        edges.sort();
        edges.dedup();
        for e in edges {
            total += costs.jump.of(profile.edge_count(e), 1);
        }
    }
    total
}

/// The predicted dynamic cost as the *models* see it during the
/// hierarchical traversal (per-register jump charging with sharing factors
/// for initial sets). Used to reproduce the paper's worked-example
/// arithmetic.
pub fn placement_model_cost(
    model: CostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    placement: &Placement,
    shares: &EdgeShares,
) -> Cost {
    placement
        .points()
        .iter()
        .map(|p| location_cost(model, cfg, profile, p.loc, shares.share(p.loc)))
        .sum()
}

/// The exact dynamic instruction counts a placement will execute under
/// `profile`'s workload, as an oracle for differential testing.
///
/// The prediction mirrors how [`crate::insert_placement`] realizes a
/// placement: every placed save/restore executes exactly the execution
/// count of its location (sinking an edge location into a block endpoint
/// preserves that count — the endpoint then has no other in/out flow),
/// and one jump-block jump executes per distinct *critical jump* edge
/// carrying spill code. Running the transformed program on the same
/// workload the profile was measured on must reproduce these counters
/// exactly ([`spillopt_profile::ExecCounts::spill_counts`]); see
/// [`spillopt_profile::SpillCounts::diff`].
pub fn predicted_spill_counts(
    cfg: &Cfg,
    profile: &EdgeProfile,
    placement: &Placement,
) -> SpillCounts {
    let mut out = SpillCounts::default();
    let mut jump_edges: Vec<EdgeId> = Vec::new();
    for p in placement.points() {
        if let SpillLoc::OnEdge(e) = p.loc {
            if cfg.needs_jump_block(e) {
                jump_edges.push(e);
            }
        }
        let count = crate::cost::location_exec_count(cfg, profile, p.loc);
        match p.kind {
            SpillKind::Save => out.saves += count,
            SpillKind::Restore => out.restores += count,
        }
    }
    jump_edges.sort();
    jump_edges.dedup();
    for e in jump_edges {
        out.jump_jumps += profile.edge_count(e);
    }
    out
}

/// Per-register static counts (number of save/restore instructions), the
/// *static overhead* the paper mentions but does not optimize.
pub fn static_overhead(placement: &Placement) -> HashMap<PReg, usize> {
    let mut m = HashMap::new();
    for p in placement.points() {
        *m.entry(p.reg).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::{SpillKind, SpillPoint};
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    #[test]
    fn jump_penalty_charged_once_per_edge() {
        // Critical jump edge d->b with two registers on it.
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        let e = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), b, e);
        fb.switch_to(e);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let db = cfg.edge_between(d, b).unwrap();
        let mut counts = vec![0u64; cfg.num_edges()];
        counts[db.index()] = 7;
        let profile = spillopt_profile::EdgeProfile::new(&cfg, counts, 0);
        let placement = Placement::from_points(vec![
            SpillPoint {
                reg: PReg::new(11),
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(db),
            },
            SpillPoint {
                reg: PReg::new(12),
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(db),
            },
        ]);
        // Exec model: 7 + 7. Jump model: + one shared jump (7).
        assert_eq!(
            placement_cost(CostModel::ExecutionCount, &cfg, &profile, &placement),
            Cost::from_count(14)
        );
        assert_eq!(
            placement_cost(CostModel::JumpEdge, &cfg, &profile, &placement),
            Cost::from_count(21)
        );
        let so = static_overhead(&placement);
        assert_eq!(so[&PReg::new(11)], 1);
    }
}
