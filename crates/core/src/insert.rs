//! Physical insertion of a placement into the IR.
//!
//! Each placed save becomes a `store.csave` of the register to a dedicated
//! frame slot and each restore a `load.csave`, both tagged with
//! [`Origin::CalleeSave`] so the interpreter attributes their dynamic cost
//! exactly as the paper's Figure 5 does. Edge locations are realized by
//! [`spillopt_ir::edit::place_on_edge`]; all registers placing code on the
//! same edge share one block (and one jump instruction when the edge is a
//! critical jump edge — the sharing the paper's jump-edge cost model can
//! only approximate).

use crate::location::{Placement, SpillKind, SpillLoc};
use spillopt_ir::{edit, Cfg, EdgeId, Function, Inst, InstKind, MemKind, Origin, PReg};
use std::collections::HashMap;

/// What physical insertion did: realized locations and totals.
#[derive(Clone, Debug, Default)]
pub struct InsertionReport {
    /// Frame slot assigned to each saved register.
    pub slots: Vec<(PReg, spillopt_ir::FrameSlot)>,
    /// Number of save/restore instructions inserted.
    pub num_spill_insts: usize,
    /// New blocks created on edges.
    pub new_blocks: usize,
    /// Jump instructions added (critical jump edges only).
    pub added_jumps: usize,
}

/// Inserts `placement` into `func`. `cfg` must be the snapshot the
/// placement's edge ids refer to; the function is edited in place (the
/// snapshot is stale afterwards).
pub fn insert_placement(func: &mut Function, cfg: &Cfg, placement: &Placement) -> InsertionReport {
    let mut report = InsertionReport::default();

    // One dedicated frame slot per register.
    let mut slot_of = HashMap::new();
    for reg in placement.regs() {
        let slot = func.frame_mut().alloc_slot();
        slot_of.insert(reg, slot);
        report.slots.push((reg, slot));
    }

    let make_inst = |reg: PReg, kind: SpillKind, slot: spillopt_ir::FrameSlot| -> Inst {
        let k = match kind {
            SpillKind::Save => InstKind::Store {
                src: spillopt_ir::Reg::Phys(reg),
                slot,
                kind: MemKind::CalleeSave,
            },
            SpillKind::Restore => InstKind::Load {
                dst: spillopt_ir::Reg::Phys(reg),
                slot,
                kind: MemKind::CalleeSave,
            },
        };
        Inst::with_origin(k, Origin::CalleeSave)
    };

    // Group instructions per location. Placement points are sorted with
    // restores before saves per register, which `points()` preserves.
    let mut at_top: HashMap<spillopt_ir::BlockId, Vec<Inst>> = HashMap::new();
    let mut at_bottom: HashMap<spillopt_ir::BlockId, Vec<Inst>> = HashMap::new();
    let mut on_edge: HashMap<EdgeId, Vec<Inst>> = HashMap::new();
    for p in placement.points() {
        let inst = make_inst(p.reg, p.kind, slot_of[&p.reg]);
        report.num_spill_insts += 1;
        match p.loc {
            SpillLoc::BlockTop(b) => at_top.entry(b).or_default().push(inst),
            SpillLoc::BlockBottom(b) => at_bottom.entry(b).or_default().push(inst),
            SpillLoc::OnEdge(e) => on_edge.entry(e).or_default().push(inst),
        }
    }

    // Block insertions first (they do not disturb the CFG structure)...
    let mut tops: Vec<_> = at_top.into_iter().collect();
    tops.sort_by_key(|(b, _)| *b);
    for (b, insts) in tops {
        if b == cfg.entry() && cfg.num_preds(b) > 0 {
            // `BlockTop(entry)` means *at the procedure entry*, once per
            // call. When the entry block is also a loop target, realize
            // the code in a fresh header block above it — placed first in
            // layout (becoming the new entry) and falling through — so it
            // cannot re-execute via the back edge.
            let nb = func.add_block(None);
            func.block_mut(nb).insts = insts;
            let mut layout: Vec<spillopt_ir::BlockId> =
                func.layout().iter().copied().filter(|&x| x != nb).collect();
            layout.insert(0, nb);
            func.set_layout(layout);
            report.new_blocks += 1;
        } else {
            edit::insert_at_top(func, b, insts);
        }
    }
    let mut bottoms: Vec<_> = at_bottom.into_iter().collect();
    bottoms.sort_by_key(|(b, _)| *b);
    for (b, insts) in bottoms {
        edit::insert_at_bottom(func, b, insts);
    }
    // ...then one realization per edge (shared across registers).
    let mut edges: Vec<_> = on_edge.into_iter().collect();
    edges.sort_by_key(|(e, _)| *e);
    for (e, insts) in edges {
        match edit::place_on_edge(func, cfg, e, insts) {
            edit::EdgePlacement::NewBlock { added_jump, .. } => {
                report.new_blocks += 1;
                if added_jump {
                    report.added_jumps += 1;
                }
            }
            edit::EdgePlacement::TopOf(_) | edit::EdgePlacement::BottomOf(_) => {}
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::SpillPoint;
    use spillopt_ir::{verify_function, BlockId, Cond, FunctionBuilder, Reg, RegDiscipline};

    /// Builds a CFG with a critical jump edge d->b and inserts save and
    /// restore code of two registers on it: one new block, one new jump.
    #[test]
    fn shares_jump_block_between_registers() {
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        let e = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), b, e);
        fb.switch_to(e);
        fb.ret(None);
        let mut f = fb.finish();
        let cfg = Cfg::compute(&f);
        let db = cfg.edge_between(d, b).unwrap();
        assert!(cfg.needs_jump_block(db));

        let r1 = PReg::new(11);
        let r2 = PReg::new(12);
        let placement = Placement::from_points(vec![
            SpillPoint {
                reg: r1,
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(db),
            },
            SpillPoint {
                reg: r2,
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(db),
            },
            SpillPoint {
                reg: r1,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
            SpillPoint {
                reg: r2,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
        ]);
        let report = insert_placement(&mut f, &cfg, &placement);
        assert_eq!(report.num_spill_insts, 4);
        assert_eq!(report.new_blocks, 1, "edge block shared");
        assert_eq!(report.added_jumps, 1, "one jump for both registers");
        assert_eq!(report.slots.len(), 2);
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
        // The entry block starts with the two saves.
        let top = &f.block(a).insts[..2];
        assert!(top.iter().all(|i| matches!(
            i.kind,
            InstKind::Store {
                kind: MemKind::CalleeSave,
                ..
            }
        )));
    }

    #[test]
    fn bottom_insertion_lands_before_return() {
        let mut fb = FunctionBuilder::new("g", 0);
        let a = fb.create_block(None);
        fb.switch_to(a);
        let v = fb.li(1);
        fb.ret(Some(Reg::Virt(v)));
        let mut f = fb.finish();
        let cfg = Cfg::compute(&f);
        let r = PReg::new(11);
        let placement = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(a),
            },
        ]);
        insert_placement(&mut f, &cfg, &placement);
        let insts = &f.block(BlockId::from_index(0)).insts;
        assert!(matches!(insts[0].kind, InstKind::Store { .. }));
        // Restore is the second-to-last instruction (before ret).
        let n = insts.len();
        assert!(matches!(insts[n - 2].kind, InstKind::Load { .. }));
        assert!(insts[n - 1].is_terminator());
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
    }
}
