//! Reconstructions of the paper's illustrative figures.
//!
//! # Figure 2 (and 3, 4): the motivating example
//!
//! The paper's Figure 2 CFG is reconstructed from the textual constraints
//! of Section 4 (every cost quoted in the paper's walkthrough is
//! reproduced exactly; see the `worked_example` integration test):
//!
//! ```text
//!   blocks A..P, entry A, exit P
//!   A→B 100
//!   B→H 70   B→I 30
//!   H→C 50   H→J 20
//!   C→D 40   C→F 10
//!   D→E 10   D→F 30   (D→F is a critical jump edge)
//!   E→F 10
//!   F→J 50
//!   J→G 25   J→M 45
//!   G→M 25
//!   M→P 70
//!   I→K 25   I→L 5
//!   K→L 25
//!   L→N 25   L→O 5
//!   N→O 25
//!   O→P 30
//! ```
//!
//! One callee-saved register is busy (shaded) in blocks D, E, G, K, N.
//! The layout order is chosen so that every branch has its fall-through
//! adjacent and `D→F` is the taken (jump) edge:
//! `A B H C D E F J G M I K L N O P`.
//!
//! # Figure 1: shrink-wrapping vs. entry/exit crossover
//!
//! A diamond with both arms busy; whether shrink-wrapping beats the
//! entry/exit placement depends purely on the profile, which
//! [`fig1_example`] parameterizes.

use crate::usage::CalleeSavedUsage;
use spillopt_ir::{BlockId, Cfg, Cond, Function, FunctionBuilder, PReg, Reg};
use spillopt_profile::EdgeProfile;

/// The reconstructed Figure 2 example: function, CFG, profile, usage.
#[derive(Debug)]
pub struct PaperExample {
    /// The function (blocks named `A`..`P`).
    pub func: Function,
    /// Block ids indexed by letter: `blocks[0]` = A, ..., `blocks[15]` = P.
    pub blocks: [BlockId; 16],
    /// CFG snapshot.
    pub cfg: Cfg,
    /// The profile with the paper's edge counts.
    pub profile: EdgeProfile,
    /// Usage: one callee-saved register busy in D, E, G, K, N.
    pub usage: CalleeSavedUsage,
    /// The callee-saved register of the example.
    pub reg: PReg,
}

impl PaperExample {
    /// Looks a block up by its letter (`'A'`..=`'P'`).
    pub fn block(&self, letter: char) -> BlockId {
        let idx = (letter as u8 - b'A') as usize;
        self.blocks[idx]
    }

    /// The edge between two lettered blocks.
    ///
    /// # Panics
    ///
    /// Panics if no such edge exists.
    pub fn edge(&self, from: char, to: char) -> spillopt_ir::EdgeId {
        self.cfg
            .edge_between(self.block(from), self.block(to))
            .unwrap_or_else(|| panic!("no edge {from}->{to}"))
    }
}

/// Builds the paper's Figure 2 example (see module docs).
pub fn paper_example() -> PaperExample {
    let mut fb = FunctionBuilder::new("figure2", 0);
    // Create blocks in letter order so ids follow letters...
    let blocks: Vec<BlockId> = (b'A'..=b'P')
        .map(|c| fb.create_block(Some(&(c as char).to_string())))
        .collect();
    let blk = |c: char| blocks[(c as u8 - b'A') as usize];

    // ...then lay them out so every fall-through is adjacent.
    let layout: Vec<BlockId> = "ABHCDEFJGMIKLNOP".chars().map(blk).collect();
    fb.func_mut().set_layout(layout);

    let x = {
        fb.switch_to(blk('A'));
        fb.li(0)
    };
    let c = Reg::Virt(x);

    // A falls through to B.
    fb.switch_to(blk('B'));
    fb.branch(Cond::Lt, c, c, blk('I'), blk('H')); // taken I, fall H
    fb.switch_to(blk('H'));
    fb.branch(Cond::Lt, c, c, blk('J'), blk('C')); // taken J, fall C
    fb.switch_to(blk('C'));
    fb.branch(Cond::Lt, c, c, blk('F'), blk('D')); // taken F, fall D
    fb.switch_to(blk('D'));
    fb.branch(Cond::Lt, c, c, blk('F'), blk('E')); // taken F (jump), fall E
                                                   // E falls through to F.
    fb.switch_to(blk('F'));
    fb.jump(blk('J'));
    fb.switch_to(blk('J'));
    fb.branch(Cond::Lt, c, c, blk('M'), blk('G')); // taken M, fall G
                                                   // G falls through to M.
    fb.switch_to(blk('M'));
    fb.jump(blk('P'));
    fb.switch_to(blk('I'));
    fb.branch(Cond::Lt, c, c, blk('L'), blk('K')); // taken L, fall K
                                                   // K falls through to L.
    fb.switch_to(blk('L'));
    fb.branch(Cond::Lt, c, c, blk('O'), blk('N')); // taken O, fall N
                                                   // N falls through to O; O falls through to P.
    fb.switch_to(blk('P'));
    fb.ret(None);

    let func = fb.finish();
    let cfg = Cfg::compute(&func);

    // The paper's edge counts.
    let table: [(char, char, u64); 22] = [
        ('A', 'B', 100),
        ('B', 'H', 70),
        ('B', 'I', 30),
        ('H', 'C', 50),
        ('H', 'J', 20),
        ('C', 'D', 40),
        ('C', 'F', 10),
        ('D', 'E', 10),
        ('D', 'F', 30),
        ('E', 'F', 10),
        ('F', 'J', 50),
        ('J', 'G', 25),
        ('J', 'M', 45),
        ('G', 'M', 25),
        ('M', 'P', 70),
        ('I', 'K', 25),
        ('I', 'L', 5),
        ('K', 'L', 25),
        ('L', 'N', 25),
        ('L', 'O', 5),
        ('N', 'O', 25),
        ('O', 'P', 30),
    ];
    let mut counts = vec![0u64; cfg.num_edges()];
    for (f, t, n) in table {
        let e = cfg
            .edge_between(blk(f), blk(t))
            .unwrap_or_else(|| panic!("missing edge {f}->{t}"));
        counts[e.index()] = n;
    }
    let profile = EdgeProfile::new(&cfg, counts, 100);
    debug_assert!(profile.flow_violations(&cfg).is_empty());

    // One callee-saved register busy in D, E, G, K, N.
    let reg = PReg::new(11);
    let mut usage = CalleeSavedUsage::new();
    for letter in ['D', 'E', 'G', 'K', 'N'] {
        usage.set_busy(reg, blk(letter), func.num_blocks());
    }

    let blocks: [BlockId; 16] = blocks.try_into().expect("16 blocks");
    PaperExample {
        func,
        blocks,
        cfg,
        profile,
        usage,
        reg,
    }
}

/// The Figure 1 example: a diamond whose two arms are both busy, with a
/// parameterized profile.
///
/// `busy_count` executions take each shaded arm (`2 * busy_count ≤
/// entry_count`); shrink-wrapping places save/restore around each arm
/// (dynamic cost `4 * busy_count`), entry/exit costs `2 * entry_count`.
/// Shrink-wrapping wins iff the average shaded-block count is below the
/// entry count — exactly the paper's observation that only a profile can
/// decide.
#[derive(Debug)]
pub struct Fig1Example {
    /// The function.
    pub func: Function,
    /// CFG snapshot.
    pub cfg: Cfg,
    /// The parameterized profile.
    pub profile: EdgeProfile,
    /// Usage: one register busy in both arms.
    pub usage: CalleeSavedUsage,
    /// The callee-saved register.
    pub reg: PReg,
}

/// Builds the Figure 1 example (see [`Fig1Example`]).
///
/// # Panics
///
/// Panics if `2 * busy_count > entry_count`.
pub fn fig1_example(entry_count: u64, busy_count: u64) -> Fig1Example {
    assert!(2 * busy_count <= entry_count, "arm counts exceed entry");
    let mut fb = FunctionBuilder::new("figure1", 0);
    let a = fb.create_block(Some("A"));
    let b = fb.create_block(Some("B")); // shaded
    let c = fb.create_block(Some("C"));
    let d = fb.create_block(Some("D")); // shaded
    let e = fb.create_block(Some("E"));
    fb.switch_to(a);
    let x = fb.li(0);
    let cnd = Reg::Virt(x);
    fb.branch(Cond::Lt, cnd, cnd, c, b); // taken C, fall B
    fb.switch_to(b);
    fb.jump(e);
    fb.switch_to(c);
    fb.branch(Cond::Lt, cnd, cnd, e, d); // taken E, fall D
    fb.switch_to(d);
    fb.jump(e);
    fb.switch_to(e);
    fb.ret(None);
    let func = fb.finish();
    let cfg = Cfg::compute(&func);

    let mut counts = vec![0u64; cfg.num_edges()];
    let mut set = |f: BlockId, t: BlockId, n: u64| {
        counts[cfg.edge_between(f, t).unwrap().index()] = n;
    };
    set(a, b, busy_count);
    set(a, c, entry_count - busy_count);
    set(c, d, busy_count);
    set(c, e, entry_count - 2 * busy_count);
    set(b, e, busy_count);
    set(d, e, busy_count);
    let profile = EdgeProfile::new(&cfg, counts, entry_count);

    let reg = PReg::new(11);
    let mut usage = CalleeSavedUsage::new();
    usage.set_busy(reg, b, 5);
    usage.set_busy(reg, d, 5);

    Fig1Example {
        func,
        cfg,
        profile,
        usage,
        reg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{verify_function, EdgeKind, RegDiscipline};

    #[test]
    fn figure2_is_well_formed() {
        let ex = paper_example();
        assert!(verify_function(&ex.func, RegDiscipline::Virtual).is_empty());
        assert!(ex.profile.flow_violations(&ex.cfg).is_empty());
        assert_eq!(ex.profile.entry_count(), 100);
        assert_eq!(ex.profile.block_count(ex.block('P')), 100);
    }

    #[test]
    fn d_to_f_is_the_critical_jump_edge() {
        let ex = paper_example();
        let df = ex.edge('D', 'F');
        assert_eq!(ex.cfg.edge(df).kind, EdgeKind::Jump);
        assert!(ex.cfg.needs_jump_block(df));
        // The other placement-relevant edges need no jump block.
        for (f, t) in [
            ('C', 'D'),
            ('E', 'F'),
            ('H', 'C'),
            ('F', 'J'),
            ('B', 'H'),
            ('M', 'P'),
            ('B', 'I'),
            ('O', 'P'),
            ('J', 'G'),
            ('G', 'M'),
            ('I', 'K'),
            ('K', 'L'),
            ('L', 'N'),
            ('N', 'O'),
        ] {
            assert!(
                !ex.cfg.needs_jump_block(ex.edge(f, t)),
                "{f}->{t} unexpectedly needs a jump block"
            );
        }
    }

    #[test]
    fn figure1_profiles_flow() {
        for busy in [0, 10, 50] {
            let ex = fig1_example(100, busy);
            assert!(verify_function(&ex.func, RegDiscipline::Virtual).is_empty());
            assert!(ex.profile.flow_violations(&ex.cfg).is_empty());
        }
    }
}
