//! Chow's original shrink-wrapping technique (PLDI 1988), as the paper
//! describes and compares against.
//!
//! Chow's data-flow formulation, expressed in the saved-region framework
//! of [`crate::dataflow`]: the busy set is grown by (1) artificial data
//! flow over loop bodies, (2) the all-paths anticipation/availability
//! hoisting his save/restore equations perform, and (3) artificial data
//! flow across any boundary edge that is a critical jump edge (Chow
//! "specifically prohibits spill code instructions from being inserted
//! onto jump edges"), iterated to a fixpoint. Saves are then placed on the
//! region-entry edges and restores on the region-exit edges — none of
//! which, by construction, require jump blocks.

use crate::dataflow::{chow_grow, region_boundary};
use crate::location::{Placement, SpillKind, SpillLoc, SpillPoint};
use crate::usage::CalleeSavedUsage;
use spillopt_ir::analysis::loops::{sccs, CyclicRegion};
use spillopt_ir::Cfg;

/// Computes Chow's shrink-wrapping placement for all used callee-saved
/// registers.
pub fn chow_shrink_wrap(cfg: &Cfg, usage: &CalleeSavedUsage) -> Placement {
    let cyclic = sccs(cfg);
    chow_shrink_wrap_with(cfg, &cyclic, usage)
}

/// As [`chow_shrink_wrap`], with precomputed cyclic regions (for callers
/// that already ran SCC detection).
pub fn chow_shrink_wrap_with(
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    usage: &CalleeSavedUsage,
) -> Placement {
    let mut points = Vec::new();
    for (reg, busy) in usage.regs() {
        let w = chow_grow(cfg, cyclic, busy);
        let b = region_boundary(cfg, &w);
        if b.save_at_entry {
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(cfg.entry()),
            });
        }
        for e in b.save_edges {
            debug_assert!(
                !cfg.needs_jump_block(e),
                "Chow placement reached a critical jump edge"
            );
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(e),
            });
        }
        for e in b.restore_edges {
            debug_assert!(
                !cfg.needs_jump_block(e),
                "Chow placement reached a critical jump edge"
            );
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(e),
            });
        }
        for x in b.restore_at_exits {
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(x),
            });
        }
    }
    Placement::from_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, PReg, Reg};

    #[test]
    fn keeps_save_restore_out_of_loops() {
        // entry -> header; header -> {body(busy), exit}; body -> header.
        let mut fb = FunctionBuilder::new("l", 0);
        let entry = fb.create_block(None);
        let header = fb.create_block(None);
        let body = fb.create_block(None);
        let exit = fb.create_block(None);
        fb.switch_to(entry);
        let x = fb.li(0);
        fb.jump(header);
        fb.switch_to(header);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), exit, body);
        fb.switch_to(body);
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), body, 4);
        let p = chow_shrink_wrap(&cfg, &usage);
        // No point may sit inside the loop {header, body}.
        for pt in p.points() {
            let blocks: Vec<usize> = match pt.loc {
                SpillLoc::BlockTop(b) | SpillLoc::BlockBottom(b) => vec![b.index()],
                SpillLoc::OnEdge(e) => {
                    let edge = cfg.edge(e);
                    // An edge location is "inside" if both endpoints are.
                    vec![edge.from.index(), edge.to.index()]
                }
            };
            let inside = blocks
                .iter()
                .all(|&b| b == header.index() || b == body.index());
            assert!(!inside, "spill point {pt} is inside the loop");
        }
        assert!(!p.is_empty());
    }

    #[test]
    fn single_cold_block_stays_tight() {
        // Diamond with one busy arm: Chow == modified here.
        let mut fb = FunctionBuilder::new("d", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        let p = chow_shrink_wrap(&cfg, &usage);
        assert_eq!(p.static_count(), 2);
        let ab = cfg.edge_between(a, b).unwrap();
        let bd = cfg.edge_between(b, d).unwrap();
        assert!(p
            .points()
            .iter()
            .any(|pt| pt.loc == SpillLoc::OnEdge(ab) && pt.kind == SpillKind::Save));
        assert!(p
            .points()
            .iter()
            .any(|pt| pt.loc == SpillLoc::OnEdge(bd) && pt.kind == SpillKind::Restore));
    }
}
