//! Chow's original shrink-wrapping technique (PLDI 1988), as the paper
//! describes and compares against.
//!
//! Chow's data-flow formulation, expressed in the saved-region framework
//! of [`crate::dataflow`]: the busy set is grown by (1) artificial data
//! flow over loop bodies, (2) the all-paths anticipation/availability
//! hoisting his save/restore equations perform, and (3) artificial data
//! flow across any boundary edge that is a critical jump edge (Chow
//! "specifically prohibits spill code instructions from being inserted
//! onto jump edges"), iterated to a fixpoint. Saves are then placed on the
//! region-entry edges and restores on the region-exit edges — none of
//! which, by construction, require jump blocks.

use crate::location::Placement;
use crate::solver::chow_points_all;
use crate::usage::CalleeSavedUsage;
use spillopt_ir::analysis::loops::{sccs, CyclicRegion};
use spillopt_ir::{Cfg, DerivedCfg};

/// Computes Chow's shrink-wrapping placement for all used callee-saved
/// registers.
pub fn chow_shrink_wrap(cfg: &Cfg, usage: &CalleeSavedUsage) -> Placement {
    let cyclic = sccs(cfg);
    chow_shrink_wrap_with(cfg, &cyclic, usage)
}

/// As [`chow_shrink_wrap`], with precomputed cyclic regions (for callers
/// that already ran SCC detection).
///
/// All registers grow at once through the bit-parallel solver
/// ([`crate::solver::chow_grow_all`]) — one membership word per block,
/// one fixpoint, one boundary sweep — instead of one saved-region
/// fixpoint per register. The placement is identical to the retired
/// per-register path ([`crate::reference::chow_shrink_wrap_reference`]),
/// which also serves as the fallback for the impossible case of more
/// than 64 callee-saved registers.
pub fn chow_shrink_wrap_with(
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    usage: &CalleeSavedUsage,
) -> Placement {
    let derived = DerivedCfg::compute(cfg);
    chow_shrink_wrap_derived(cfg, &derived, cyclic, usage)
}

/// As [`chow_shrink_wrap_with`], with the caller's cached [`DerivedCfg`]
/// (the driver's analysis cache computes it once per function and every
/// technique reuses it).
pub fn chow_shrink_wrap_derived(
    cfg: &Cfg,
    derived: &DerivedCfg,
    cyclic: &[CyclicRegion],
    usage: &CalleeSavedUsage,
) -> Placement {
    match chow_points_all(cfg, derived, cyclic, usage) {
        Some(points) => Placement::from_points(points),
        None => crate::reference::chow_shrink_wrap_reference(cfg, cyclic, usage),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::{SpillKind, SpillLoc};
    use spillopt_ir::{Cond, FunctionBuilder, PReg, Reg};

    #[test]
    fn keeps_save_restore_out_of_loops() {
        // entry -> header; header -> {body(busy), exit}; body -> header.
        let mut fb = FunctionBuilder::new("l", 0);
        let entry = fb.create_block(None);
        let header = fb.create_block(None);
        let body = fb.create_block(None);
        let exit = fb.create_block(None);
        fb.switch_to(entry);
        let x = fb.li(0);
        fb.jump(header);
        fb.switch_to(header);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), exit, body);
        fb.switch_to(body);
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), body, 4);
        let p = chow_shrink_wrap(&cfg, &usage);
        // No point may sit inside the loop {header, body}.
        for pt in p.points() {
            let blocks: Vec<usize> = match pt.loc {
                SpillLoc::BlockTop(b) | SpillLoc::BlockBottom(b) => vec![b.index()],
                SpillLoc::OnEdge(e) => {
                    let edge = cfg.edge(e);
                    // An edge location is "inside" if both endpoints are.
                    vec![edge.from.index(), edge.to.index()]
                }
            };
            let inside = blocks
                .iter()
                .all(|&b| b == header.index() || b == body.index());
            assert!(!inside, "spill point {pt} is inside the loop");
        }
        assert!(!p.is_empty());
    }

    #[test]
    fn single_cold_block_stays_tight() {
        // Diamond with one busy arm: Chow == modified here.
        let mut fb = FunctionBuilder::new("d", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        let p = chow_shrink_wrap(&cfg, &usage);
        assert_eq!(p.static_count(), 2);
        let ab = cfg.edge_between(a, b).unwrap();
        let bd = cfg.edge_between(b, d).unwrap();
        assert!(p
            .points()
            .iter()
            .any(|pt| pt.loc == SpillLoc::OnEdge(ab) && pt.kind == SpillKind::Save));
        assert!(p
            .points()
            .iter()
            .any(|pt| pt.loc == SpillLoc::OnEdge(bd) && pt.kind == SpillKind::Restore));
    }
}
