//! The baseline placement: save at procedure entry, restore at every exit.

use crate::location::{Placement, SpillKind, SpillLoc, SpillPoint};
use crate::usage::CalleeSavedUsage;
use spillopt_ir::Cfg;

/// Places, for every used callee-saved register, one save at the top of
/// the entry block and one restore at the bottom of every return block.
///
/// This is always valid, has the lowest static overhead, and is the
/// baseline the paper's Table 1 normalizes against.
pub fn entry_exit_placement(cfg: &Cfg, usage: &CalleeSavedUsage) -> Placement {
    let mut points = Vec::new();
    for (reg, _) in usage.regs() {
        points.push(SpillPoint {
            reg,
            kind: SpillKind::Save,
            loc: SpillLoc::BlockTop(cfg.entry()),
        });
        for &x in cfg.exit_blocks() {
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(x),
            });
        }
    }
    Placement::from_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{BlockId, Cond, FunctionBuilder, PReg, Reg};

    #[test]
    fn one_save_per_reg_one_restore_per_exit() {
        // Two exits.
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.ret(None);
        fb.switch_to(c);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 3);
        usage.set_busy(PReg::new(12), c, 3);
        let p = entry_exit_placement(&cfg, &usage);
        // 2 regs × (1 save + 2 restores).
        assert_eq!(p.static_count(), 6);
        for (reg, _) in usage.regs() {
            let saves: Vec<_> = p
                .points_for(reg)
                .filter(|pt| pt.kind == SpillKind::Save)
                .collect();
            assert_eq!(saves.len(), 1);
            assert_eq!(saves[0].loc, SpillLoc::BlockTop(BlockId::from_index(0)));
        }
    }

    #[test]
    fn empty_usage_places_nothing() {
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        fb.switch_to(a);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let p = entry_exit_placement(&cfg, &CalleeSavedUsage::new());
        assert!(p.is_empty());
    }
}
