//! Delta-driven incremental re-optimization of the placement suite.
//!
//! Real deployments re-profile continuously, but the paper's batch
//! formulation recomputes a whole function's placement from scratch on
//! any edge-count change. The bottom-up PST traversal is already an
//! arena fold over preorder-numbered regions, so placement can be made
//! *delta-driven* in the semi-naive least-fixpoint style: memoize every
//! region's folded products ([`run_suite_memoized`]), map a profile
//! delta onto the regions it can invalidate
//! ([`spillopt_pst::Pst::dirty_regions`]), and re-fold only those plus
//! their ancestor path to the root ([`run_suite_incremental`]).
//!
//! # Why a clean region's folded output survives a profile change
//!
//! The dirty mapping is ancestor-closed, so a clean region's whole
//! subtree is clean. By induction bottom-up, every cost a clean region's
//! fold reads is unchanged:
//!
//! * a home set's cost sums location costs at points whose innermost
//!   regions lie inside the home region — any changed count at such a
//!   point seeds a dirty descendant, contradicting cleanliness;
//! * a boundary set created at a descendant region `d` prices `d`'s own
//!   boundary locations — a changed boundary edge seeds `d` itself
//!   dirty (the explicit boundary-owner rule), and a changed return
//!   block reprices a block inside `d`;
//! * membership words, busy intersections, and hoistability are
//!   profile-independent altogether.
//!
//! Decisions are pure functions of those inputs, so the clean fold
//! output — membership *and* cost — is byte-for-byte what a cold run
//! would recompute. The cold path ([`crate::run_suite`]) is kept intact
//! as the differential oracle; the driver's drift fuzzer
//! (`spillopt stress --drift`) compares the two on every step of every
//! seeded drift sequence.

use crate::cost::CostModel;
use crate::hierarchical::{
    finalize_root, fold_region, home_live_sets, FoldCtx, HierarchicalResult, LiveSet,
};
use crate::modified::InitialSets;
use crate::overhead::placement_cost_with;
use crate::pipeline::{PlacementSuite, SuiteError, SuiteInputs, SuiteOptions};
use crate::sets::EdgeShares;
use crate::solver::RegionBusyCounts;
use crate::validate::check_placement;
use spillopt_ir::{Cfg, DenseBitSet};
use spillopt_profile::ProfileDelta;

/// The memoized per-region folded products of one function's placement:
/// everything [`run_suite_incremental`] needs to re-establish the cold
/// fixpoint by re-folding only dirty regions.
///
/// A memo is valid for exactly one `(function, options)` pair and one
/// *base* profile — the profile of the [`run_suite_memoized`] call that
/// built it, or of the last [`run_suite_incremental`] call that updated
/// it. Callers must pass a [`ProfileDelta`] computed from that base
/// profile to the new one; the driver's session arena owns this
/// bookkeeping.
#[derive(Debug)]
pub struct PlacementMemo {
    /// Edge shares of the initial solution (profile-independent).
    shares: EdgeShares,
    /// Memoized busy intersections (profile-independent; `None` on the
    /// >64-register fallback, where folds recompute intersections).
    busy_counts: Option<RegionBusyCounts>,
    /// Fold tables of the execution-count model.
    exec: ModelMemo,
    /// Fold tables of the jump-edge model.
    jump: ModelMemo,
    /// The last computed suite, returned wholesale on an empty delta.
    suite: PlacementSuite,
}

/// One cost model's fold tables: the home sets (costs valid for the
/// memo's base profile) and every region's folded output.
#[derive(Debug)]
struct ModelMemo {
    model: CostModel,
    home_sets: Vec<Vec<LiveSet>>,
    folded: Vec<Vec<LiveSet>>,
}

/// The dirty-region ledger of one incremental call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefoldStats {
    /// Total PST regions of the function.
    pub regions_total: usize,
    /// Regions actually re-folded (dirty set closed over ancestors);
    /// zero on an empty delta.
    pub regions_refolded: usize,
}

/// As [`crate::run_suite`], additionally retaining every per-region
/// folded product in a [`PlacementMemo`] for later incremental re-folds.
///
/// The returned suite is identical to [`crate::run_suite`]'s on the same
/// inputs: both paths run the exact same per-region decision code
/// (`fold_region`), and keeping the fold tables alive instead of
/// draining them changes no decision.
///
/// # Errors
///
/// Returns a [`SuiteError`] if any produced placement fails validity
/// checking; that is a bug in this crate, never a property of the input.
pub fn run_suite_memoized(
    cfg: &Cfg,
    inputs: &SuiteInputs<'_>,
    options: &SuiteOptions,
) -> Result<(PlacementSuite, PlacementMemo), SuiteError> {
    let usage = inputs.usage();
    let profile = inputs.profile();
    let derived = inputs.derived();
    let pst = inputs.pst();
    let costs = &options.costs;

    let entry_exit = {
        let _s = spillopt_obs::span("place_entry_exit");
        crate::entry_exit::entry_exit_placement(cfg, usage)
    };
    let chow = {
        let _s = spillopt_obs::span("place_chow");
        crate::chow::chow_shrink_wrap_derived(cfg, derived, inputs.cyclic(), usage)
    };
    let initial = {
        let _s = spillopt_obs::span("place_hier_seed");
        crate::modified::modified_shrink_wrap_derived(cfg, derived, usage)
    };
    let shares = EdgeShares::from_sets(&initial.sets);
    let busy_counts = RegionBusyCounts::compute(pst, cfg.num_blocks(), usage);

    let fold_all = |model: CostModel, initial: InitialSets| {
        let _s = spillopt_obs::span(match model {
            CostModel::ExecutionCount => "place_hier_exec",
            CostModel::JumpEdge => "place_hier_jump",
        });
        let ctx = FoldCtx {
            cfg,
            pst,
            usage,
            profile,
            model,
            costs,
            shares: &shares,
            busy_counts: busy_counts.as_ref(),
        };
        let home_sets = home_live_sets(&ctx, initial);
        let mut folded: Vec<Vec<LiveSet>> = (0..pst.num_regions()).map(|_| Vec::new()).collect();
        let mut busy_inside = DenseBitSet::new(cfg.num_blocks());
        let mut trace = Vec::new();
        for &r in pst.postorder() {
            let region = pst.region(r);
            let mut live: Vec<LiveSet> = Vec::new();
            for &c in &region.children {
                live.extend(folded[c.index()].iter().cloned());
            }
            live.extend(home_sets[r.index()].iter().cloned());
            folded[r.index()] = fold_region(&ctx, r, live, &mut busy_inside, &mut trace);
        }
        let root_sets = folded[pst.root().index()].clone();
        let (placement, final_sets) = finalize_root(&ctx, &chow, root_sets);
        (
            HierarchicalResult {
                placement,
                final_sets,
                trace,
            },
            ModelMemo {
                model,
                home_sets,
                folded,
            },
        )
    };

    let (hierarchical_exec, exec) = fold_all(CostModel::ExecutionCount, initial.clone());
    let (hierarchical_jump, jump) = fold_all(CostModel::JumpEdge, initial);

    {
        let _s = spillopt_obs::span("validate");
        for (technique, p) in [
            ("entry_exit", &entry_exit),
            ("chow", &chow),
            ("hierarchical_exec", &hierarchical_exec.placement),
            ("hierarchical_jump", &hierarchical_jump.placement),
        ] {
            let errors = check_placement(cfg, usage, p);
            if !errors.is_empty() {
                return Err(SuiteError {
                    technique,
                    errors,
                    placement: p.clone(),
                });
            }
        }
    }

    let predicted = {
        let _s = spillopt_obs::span("price");
        [
            placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &entry_exit),
            placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &chow),
            placement_cost_with(
                CostModel::JumpEdge,
                costs,
                cfg,
                profile,
                &hierarchical_exec.placement,
            ),
            placement_cost_with(
                CostModel::JumpEdge,
                costs,
                cfg,
                profile,
                &hierarchical_jump.placement,
            ),
        ]
    };

    let suite = PlacementSuite {
        entry_exit,
        chow,
        hierarchical_exec,
        hierarchical_jump,
        predicted,
    };
    let memo = PlacementMemo {
        shares,
        busy_counts,
        exec,
        jump,
        suite: suite.clone(),
    };
    Ok((suite, memo))
}

/// Re-establishes the cold fixpoint after a profile drift by re-folding
/// only the regions `delta` dirties (plus their root path), reusing
/// every clean region's memoized fold wholesale.
///
/// `inputs` must carry the *new* profile; `delta` must be the
/// [`ProfileDelta`] from the memo's base profile to it; `cfg`, the
/// analyses, and `options` must be those the memo was built with. On
/// return the memo's base profile is the new one. An empty delta returns
/// the memoized suite unchanged (zero regions re-folded).
///
/// The returned suite is byte-identical to what [`crate::run_suite`]
/// would compute cold on the new profile (the `trace` of the
/// hierarchical results excepted: it covers only the re-folded
/// regions). The driver's drift fuzzer enforces the equivalence
/// differentially on every registered target.
///
/// # Errors
///
/// Returns a [`SuiteError`] if a re-folded placement fails validity
/// checking; that is a bug in this crate, never a property of the input.
pub fn run_suite_incremental(
    cfg: &Cfg,
    inputs: &SuiteInputs<'_>,
    options: &SuiteOptions,
    memo: &mut PlacementMemo,
    delta: &ProfileDelta,
) -> Result<(PlacementSuite, RefoldStats), SuiteError> {
    let pst = inputs.pst();
    let regions_total = pst.num_regions();
    if delta.is_empty() {
        return Ok((
            memo.suite.clone(),
            RefoldStats {
                regions_total,
                regions_refolded: 0,
            },
        ));
    }

    let _s = spillopt_obs::span("place_incremental");
    let usage = inputs.usage();
    let profile = inputs.profile();
    let costs = &options.costs;

    let dirty = pst.dirty_regions(cfg, delta.changed_edges(), delta.entry_changed());
    let regions_refolded = dirty.iter().filter(|&&d| d).count();
    spillopt_obs::count("regions_refolded", regions_refolded as u64);
    spillopt_obs::count("regions_total", regions_total as u64);

    let PlacementMemo {
        shares,
        busy_counts,
        exec,
        jump,
        suite,
    } = memo;
    let chow = suite.chow.clone();

    let refold = |mm: &mut ModelMemo| -> HierarchicalResult {
        let ctx = FoldCtx {
            cfg,
            pst,
            usage,
            profile,
            model: mm.model,
            costs,
            shares,
            busy_counts: busy_counts.as_ref(),
        };
        let mut busy_inside = DenseBitSet::new(cfg.num_blocks());
        let mut trace = Vec::new();
        for &r in pst.postorder() {
            if !dirty[r.index()] {
                continue;
            }
            // The region's own home sets reprice under the new profile;
            // clean regions' home and folded sets keep their cached
            // costs (unchanged by the dirty-mapping invariant).
            for hs in &mut mm.home_sets[r.index()] {
                hs.cost = hs.set.cost_with(mm.model, costs, cfg, profile, shares);
            }
            let region = pst.region(r);
            let mut live: Vec<LiveSet> = Vec::new();
            for &c in &region.children {
                live.extend(mm.folded[c.index()].iter().cloned());
            }
            live.extend(mm.home_sets[r.index()].iter().cloned());
            mm.folded[r.index()] = fold_region(&ctx, r, live, &mut busy_inside, &mut trace);
        }
        let root_sets = mm.folded[pst.root().index()].clone();
        let (placement, final_sets) = finalize_root(&ctx, &chow, root_sets);
        HierarchicalResult {
            placement,
            final_sets,
            trace,
        }
    };

    let hierarchical_exec = refold(exec);
    let hierarchical_jump = refold(jump);

    for (technique, p) in [
        ("hierarchical_exec", &hierarchical_exec.placement),
        ("hierarchical_jump", &hierarchical_jump.placement),
    ] {
        let errors = check_placement(cfg, usage, p);
        if !errors.is_empty() {
            return Err(SuiteError {
                technique,
                errors,
                placement: p.clone(),
            });
        }
    }

    let predicted = [
        placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &suite.entry_exit),
        placement_cost_with(CostModel::JumpEdge, costs, cfg, profile, &chow),
        placement_cost_with(
            CostModel::JumpEdge,
            costs,
            cfg,
            profile,
            &hierarchical_exec.placement,
        ),
        placement_cost_with(
            CostModel::JumpEdge,
            costs,
            cfg,
            profile,
            &hierarchical_jump.placement,
        ),
    ];

    let new_suite = PlacementSuite {
        entry_exit: suite.entry_exit.clone(),
        chow,
        hierarchical_exec,
        hierarchical_jump,
        predicted,
    };
    *suite = new_suite.clone();
    Ok((
        new_suite,
        RefoldStats {
            regions_total,
            regions_refolded,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_suite;
    use crate::usage::CalleeSavedUsage;
    use spillopt_ir::analysis::loops::sccs;
    use spillopt_ir::{BlockId, Cond, DerivedCfg, FunctionBuilder, PReg, Reg};
    use spillopt_profile::{random_walk_profile, EdgeProfile};
    use spillopt_pst::Pst;

    /// Nested diamonds plus a loop: enough PST structure that a local
    /// drift leaves clean regions.
    fn shape() -> spillopt_ir::Function {
        let mut fb = FunctionBuilder::new("drift", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        let e = fb.create_block(None);
        let g = fb.create_block(None);
        let h = fb.create_block(None);
        let i = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), g, b);
        fb.switch_to(b);
        fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), d, c);
        fb.switch_to(c);
        fb.jump(e);
        fb.switch_to(d);
        fb.jump(e);
        fb.switch_to(e);
        fb.jump(h);
        fb.switch_to(g);
        fb.jump(h);
        fb.switch_to(h);
        fb.branch(Cond::Eq, Reg::Virt(x), Reg::Virt(x), a, i);
        fb.switch_to(i);
        fb.ret(None);
        fb.finish()
    }

    struct Fixture {
        cfg: Cfg,
        usage: CalleeSavedUsage,
        cyclic: Vec<spillopt_ir::analysis::loops::CyclicRegion>,
        pst: Pst,
        derived: DerivedCfg,
    }

    fn fixture() -> Fixture {
        let f = shape();
        let cfg = Cfg::compute(&f);
        let n = cfg.num_blocks();
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), BlockId::from_index(2), n);
        usage.set_busy(PReg::new(12), BlockId::from_index(5), n);
        usage.set_busy(PReg::new(12), BlockId::from_index(3), n);
        let cyclic = sccs(&cfg);
        let pst = Pst::compute(&cfg);
        let derived = DerivedCfg::compute(&cfg);
        Fixture {
            cfg,
            usage,
            cyclic,
            pst,
            derived,
        }
    }

    fn assert_suites_equal(a: &PlacementSuite, b: &PlacementSuite, what: &str) {
        assert_eq!(a.entry_exit, b.entry_exit, "{what}: entry_exit");
        assert_eq!(a.chow, b.chow, "{what}: chow");
        assert_eq!(
            a.hierarchical_exec.placement, b.hierarchical_exec.placement,
            "{what}: exec placement"
        );
        assert_eq!(
            a.hierarchical_jump.placement, b.hierarchical_jump.placement,
            "{what}: jump placement"
        );
        assert_eq!(
            a.hierarchical_exec.final_sets, b.hierarchical_exec.final_sets,
            "{what}: exec sets"
        );
        assert_eq!(
            a.hierarchical_jump.final_sets, b.hierarchical_jump.final_sets,
            "{what}: jump sets"
        );
        assert_eq!(a.predicted, b.predicted, "{what}: predicted");
    }

    #[test]
    fn memoized_cold_run_matches_the_oracle() {
        let fx = fixture();
        let profile = random_walk_profile(&fx.cfg, 200, 64, 7);
        let inputs = SuiteInputs::analyzed(&fx.usage, &profile, &fx.cyclic, &fx.pst, &fx.derived);
        let opts = SuiteOptions::default();
        let cold = run_suite(&fx.cfg, &inputs, &opts).expect("valid");
        let (memoized, _memo) = run_suite_memoized(&fx.cfg, &inputs, &opts).expect("valid");
        assert_suites_equal(&cold, &memoized, "memoized vs cold");
    }

    #[test]
    fn incremental_refold_matches_cold_across_drift_steps() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let fx = fixture();
        let opts = SuiteOptions::default();
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let base = random_walk_profile(&fx.cfg, 150, 48, seed);
            let inputs = SuiteInputs::analyzed(&fx.usage, &base, &fx.cyclic, &fx.pst, &fx.derived);
            let (_, mut memo) = run_suite_memoized(&fx.cfg, &inputs, &opts).expect("valid");
            let mut prev = base.clone();
            for step in 0..12 {
                let mut counts = prev.edge_counts().to_vec();
                let mut entry = prev.entry_count();
                match step % 4 {
                    // Single-edge bump (the common small drift).
                    0 => {
                        let e = rng.gen_range(0..counts.len());
                        counts[e] = counts[e].wrapping_add(rng.gen_range(1..100)) & 0xFFFF;
                    }
                    // Entry-count drift.
                    1 => entry = entry.wrapping_add(rng.gen_range(1..50)) & 0xFFFF,
                    // Zero delta: nothing changes.
                    2 => {}
                    // Full invalidation: every edge changes.
                    _ => {
                        for c in counts.iter_mut() {
                            *c = rng.gen_range(0..1000);
                        }
                    }
                }
                let next = EdgeProfile::new(&fx.cfg, counts, entry);
                let delta = spillopt_profile::ProfileDelta::between(&prev, &next);
                let next_inputs =
                    SuiteInputs::analyzed(&fx.usage, &next, &fx.cyclic, &fx.pst, &fx.derived);
                let (warm, stats) =
                    run_suite_incremental(&fx.cfg, &next_inputs, &opts, &mut memo, &delta)
                        .expect("valid");
                let cold = run_suite(&fx.cfg, &next_inputs, &opts).expect("valid");
                assert_suites_equal(&cold, &warm, &format!("seed {seed} step {step}"));
                if delta.is_empty() {
                    assert_eq!(stats.regions_refolded, 0, "zero delta must re-fold nothing");
                }
                assert!(stats.regions_refolded <= stats.regions_total);
                prev = next;
            }
        }
    }

    #[test]
    fn small_drift_refolds_strictly_fewer_regions_than_total() {
        let fx = fixture();
        let opts = SuiteOptions::default();
        let base = random_walk_profile(&fx.cfg, 150, 48, 3);
        let inputs = SuiteInputs::analyzed(&fx.usage, &base, &fx.cyclic, &fx.pst, &fx.derived);
        let (_, mut memo) = run_suite_memoized(&fx.cfg, &inputs, &opts).expect("valid");

        // Find an edge whose innermost region is not the root, so the
        // drift is local; the fixture's nested diamonds guarantee one.
        let (edge, _) = fx
            .cfg
            .edges()
            .find(|(id, _)| {
                fx.pst.innermost_region_of_edge(&fx.cfg, *id) != fx.pst.root()
                    && fx
                        .pst
                        .dirty_regions(&fx.cfg, &[*id], false)
                        .iter()
                        .filter(|&&d| d)
                        .count()
                        < fx.pst.num_regions()
            })
            .expect("a local edge exists");
        let mut counts = base.edge_counts().to_vec();
        counts[edge.index()] += 17;
        let next = EdgeProfile::new(&fx.cfg, counts, base.entry_count());
        let delta = spillopt_profile::ProfileDelta::between(&base, &next);
        let next_inputs = SuiteInputs::analyzed(&fx.usage, &next, &fx.cyclic, &fx.pst, &fx.derived);
        let (warm, stats) =
            run_suite_incremental(&fx.cfg, &next_inputs, &opts, &mut memo, &delta).expect("valid");
        assert!(
            stats.regions_refolded < stats.regions_total,
            "small drift must re-fold strictly fewer regions ({} vs {})",
            stats.regions_refolded,
            stats.regions_total
        );
        assert!(stats.regions_refolded > 0);
        let cold = run_suite(&fx.cfg, &next_inputs, &opts).expect("valid");
        assert_suites_equal(&cold, &warm, "local drift");
    }
}
