//! Exact cost arithmetic and the paper's two cost models.
//!
//! Costs are execution counts scaled by `COST_SCALE` = lcm(1..=13) so that
//! the jump-edge cost model's rule "the cost of a jump instruction is
//! divided among all the callee-saved registers that have spill locations
//! on the corresponding jump edge" (the target has 13 callee-saved
//! registers, so at most 13 sharers) is computed *exactly*, and the
//! algorithm's `boundary ≤ contained` tie rule is decided exactly — the
//! paper's Figure 4(b) result hinges on a tie at cost 200.

use crate::location::{SpillKind, SpillLoc};
use spillopt_ir::Cfg;
use spillopt_profile::EdgeProfile;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Scale factor for exact fractional costs: lcm(1..=13) = 360360.
pub const COST_SCALE: u64 = 360_360;

/// An exact, scaled dynamic-execution-count cost.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(u64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0);

    /// A whole execution count.
    pub fn from_count(count: u64) -> Self {
        Cost(count.saturating_mul(COST_SCALE))
    }

    /// An exact fraction `count / divisor` of an execution count.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is 0 or does not divide `COST_SCALE` (every
    /// divisor up to 13 — and many beyond — divides it).
    pub fn from_fraction(count: u64, divisor: u64) -> Self {
        assert!(divisor > 0, "zero divisor");
        assert_eq!(
            COST_SCALE % divisor,
            0,
            "divisor {divisor} does not divide COST_SCALE"
        );
        Cost(count.saturating_mul(COST_SCALE / divisor))
    }

    /// The raw scaled value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The cost as a (possibly fractional) execution count.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / COST_SCALE as f64
    }

    /// The cost as a whole execution count.
    ///
    /// # Panics
    ///
    /// Panics if the cost is fractional.
    pub fn expect_count(self) -> u64 {
        assert_eq!(self.0 % COST_SCALE, 0, "fractional cost {}", self.as_f64());
        self.0 / COST_SCALE
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(COST_SCALE) {
            write!(f, "Cost({})", self.0 / COST_SCALE)
        } else {
            write!(f, "Cost({:.3})", self.as_f64())
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(COST_SCALE) {
            write!(f, "{}", self.0 / COST_SCALE)
        } else {
            write!(f, "{:.3}", self.as_f64())
        }
    }
}

/// The weight of one machine instruction as an exact fraction
/// `num / den` of a baseline instruction.
///
/// Targets use fractions to express conventions the paper's uniform
/// PA-RISC accounting cannot: x86-64's one-byte stack-engine `push`/`pop`
/// prologue saves are cheaper than a `mov` to a frame slot, and an
/// AArch64 `stp` amortizes one instruction over two registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InsnCost {
    num: u32,
    den: u32,
}

impl InsnCost {
    /// One full instruction per executed save/restore — the paper's
    /// PA-RISC accounting.
    pub const ONE: InsnCost = InsnCost { num: 1, den: 1 };

    /// An exact fractional instruction weight.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or does not divide [`COST_SCALE`].
    pub const fn new(num: u32, den: u32) -> InsnCost {
        assert!(den > 0, "zero instruction-cost denominator");
        assert!(
            COST_SCALE.is_multiple_of(den as u64),
            "instruction-cost denominator does not divide COST_SCALE"
        );
        InsnCost { num, den }
    }

    /// The cost of executing `count` instructions of this weight, with
    /// the weight further divided by `share` (jump-cost sharing or
    /// save-pairing; `share == 1` means no division).
    ///
    /// # Panics
    ///
    /// Panics if `den * share` does not divide [`COST_SCALE`] (shares are
    /// register counts, at most 13, so every product in use divides it).
    pub fn of(self, count: u64, share: u64) -> Cost {
        Cost::from_fraction(
            count.saturating_mul(self.num as u64),
            self.den as u64 * share,
        )
    }
}

/// Per-target costs of the three instruction kinds the placement passes
/// insert, plus the target's save-pairing width.
///
/// [`SpillCostModel::UNIT`] — every instruction costs 1, no pairing — is
/// the paper's PA-RISC accounting; every pre-existing entry point prices
/// with it, so results on the default target are bit-identical to the
/// unparameterized code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpillCostModel {
    /// One save (store to the register's frame slot) anywhere but the
    /// procedure entry.
    pub save: InsnCost,
    /// One restore (load from the frame slot) anywhere but a procedure
    /// exit.
    pub restore: InsnCost,
    /// One save at the procedure entry (x86-64 prologues use `push`,
    /// cheaper than `mov reg, [frame]`).
    pub entry_save: InsnCost,
    /// One restore at a procedure exit (`pop` on x86-64).
    pub exit_restore: InsnCost,
    /// The jump instruction of a jump block on a critical jump edge.
    pub jump: InsnCost,
    /// Registers one save/restore instruction can cover when they are
    /// placed at the same location (2 for AArch64 `stp`/`ldp`, else 1).
    pub pair_size: u8,
}

impl SpillCostModel {
    /// The paper's accounting: every instruction costs one unit and each
    /// register needs its own save/restore instruction.
    pub const UNIT: SpillCostModel = SpillCostModel {
        save: InsnCost::ONE,
        restore: InsnCost::ONE,
        entry_save: InsnCost::ONE,
        exit_restore: InsnCost::ONE,
        jump: InsnCost::ONE,
        pair_size: 1,
    };

    /// The weight of one save/restore of `kind` at `loc`, resolving the
    /// cheaper entry/exit variants against the CFG.
    pub fn insn(&self, cfg: &Cfg, kind: SpillKind, loc: SpillLoc) -> InsnCost {
        match (kind, loc) {
            (SpillKind::Save, SpillLoc::BlockTop(b)) if b == cfg.entry() => self.entry_save,
            (SpillKind::Restore, SpillLoc::BlockBottom(b)) if cfg.exit_blocks().contains(&b) => {
                self.exit_restore
            }
            (SpillKind::Save, _) => self.save,
            (SpillKind::Restore, _) => self.restore,
        }
    }
}

impl Default for SpillCostModel {
    fn default() -> Self {
        SpillCostModel::UNIT
    }
}

/// The paper's two cost models.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CostModel {
    /// Each inserted save/restore costs the execution count of its
    /// location. Solves the placement problem optimally, but ignores the
    /// jump instructions needed to realize code on jump edges.
    ExecutionCount,
    /// Like `ExecutionCount`, plus the cost of the jump instruction
    /// required when a location sits on a *critical jump edge* (realized
    /// as a jump block). For initial (shrink-wrapping) sets the jump cost
    /// is split among all registers with locations on the edge; for sets
    /// created at region boundaries each register bears the full cost.
    JumpEdge,
}

/// The dynamic execution count of a location.
///
/// `BlockTop(entry)` means *at the procedure entry*, once per call: its
/// physical realization lives above any loop back to the entry block
/// (the insertion pass splits such an entry), so it is priced by the
/// entry count, not the entry block's (possibly loop-inflated) count.
pub fn location_exec_count(cfg: &Cfg, profile: &EdgeProfile, loc: SpillLoc) -> u64 {
    match loc {
        SpillLoc::BlockTop(b) if b == cfg.entry() => profile.entry_count(),
        SpillLoc::BlockTop(b) | SpillLoc::BlockBottom(b) => profile.block_count(b),
        SpillLoc::OnEdge(e) => profile.edge_count(e),
    }
}

/// The base (model-independent) cost of a location: the execution count of
/// its block or edge (see [`location_exec_count`] for the entry-top rule).
pub fn location_base_cost(cfg: &Cfg, profile: &EdgeProfile, loc: SpillLoc) -> Cost {
    Cost::from_count(location_exec_count(cfg, profile, loc))
}

/// The cost of one save/restore instruction at `loc` under `model`.
///
/// `jump_share` is the number of callee-saved registers sharing a jump
/// block on this edge (1 = full jump cost). It only matters for locations
/// on critical jump edges under [`CostModel::JumpEdge`].
pub fn location_cost(
    model: CostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    loc: SpillLoc,
    jump_share: u64,
) -> Cost {
    let base = location_base_cost(cfg, profile, loc);
    match (model, loc) {
        (CostModel::JumpEdge, SpillLoc::OnEdge(e)) if cfg.needs_jump_block(e) => {
            base + Cost::from_fraction(profile.edge_count(e), jump_share)
        }
        _ => base,
    }
}

/// The cost of one save/restore of `kind` at `loc` under `model`, priced
/// with a target's [`SpillCostModel`].
///
/// `jump_share` divides the jump-instruction cost on critical jump edges
/// (the paper's rule for initial sets); `pair_share` divides the
/// save/restore instruction cost among registers sharing one paired
/// instruction at the same location (at most
/// [`SpillCostModel::pair_size`]). Both are 1 for unshared locations, and
/// with [`SpillCostModel::UNIT`] and `pair_share == 1` this equals
/// [`location_cost`] exactly.
// One parameter per pricing dimension; bundling them would just move the
// argument list into a struct literal at every call site.
#[allow(clippy::too_many_arguments)]
pub fn spill_point_cost(
    model: CostModel,
    costs: &SpillCostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    kind: SpillKind,
    loc: SpillLoc,
    jump_share: u64,
    pair_share: u64,
) -> Cost {
    let count = location_exec_count(cfg, profile, loc);
    let base = costs.insn(cfg, kind, loc).of(count, pair_share);
    match (model, loc) {
        (CostModel::JumpEdge, SpillLoc::OnEdge(e)) if cfg.needs_jump_block(e) => {
            base + costs.jump.of(profile.edge_count(e), jump_share)
        }
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fractions() {
        for d in 1..=13u64 {
            let c = Cost::from_fraction(100, d);
            assert_eq!(c.raw(), 100 * COST_SCALE / d);
        }
        let third = Cost::from_fraction(1, 3);
        let sum = third + third + third;
        assert_eq!(sum, Cost::from_count(1));
    }

    #[test]
    fn ordering_and_ties() {
        assert!(Cost::from_count(199) < Cost::from_count(200));
        assert!(Cost::from_count(200) <= Cost::from_count(200));
        let x = Cost::from_count(140) + Cost::from_count(60);
        assert_eq!(x, Cost::from_count(200));
    }

    #[test]
    fn expect_count_rejects_fractions() {
        assert_eq!(Cost::from_count(7).expect_count(), 7);
        let f = Cost::from_fraction(1, 2);
        let r = std::panic::catch_unwind(|| f.expect_count());
        assert!(r.is_err());
    }

    #[test]
    fn sum_and_display() {
        let total: Cost = [1u64, 2, 3].into_iter().map(Cost::from_count).sum();
        assert_eq!(total, Cost::from_count(6));
        assert_eq!(format!("{total}"), "6");
        assert_eq!(format!("{}", Cost::from_fraction(1, 2)), "0.500");
    }

    #[test]
    fn insn_cost_weights_and_shares() {
        assert_eq!(InsnCost::ONE.of(100, 1), Cost::from_count(100));
        assert_eq!(InsnCost::ONE.of(100, 2), Cost::from_fraction(100, 2));
        // Half-weight push shared between two paired registers: 100/4.
        assert_eq!(InsnCost::new(1, 2).of(100, 2), Cost::from_fraction(100, 4));
        // A three-instruction-unit save.
        assert_eq!(InsnCost::new(3, 1).of(10, 1), Cost::from_count(30));
    }

    #[test]
    fn spill_cost_model_resolves_entry_and_exit_weights() {
        use spillopt_ir::{Cond, FunctionBuilder, Reg};
        let mut fb = FunctionBuilder::new("m", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.ret(None);
        fb.switch_to(c);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);

        let x86ish = SpillCostModel {
            entry_save: InsnCost::new(1, 2),
            exit_restore: InsnCost::new(1, 2),
            ..SpillCostModel::UNIT
        };
        // Entry save and exit restores get the cheap weight...
        assert_eq!(
            x86ish.insn(&cfg, SpillKind::Save, SpillLoc::BlockTop(a)),
            InsnCost::new(1, 2)
        );
        assert_eq!(
            x86ish.insn(&cfg, SpillKind::Restore, SpillLoc::BlockBottom(b)),
            InsnCost::new(1, 2)
        );
        // ...everything else pays full price: a save at an exit's top,
        // a restore at the entry's bottom, and anything on an edge.
        assert_eq!(
            x86ish.insn(&cfg, SpillKind::Save, SpillLoc::BlockTop(b)),
            InsnCost::ONE
        );
        assert_eq!(
            x86ish.insn(&cfg, SpillKind::Restore, SpillLoc::BlockBottom(a)),
            InsnCost::ONE
        );
        let ab = cfg.edge_between(a, b).expect("a->b edge");
        assert_eq!(
            x86ish.insn(&cfg, SpillKind::Save, SpillLoc::OnEdge(ab)),
            InsnCost::ONE
        );
        assert_eq!(
            x86ish.insn(&cfg, SpillKind::Restore, SpillLoc::OnEdge(ab)),
            InsnCost::ONE
        );
        assert_eq!(SpillCostModel::default(), SpillCostModel::UNIT);
    }
}
