//! Exact cost arithmetic and the paper's two cost models.
//!
//! Costs are execution counts scaled by `COST_SCALE` = lcm(1..=13) so that
//! the jump-edge cost model's rule "the cost of a jump instruction is
//! divided among all the callee-saved registers that have spill locations
//! on the corresponding jump edge" (the target has 13 callee-saved
//! registers, so at most 13 sharers) is computed *exactly*, and the
//! algorithm's `boundary ≤ contained` tie rule is decided exactly — the
//! paper's Figure 4(b) result hinges on a tie at cost 200.

use crate::location::SpillLoc;
use spillopt_ir::Cfg;
use spillopt_profile::EdgeProfile;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Scale factor for exact fractional costs: lcm(1..=13) = 360360.
pub const COST_SCALE: u64 = 360_360;

/// An exact, scaled dynamic-execution-count cost.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(u64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0);

    /// A whole execution count.
    pub fn from_count(count: u64) -> Self {
        Cost(count.saturating_mul(COST_SCALE))
    }

    /// An exact fraction `count / divisor` of an execution count.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is 0 or does not divide `COST_SCALE` (every
    /// divisor up to 13 — and many beyond — divides it).
    pub fn from_fraction(count: u64, divisor: u64) -> Self {
        assert!(divisor > 0, "zero divisor");
        assert_eq!(
            COST_SCALE % divisor,
            0,
            "divisor {divisor} does not divide COST_SCALE"
        );
        Cost(count.saturating_mul(COST_SCALE / divisor))
    }

    /// The raw scaled value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The cost as a (possibly fractional) execution count.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / COST_SCALE as f64
    }

    /// The cost as a whole execution count.
    ///
    /// # Panics
    ///
    /// Panics if the cost is fractional.
    pub fn expect_count(self) -> u64 {
        assert_eq!(self.0 % COST_SCALE, 0, "fractional cost {}", self.as_f64());
        self.0 / COST_SCALE
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % COST_SCALE == 0 {
            write!(f, "Cost({})", self.0 / COST_SCALE)
        } else {
            write!(f, "Cost({:.3})", self.as_f64())
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % COST_SCALE == 0 {
            write!(f, "{}", self.0 / COST_SCALE)
        } else {
            write!(f, "{:.3}", self.as_f64())
        }
    }
}

/// The paper's two cost models.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CostModel {
    /// Each inserted save/restore costs the execution count of its
    /// location. Solves the placement problem optimally, but ignores the
    /// jump instructions needed to realize code on jump edges.
    ExecutionCount,
    /// Like `ExecutionCount`, plus the cost of the jump instruction
    /// required when a location sits on a *critical jump edge* (realized
    /// as a jump block). For initial (shrink-wrapping) sets the jump cost
    /// is split among all registers with locations on the edge; for sets
    /// created at region boundaries each register bears the full cost.
    JumpEdge,
}

/// The base (model-independent) cost of a location: the execution count of
/// its block or edge.
pub fn location_base_cost(profile: &EdgeProfile, loc: SpillLoc) -> Cost {
    match loc {
        SpillLoc::BlockTop(b) | SpillLoc::BlockBottom(b) => {
            Cost::from_count(profile.block_count(b))
        }
        SpillLoc::OnEdge(e) => Cost::from_count(profile.edge_count(e)),
    }
}

/// The cost of one save/restore instruction at `loc` under `model`.
///
/// `jump_share` is the number of callee-saved registers sharing a jump
/// block on this edge (1 = full jump cost). It only matters for locations
/// on critical jump edges under [`CostModel::JumpEdge`].
pub fn location_cost(
    model: CostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    loc: SpillLoc,
    jump_share: u64,
) -> Cost {
    let base = location_base_cost(profile, loc);
    match (model, loc) {
        (CostModel::JumpEdge, SpillLoc::OnEdge(e)) if cfg.needs_jump_block(e) => {
            base + Cost::from_fraction(profile.edge_count(e), jump_share)
        }
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fractions() {
        for d in 1..=13u64 {
            let c = Cost::from_fraction(100, d);
            assert_eq!(c.raw(), 100 * COST_SCALE / d);
        }
        let third = Cost::from_fraction(1, 3);
        let sum = third + third + third;
        assert_eq!(sum, Cost::from_count(1));
    }

    #[test]
    fn ordering_and_ties() {
        assert!(Cost::from_count(199) < Cost::from_count(200));
        assert!(Cost::from_count(200) <= Cost::from_count(200));
        let x = Cost::from_count(140) + Cost::from_count(60);
        assert_eq!(x, Cost::from_count(200));
    }

    #[test]
    fn expect_count_rejects_fractions() {
        assert_eq!(Cost::from_count(7).expect_count(), 7);
        let f = Cost::from_fraction(1, 2);
        let r = std::panic::catch_unwind(|| f.expect_count());
        assert!(r.is_err());
    }

    #[test]
    fn sum_and_display() {
        let total: Cost = [1u64, 2, 3].into_iter().map(Cost::from_count).sum();
        assert_eq!(total, Cost::from_count(6));
        assert_eq!(format!("{total}"), "6");
        assert_eq!(format!("{}", Cost::from_fraction(1, 2)), "0.500");
    }
}
