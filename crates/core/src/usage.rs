//! Callee-saved register usage: which registers the allocator used, and in
//! which blocks each is *busy* (holds an allocated variable and must not be
//! restored over).

use spillopt_ir::{BlockId, Cfg, DenseBitSet, Function, Liveness, PReg, Reg, Target};

/// For each callee-saved register the allocator used, the set of blocks
/// where it is busy. This — together with the profile — is the entire
/// input of the placement problem.
#[derive(Clone, Debug, Default)]
pub struct CalleeSavedUsage {
    entries: Vec<(PReg, DenseBitSet)>,
}

impl CalleeSavedUsage {
    /// Creates an empty usage map.
    pub fn new() -> Self {
        CalleeSavedUsage::default()
    }

    /// Marks `reg` busy in `block`. `num_blocks` sizes the bitset on first
    /// use of a register.
    pub fn set_busy(&mut self, reg: PReg, block: BlockId, num_blocks: usize) {
        match self.entries.iter_mut().find(|(r, _)| *r == reg) {
            Some((_, set)) => {
                set.insert(block.index());
            }
            None => {
                let mut set = DenseBitSet::new(num_blocks);
                set.insert(block.index());
                self.entries.push((reg, set));
                self.entries.sort_by_key(|(r, _)| *r);
            }
        }
    }

    /// The used registers with their busy sets, in register order.
    pub fn regs(&self) -> impl Iterator<Item = (PReg, &DenseBitSet)> + '_ {
        self.entries.iter().map(|(r, s)| (*r, s))
    }

    /// The busy set of `reg`, if used.
    pub fn busy(&self, reg: PReg) -> Option<&DenseBitSet> {
        self.entries.iter().find(|(r, _)| *r == reg).map(|(_, s)| s)
    }

    /// Number of callee-saved registers used.
    pub fn num_regs(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no callee-saved register is used (no save/restore
    /// code needed at all).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Derives usage from a (post-register-allocation) function: a
    /// callee-saved register is busy in every block where it is live-in,
    /// live-out, defined, or used.
    ///
    /// This is what the paper's pass receives from the register allocator;
    /// [`spillopt-regalloc`](https://docs.rs) exports it directly, but any
    /// allocator's output can be analyzed with this function.
    pub fn from_function(func: &Function, cfg: &Cfg, target: &Target) -> Self {
        let liveness = Liveness::compute(func, cfg, target);
        Self::from_liveness(func, target, &liveness)
    }

    /// As [`CalleeSavedUsage::from_function`], with liveness supplied by
    /// the caller — the driver's analysis cache computes liveness once
    /// per function and shares it between this derivation and any later
    /// consumer.
    pub fn from_liveness(func: &Function, target: &Target, liveness: &Liveness) -> Self {
        let mut usage = CalleeSavedUsage::new();
        let n = func.num_blocks();
        for b in func.block_ids() {
            let mark = |r: Reg, usage: &mut CalleeSavedUsage| {
                if let Reg::Phys(p) = r {
                    if target.is_callee_saved(p) {
                        usage.set_busy(p, b, n);
                    }
                }
            };
            for inst in &func.block(b).insts {
                inst.for_each_use(|r| mark(r, &mut usage));
                inst.for_each_def(|r| mark(r, &mut usage));
            }
            let universe = liveness.universe();
            for &p in target.callee_saved() {
                let idx = universe.index(Reg::Phys(p));
                if liveness.live_in(b).contains(idx) || liveness.live_out(b).contains(idx) {
                    usage.set_busy(p, b, n);
                }
            }
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{FunctionBuilder, InstKind};

    #[test]
    fn set_and_query() {
        let mut u = CalleeSavedUsage::new();
        let r11 = PReg::new(11);
        let r12 = PReg::new(12);
        u.set_busy(r12, BlockId::from_index(2), 4);
        u.set_busy(r11, BlockId::from_index(1), 4);
        u.set_busy(r11, BlockId::from_index(2), 4);
        assert_eq!(u.num_regs(), 2);
        let regs: Vec<PReg> = u.regs().map(|(r, _)| r).collect();
        assert_eq!(regs, vec![r11, r12]); // sorted
        assert!(u.busy(r11).unwrap().contains(1));
        assert!(u.busy(r11).unwrap().contains(2));
        assert!(!u.busy(r12).unwrap().contains(1));
        assert!(u.busy(PReg::new(13)).is_none());
        assert!(!u.is_empty());
    }

    #[test]
    fn from_function_finds_live_ranges() {
        // r11 defined in block A, used in block C: busy in A, B (live
        // through), C.
        let target = Target::default();
        let r11 = PReg::new(11);
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        fb.emit(InstKind::LoadImm {
            dst: Reg::Phys(r11),
            imm: 3,
        });
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(c);
        fb.switch_to(c);
        fb.ret(Some(Reg::Phys(r11)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let u = CalleeSavedUsage::from_function(&f, &cfg, &target);
        let busy = u.busy(r11).expect("r11 used");
        assert!(busy.contains(a.index()));
        assert!(busy.contains(b.index()));
        assert!(busy.contains(c.index()));
        assert_eq!(u.num_regs(), 1);
    }
}
