//! # spillopt-core
//!
//! The core of the *spillopt* project: a faithful reproduction of the
//! post-register-allocation callee-saved spill code placement system of
//!
//! > Christopher Lupo and Kent D. Wilken, *Post Register Allocation Spill
//! > Code Optimization*, CGO 2006.
//!
//! Given a procedure's CFG, the set of blocks in which each callee-saved
//! register is busy ([`CalleeSavedUsage`]), and an edge profile, this
//! crate computes where to place callee-saved *save* (store) and
//! *restore* (load) instructions:
//!
//! * [`entry_exit_placement`] — the baseline: save at procedure entry,
//!   restore at every exit;
//! * [`chow_shrink_wrap`] — Chow's shrink-wrapping (PLDI'88), with his
//!   artificial data flow for loops and jump edges;
//! * [`modified_shrink_wrap`] — the paper's modified variant producing
//!   the initial save/restore sets;
//! * [`hierarchical_placement`] — the paper's contribution: a
//!   profile-guided traversal of the Program Structure Tree that finds
//!   the minimum dynamic execution count placement, under either the
//!   [`CostModel::ExecutionCount`] model (optimal in-model) or the more
//!   physically accurate [`CostModel::JumpEdge`] model.
//!
//! Placements are plain data ([`Placement`]); [`check_placement`] proves
//! them valid, [`insert_placement`] materializes them into the IR
//! (creating jump blocks exactly where the jump-edge model predicts), and
//! [`placement_cost`] prices them.
//!
//! # Examples
//!
//! ```
//! use spillopt_core::{
//!     entry_exit_placement, hierarchical_placement, check_placement,
//!     CalleeSavedUsage, CostModel,
//! };
//! use spillopt_ir::{Cfg, Cond, FunctionBuilder, PReg, Reg};
//! use spillopt_profile::random_walk_profile;
//! use spillopt_pst::Pst;
//!
//! // A diamond with one busy arm.
//! let mut fb = FunctionBuilder::new("f", 0);
//! let a = fb.create_block(None);
//! let b = fb.create_block(None);
//! let c = fb.create_block(None);
//! let d = fb.create_block(None);
//! fb.switch_to(a);
//! let x = fb.li(0);
//! fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
//! fb.switch_to(b);
//! fb.jump(d);
//! fb.switch_to(c);
//! fb.jump(d);
//! fb.switch_to(d);
//! fb.ret(None);
//! let func = fb.finish();
//!
//! let cfg = Cfg::compute(&func);
//! let pst = Pst::compute(&cfg);
//! let profile = random_walk_profile(&cfg, 100, 32, 7);
//! let mut usage = CalleeSavedUsage::new();
//! usage.set_busy(PReg::new(11), b, 4);
//!
//! let result = hierarchical_placement(
//!     &cfg, &pst, &usage, &profile, CostModel::JumpEdge);
//! assert!(check_placement(&cfg, &usage, &result.placement).is_empty());
//! assert!(result.placement.static_count()
//!     <= entry_exit_placement(&cfg, &usage).static_count() + 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chow;
pub mod cost;
pub mod dataflow;
pub mod entry_exit;
pub mod hierarchical;
pub mod incremental;
pub mod insert;
pub mod location;
pub mod modified;
pub mod overhead;
pub mod paper_example;
pub mod pipeline;
pub mod reference;
pub mod sets;
pub mod solver;
pub mod usage;
pub mod validate;
pub mod webs;

pub use chow::{chow_shrink_wrap, chow_shrink_wrap_derived, chow_shrink_wrap_with};
pub use cost::{
    location_base_cost, location_cost, location_exec_count, spill_point_cost, Cost, CostModel,
    InsnCost, SpillCostModel, COST_SCALE,
};
pub use entry_exit::entry_exit_placement;
pub use hierarchical::{
    hierarchical_placement, hierarchical_placement_seeded, hierarchical_placement_vs,
    hierarchical_placement_with, HierarchicalResult, TraceEvent,
};
pub use incremental::{run_suite_incremental, run_suite_memoized, PlacementMemo, RefoldStats};
pub use insert::{insert_placement, InsertionReport};
pub use location::{Placement, SpillKind, SpillLoc, SpillPoint};
pub use modified::{
    modified_shrink_wrap, modified_shrink_wrap_derived, modified_shrink_wrap_hoisted, InitialSets,
};
pub use overhead::{
    placement_cost, placement_cost_with, placement_model_cost, predicted_spill_counts,
    static_overhead,
};
pub use paper_example::{fig1_example, paper_example, Fig1Example, PaperExample};
pub use pipeline::{
    run_suite, run_technique, PlacementSuite, SuiteError, SuiteInputs, SuiteOptions, Technique,
};
#[allow(deprecated)]
pub use pipeline::{run_suite_analyzed, run_suite_priced, run_suite_with};
pub use sets::{EdgeShares, SaveRestoreSet};
pub use solver::{chow_grow_all, chow_points_all, initial_sets_all, RegWords, RegionBusyCounts};
pub use usage::CalleeSavedUsage;
pub use validate::{check_placement, PlacementError};
