//! Spill code locations and placements.

use spillopt_ir::{BlockId, EdgeId, PReg};
use std::fmt;

/// A logical location where a save or restore instruction is placed.
///
/// `OnEdge` is realized physically by the insertion pass (sunk into a
/// block when the edge is non-critical, or into a new block — with a jump
/// instruction exactly on critical *jump* edges).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum SpillLoc {
    /// Before the first instruction of a block.
    BlockTop(BlockId),
    /// After the body of a block, before its terminator (if any).
    BlockBottom(BlockId),
    /// On a CFG edge.
    OnEdge(EdgeId),
}

impl fmt::Display for SpillLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillLoc::BlockTop(b) => write!(f, "top({b})"),
            SpillLoc::BlockBottom(b) => write!(f, "bottom({b})"),
            SpillLoc::OnEdge(e) => write!(f, "edge({e})"),
        }
    }
}

/// Save (store to memory) or restore (load from memory).
///
/// `Restore` deliberately orders before `Save`: when a restore (ending one
/// web) and a save (starting the next) land on the same location for the
/// same register, the restore must execute first, and sorted placements
/// preserve that.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum SpillKind {
    /// Load the original value back into the register.
    Restore,
    /// Store the callee-saved register's original value to its slot.
    Save,
}

/// One save or restore instruction of a placement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SpillPoint {
    /// The callee-saved register being saved/restored.
    pub reg: PReg,
    /// Save or restore.
    pub kind: SpillKind,
    /// Where the instruction goes.
    pub loc: SpillLoc,
}

impl fmt::Display for SpillPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            SpillKind::Save => "save",
            SpillKind::Restore => "restore",
        };
        write!(f, "{k} {} @ {}", self.reg, self.loc)
    }
}

/// A complete callee-saved save/restore placement for a procedure.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Placement {
    points: Vec<SpillPoint>,
}

impl Placement {
    /// Creates an empty placement.
    pub fn new() -> Self {
        Placement::default()
    }

    /// Creates a placement from points (deduplicated, deterministic
    /// order).
    pub fn from_points(mut points: Vec<SpillPoint>) -> Self {
        points.sort();
        points.dedup();
        Placement { points }
    }

    /// Adds a point.
    pub fn push(&mut self, p: SpillPoint) {
        self.points.push(p);
        self.points.sort();
        self.points.dedup();
    }

    /// All points, sorted.
    pub fn points(&self) -> &[SpillPoint] {
        &self.points
    }

    /// Points for one register.
    pub fn points_for(&self, reg: PReg) -> impl Iterator<Item = &SpillPoint> + '_ {
        self.points.iter().filter(move |p| p.reg == reg)
    }

    /// The distinct registers with any point.
    pub fn regs(&self) -> Vec<PReg> {
        let mut v: Vec<PReg> = self.points.iter().map(|p| p.reg).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Number of placed instructions (the paper's *static* overhead).
    pub fn static_count(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no save/restore code is placed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Merges another placement into this one.
    pub fn extend(&mut self, other: &Placement) {
        self.points.extend_from_slice(&other.points);
        self.points.sort();
        self.points.dedup();
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.points {
            writeln!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(reg: u8, kind: SpillKind, b: usize) -> SpillPoint {
        SpillPoint {
            reg: PReg::new(reg),
            kind,
            loc: SpillLoc::BlockTop(BlockId::from_index(b)),
        }
    }

    #[test]
    fn dedup_and_order() {
        let p = Placement::from_points(vec![
            pt(12, SpillKind::Restore, 3),
            pt(11, SpillKind::Save, 0),
            pt(11, SpillKind::Save, 0),
        ]);
        assert_eq!(p.static_count(), 2);
        assert_eq!(p.regs(), vec![PReg::new(11), PReg::new(12)]);
        assert_eq!(p.points_for(PReg::new(11)).count(), 1);
    }

    #[test]
    fn extend_merges() {
        let mut a = Placement::from_points(vec![pt(11, SpillKind::Save, 0)]);
        let b = Placement::from_points(vec![
            pt(11, SpillKind::Save, 0),
            pt(11, SpillKind::Restore, 1),
        ]);
        a.extend(&b);
        assert_eq!(a.static_count(), 2);
        assert!(!a.is_empty());
        assert!(Placement::new().is_empty());
    }

    #[test]
    fn display_is_readable() {
        let p = pt(11, SpillKind::Save, 0);
        assert_eq!(format!("{p}"), "save r11 @ top(bb0)");
    }
}
