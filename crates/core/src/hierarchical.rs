//! The hierarchical spill code placement algorithm — the paper's core
//! contribution (Section 4).
//!
//! ```text
//! HIERARCHICAL-SPILL-CODE-PLACEMENT
//! 1 compute PST
//! 2 compute shrink-wrapping save/restore locations   (modified variant)
//! 3 compute initial save/restore sets                (webs per cluster)
//! 4 traverse PST regions in topological order        (children first)
//! 5   for each callee-saved register allocated
//! 6     if cost(region boundaries) ≤ cost(contained sets)
//! 7       remove contained save/restore sets from region
//! 8       create new save/restore set at region boundaries
//! 9       propagate changes upward through hierarchy
//! ```
//!
//! The upward propagation of line 9 is realized by folding: each region's
//! surviving sets are handed to its parent, so by the time a region is
//! processed all descendants' decisions are final — exactly the paper's
//! topological-order guarantee. The final comparison at the PST root pits
//! the surviving sets against the procedure entry/exit placement.

use crate::cost::{Cost, CostModel, SpillCostModel};
use crate::entry_exit::entry_exit_placement;
use crate::location::{Placement, SpillKind, SpillLoc, SpillPoint};
use crate::modified::{modified_shrink_wrap, InitialSets};
use crate::overhead::placement_cost_with;
use crate::sets::{EdgeShares, SaveRestoreSet};
use crate::usage::CalleeSavedUsage;
use spillopt_ir::{Cfg, DenseBitSet, PReg};
use spillopt_profile::EdgeProfile;
use spillopt_pst::{Pst, RegionBoundary, RegionId};

/// One decision made while traversing the PST (for tests, examples, and
/// the harness's walkthrough output).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// The region being analyzed.
    pub region: RegionId,
    /// The callee-saved register being analyzed.
    pub reg: PReg,
    /// Number of save/restore sets contained in the region.
    pub num_contained: usize,
    /// Total cost of the contained sets under the active model.
    pub contained_cost: Cost,
    /// Cost of save/restore at the region boundaries under the active
    /// model.
    pub boundary_cost: Cost,
    /// Whether the contained sets were replaced by a boundary set.
    pub replaced: bool,
}

/// The result of the hierarchical placement.
#[derive(Clone, Debug)]
pub struct HierarchicalResult {
    /// The final placement (union of the surviving sets).
    pub placement: Placement,
    /// The surviving save/restore sets.
    pub final_sets: Vec<SaveRestoreSet>,
    /// Every region/register decision, in traversal order.
    ///
    /// The trace describes the PST traversal. On every cost model (unit
    /// pricing included) the traversal's result may afterwards be
    /// replaced wholesale by the entry/exit placement or by Chow's
    /// shrink-wrapping in the final group-wise comparison (see
    /// [`hierarchical_placement_vs`]); the trace then describes the
    /// traversal that was overridden, not the returned placement.
    pub trace: Vec<TraceEvent>,
}

/// Runs the hierarchical spill code placement algorithm.
///
/// `model` selects between the paper's two cost models; the execution
/// count model is optimal in-model, the jump edge model additionally
/// prices the jump blocks needed on critical jump edges.
pub fn hierarchical_placement(
    cfg: &Cfg,
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    model: CostModel,
) -> HierarchicalResult {
    hierarchical_placement_with(cfg, pst, usage, profile, model, &SpillCostModel::UNIT)
}

/// A set in flight through the traversal, paired with its cost under the
/// active model. The cost of a set never changes once created (shares
/// are fixed by the initial solution), so it is computed exactly once
/// instead of at every ancestor region the set bubbles through.
///
/// `Clone` because the delta-driven refold (`crate::incremental`) keeps
/// every region's folded output alive across sessions and re-feeds
/// cached copies to dirty ancestors.
#[derive(Clone, Debug)]
pub(crate) struct LiveSet {
    pub(crate) set: SaveRestoreSet,
    pub(crate) cost: Cost,
}

/// One register's candidacy at a region: its contained sets and the cost
/// of replacing them at the region boundary.
struct Candidate {
    reg: PReg,
    sets: Vec<LiveSet>,
    contained_cost: Cost,
    hoistable: bool,
    boundary: SaveRestoreSet,
    boundary_cost: Cost,
}

/// As [`hierarchical_placement`], priced with a target's
/// [`SpillCostModel`].
///
/// With [`SpillCostModel::UNIT`] (the paper's PA-RISC accounting) the
/// traversal is identical to [`hierarchical_placement`]. Other cost
/// models change two things:
///
/// * every replace-decision compares target-priced costs (cheap
///   `push`/`pop` at procedure entry/exit on x86-64, paired initial
///   locations on AArch64);
/// * on pairing targets (`pair_size > 1`) the replace-decision at a
///   region boundary prices registers **in groups**: the first register
///   hoisted to a boundary pays full instruction (and jump) cost, the
///   second rides in the same `stp`/`ldp` for free, the third opens a
///   new pair, and so on. Registers are considered in decreasing order
///   of contained cost, so the groups that free the most dynamic count
///   fill the pairs first. This is where the paper's per-register
///   independence assumption breaks — a lone register's boundary
///   placement can be unprofitable while a pair's is profitable.
///
/// Every run ends with a group-wise comparison of the surviving sets
/// against both the entry/exit baseline and Chow's shrink-wrapping under
/// the physically accurate accounting ([`placement_cost_with`]), which
/// keeps the paper's "never worse than entry/exit or shrink-wrapping"
/// guarantee by construction on every target (see
/// [`hierarchical_placement_vs`] for why the traversal alone cannot
/// promise it). This entry point computes Chow's placement itself; use
/// [`hierarchical_placement_vs`] when the caller already has it.
pub fn hierarchical_placement_with(
    cfg: &Cfg,
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    model: CostModel,
    costs: &SpillCostModel,
) -> HierarchicalResult {
    let cyclic = spillopt_ir::analysis::loops::sccs(cfg);
    let shrink_wrap = crate::chow::chow_shrink_wrap_with(cfg, &cyclic, usage);
    hierarchical_placement_vs(cfg, pst, usage, profile, model, costs, &shrink_wrap)
}

/// As [`hierarchical_placement_with`], with Chow's shrink-wrapping
/// placement supplied by the caller (the suite computes it anyway).
///
/// The final group-wise comparison exists because the traversal alone
/// guarantees neither of the paper's "never worse" claims:
///
/// * its replace decisions price *initial* sets with jump (and pair)
///   costs shared among the registers of the initial solution — an
///   approximation that diverges from the physically accurate accounting
///   once some of the sharers are hoisted away;
/// * its initial sets come from the **modified** shrink-wrapping, which
///   can cost more than Chow's original (hoisting a shared late restore
///   to per-path edges trades one location for several), and region
///   boundaries offer no way back to the cheaper shape.
///
/// Comparing the traversal's result against both baselines under
/// [`placement_cost_with`] and returning the cheapest closes both gaps
/// on every cost model, unit pricing included; ties keep the paper's
/// traversal result untouched.
pub fn hierarchical_placement_vs(
    cfg: &Cfg,
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    model: CostModel,
    costs: &SpillCostModel,
    shrink_wrap: &Placement,
) -> HierarchicalResult {
    // Lines 2-3: initial sets from the modified shrink-wrapping, with the
    // jump-cost sharing the paper prescribes for them.
    let initial = modified_shrink_wrap(cfg, usage);
    hierarchical_placement_seeded(cfg, pst, usage, profile, model, costs, shrink_wrap, initial)
}

/// As [`hierarchical_placement_vs`], with the initial sets supplied by
/// the caller. The suite runs the traversal once per cost model against
/// the *same* initial solution; computing it once and handing it to both
/// runs halves the shrink-wrapping work without changing any decision.
///
/// The traversal's bookkeeping is dense: the PST's preorder arena
/// numbering indexes per-region set lists directly (no hash-keyed
/// folding), every set's cost under the active model is computed once
/// when the set is created (shares are fixed by the initial solution, so
/// set costs never change as sets bubble up the tree), and the busy
/// intersection reuses one scratch bitset across all regions.
// The paper's parameter list, plus the two baselines the final
// comparison needs; a struct would only relocate the argument list.
#[allow(clippy::too_many_arguments)]
pub fn hierarchical_placement_seeded(
    cfg: &Cfg,
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    model: CostModel,
    costs: &SpillCostModel,
    shrink_wrap: &Placement,
    initial: InitialSets,
) -> HierarchicalResult {
    let shares = EdgeShares::from_sets(&initial.sets);
    let ctx = FoldCtx {
        cfg,
        pst,
        usage,
        profile,
        model,
        costs,
        shares: &shares,
        busy_counts: None,
    };

    // Assign each set to its home region: the innermost region containing
    // the whole cluster and every location. Dense, indexed by the PST's
    // preorder region numbering.
    let mut home_sets = home_live_sets(&ctx, initial);

    let mut trace = Vec::new();
    // Folded sets flowing up the tree, indexed by region.
    let mut folded: Vec<Vec<LiveSet>> = (0..pst.num_regions()).map(|_| Vec::new()).collect();
    let mut busy_inside = DenseBitSet::new(cfg.num_blocks());

    // Line 4: topological-order (children-first) traversal.
    for &r in pst.postorder() {
        let region = pst.region(r);
        let mut live: Vec<LiveSet> = Vec::new();
        for &c in &region.children {
            live.append(&mut folded[c.index()]);
        }
        live.append(&mut home_sets[r.index()]);
        folded[r.index()] = fold_region(&ctx, r, live, &mut busy_inside, &mut trace);
    }

    let root_sets = std::mem::take(&mut folded[pst.root().index()]);
    let (placement, final_sets) = finalize_root(&ctx, shrink_wrap, root_sets);

    HierarchicalResult {
        placement,
        final_sets,
        trace,
    }
}

/// Everything one region fold (and the root finalize) reads: the shared
/// analyses, the active cost model, and the edge shares fixed by the
/// initial solution. Bundled so the cold traversal above and the
/// delta-driven incremental refold ([`crate::incremental`]) run the
/// exact same decision code — the cold path stays the differential
/// oracle for the warm one.
pub(crate) struct FoldCtx<'a> {
    pub(crate) cfg: &'a Cfg,
    pub(crate) pst: &'a Pst,
    pub(crate) usage: &'a CalleeSavedUsage,
    pub(crate) profile: &'a EdgeProfile,
    pub(crate) model: CostModel,
    pub(crate) costs: &'a SpillCostModel,
    pub(crate) shares: &'a EdgeShares,
    /// Memoized per-(region, register) busy intersections
    /// ([`crate::solver::RegionBusyCounts`], profile-independent). The
    /// cold oracle passes `None` and recomputes the intersection in the
    /// scratch bitset each time; the session memo passes its cached
    /// product.
    pub(crate) busy_counts: Option<&'a crate::solver::RegionBusyCounts>,
}

/// Lines 2-3 bookkeeping: prices every initial set under the active model
/// and files it at its home region (the innermost region containing the
/// whole cluster and every location). Dense, indexed by the PST's
/// preorder region numbering.
pub(crate) fn home_live_sets(ctx: &FoldCtx<'_>, initial: InitialSets) -> Vec<Vec<LiveSet>> {
    let mut home_sets: Vec<Vec<LiveSet>> = (0..ctx.pst.num_regions()).map(|_| Vec::new()).collect();
    for set in initial.sets {
        let home = home_region(ctx.cfg, ctx.pst, &set);
        let cost = set.cost_with(ctx.model, ctx.costs, ctx.cfg, ctx.profile, ctx.shares);
        home_sets[home.index()].push(LiveSet { set, cost });
    }
    home_sets
}

/// Lines 5-8 for one region: partitions the live sets per register,
/// prices each register's boundary hoist, and folds the surviving sets.
/// `live` must hold the children's folded outputs (in child order)
/// followed by the region's own home sets; the returned vector is what
/// the parent region sees.
pub(crate) fn fold_region(
    ctx: &FoldCtx<'_>,
    r: RegionId,
    mut live: Vec<LiveSet>,
    busy_inside: &mut DenseBitSet,
    trace: &mut Vec<TraceEvent>,
) -> Vec<LiveSet> {
    let region = ctx.pst.region(r);

    // Line 5: per callee-saved register.
    let mut regs: Vec<PReg> = live.iter().map(|s| s.set.reg).collect();
    regs.sort();
    regs.dedup();

    let mut candidates: Vec<Candidate> = Vec::new();
    for reg in regs {
        let (mine, rest): (Vec<_>, Vec<_>) = live.drain(..).partition(|s| s.set.reg == reg);
        live = rest;

        // Hoisting to this region's boundary is only valid if every
        // busy block of `reg` inside the region belongs to the
        // contained sets (otherwise another web of the same register
        // crosses the boundary).
        let busy_in_region = match ctx.busy_counts.and_then(|bc| bc.count(r, reg)) {
            Some(count) => count,
            None => {
                let busy = ctx.usage.busy(reg).expect("set exists for used register");
                busy_inside.set_to_intersection(busy, &region.blocks);
                busy_inside.count()
            }
        };
        let contained_blocks: usize = mine.iter().map(|s| s.set.cluster.count()).sum();
        let hoistable = contained_blocks == busy_in_region;

        let contained_cost: Cost = mine.iter().map(|s| s.cost).sum();
        let boundary = boundary_set(ctx.cfg, ctx.pst, r, reg);
        let boundary_cost =
            boundary.cost_with(ctx.model, ctx.costs, ctx.cfg, ctx.profile, ctx.shares);

        candidates.push(Candidate {
            reg,
            sets: mine,
            contained_cost,
            hoistable,
            boundary,
            boundary_cost,
        });
    }

    let decisions = if ctx.costs.pair_size > 1 {
        decide_paired(ctx.model, ctx.costs, ctx.cfg, ctx.profile, &candidates)
    } else {
        // Line 6: the paper's per-register "less than or equal" rule.
        candidates
            .iter()
            .map(|c| {
                (
                    c.hoistable && c.boundary_cost <= c.contained_cost,
                    c.boundary_cost,
                )
            })
            .collect()
    };

    let mut surviving: Vec<LiveSet> = Vec::new();
    for (c, (replaced, charged)) in candidates.into_iter().zip(decisions) {
        trace.push(TraceEvent {
            region: r,
            reg: c.reg,
            num_contained: c.sets.len(),
            contained_cost: c.contained_cost,
            boundary_cost: charged,
            replaced,
        });
        if replaced {
            // Lines 7-8. The new set's cost is the full boundary
            // cost (ancestors see the set, not the marginal the
            // group decision charged it).
            let mut cluster = DenseBitSet::new(ctx.cfg.num_blocks());
            for s in &c.sets {
                cluster.union_with(&s.set.cluster);
            }
            surviving.push(LiveSet {
                set: SaveRestoreSet {
                    cluster,
                    ..c.boundary
                },
                cost: c.boundary_cost,
            });
        } else {
            surviving.extend(c.sets);
        }
    }
    surviving
}

/// The final group-wise comparison against both baselines (see the doc
/// comment of [`hierarchical_placement_vs`]): shared-cost pricing of
/// initial sets and the modified-vs-Chow gap mean the traversal alone
/// can end costlier than entry/exit or shrink-wrapping; return the
/// cheapest of the three under the physically accurate accounting.
/// Ties keep the traversal's (the paper's) result, so the worked
/// examples are untouched. When the override fires, the caller's `trace`
/// keeps describing the overridden traversal (documented on
/// [`HierarchicalResult::trace`]).
pub(crate) fn finalize_root(
    ctx: &FoldCtx<'_>,
    shrink_wrap: &Placement,
    root_sets: Vec<LiveSet>,
) -> (Placement, Vec<SaveRestoreSet>) {
    let (cfg, usage, profile) = (ctx.cfg, ctx.usage, ctx.profile);
    let mut final_sets: Vec<SaveRestoreSet> = root_sets.into_iter().map(|l| l.set).collect();
    let mut placement = Placement::from_points(
        final_sets
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect(),
    );

    if !placement.points().is_empty() {
        let ours = placement_cost_with(ctx.model, ctx.costs, cfg, profile, &placement);
        let entry_exit = entry_exit_placement(cfg, usage);
        let ee_cost = placement_cost_with(ctx.model, ctx.costs, cfg, profile, &entry_exit);
        let sw_cost = placement_cost_with(ctx.model, ctx.costs, cfg, profile, shrink_wrap);
        if ee_cost.min(sw_cost) < ours {
            let winner = if ee_cost <= sw_cost {
                entry_exit
            } else {
                shrink_wrap.clone()
            };
            final_sets = winner
                .regs()
                .into_iter()
                .map(|reg| {
                    let mut cluster = DenseBitSet::new(cfg.num_blocks());
                    if let Some(busy) = usage.busy(reg) {
                        cluster.union_with(busy);
                    }
                    SaveRestoreSet {
                        reg,
                        points: winner.points_for(reg).copied().collect(),
                        cluster,
                        initial: false,
                    }
                })
                .collect();
            placement = winner;
        }
    }

    (placement, final_sets)
}

/// The pairing-aware group decision at one region boundary.
///
/// Hoistable candidates are taken in decreasing order of contained cost.
/// The boundary's save/restore instructions are shared `pair_size`-wide:
/// a candidate opening a new paired instruction is charged the full
/// boundary instruction cost (plus, for the first, the jump-block cost),
/// while candidates filling a previously opened pair ride for free. A
/// new pair is opened only when the next `pair_size` candidates together
/// free at least the instruction cost — by the descending sort, once a
/// group fails every later group fails too.
///
/// Returns, per candidate (in input order), whether it was replaced and
/// the marginal boundary cost it was charged.
fn decide_paired(
    model: CostModel,
    costs: &SpillCostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    candidates: &[Candidate],
) -> Vec<(bool, Cost)> {
    let pair = costs.pair_size.max(1) as usize;

    // All candidates share the same boundary locations, so the
    // instruction-only and jump-only components are common.
    let (insn_only, jump_extra) = match candidates.iter().find(|c| c.hoistable) {
        Some(c) => {
            let insn_only = c.boundary.cost_with(
                CostModel::ExecutionCount,
                costs,
                cfg,
                profile,
                &EdgeShares::none(),
            );
            let jump_extra: Cost = if model == CostModel::JumpEdge {
                c.boundary
                    .points
                    .iter()
                    .filter_map(|p| match p.loc {
                        SpillLoc::OnEdge(e) if cfg.needs_jump_block(e) => {
                            Some(costs.jump.of(profile.edge_count(e), 1))
                        }
                        _ => None,
                    })
                    .sum()
            } else {
                Cost::ZERO
            };
            (insn_only, jump_extra)
        }
        None => (Cost::ZERO, Cost::ZERO),
    };

    // Order of consideration: hoistable, most expensive contained first;
    // ties by register number for determinism.
    let mut order: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].hoistable)
        .collect();
    order.sort_by(|&a, &b| {
        candidates[b]
            .contained_cost
            .cmp(&candidates[a].contained_cost)
            .then(candidates[a].reg.cmp(&candidates[b].reg))
    });

    let mut decisions: Vec<(bool, Cost)> = candidates
        .iter()
        .map(|c| (false, c.boundary_cost))
        .collect();
    let mut placed = 0usize;
    let mut i = 0;
    while i < order.len() {
        // Groups are taken whole (free riders included below), so the
        // pairing parity is always clean here: a partial final group
        // exhausts `order` and ends the loop.
        debug_assert!(placed.is_multiple_of(pair));
        let marginal = if placed == 0 {
            insn_only + jump_extra
        } else {
            insn_only
        };
        let group = pair.min(order.len() - i);
        let freed: Cost = order[i..i + group]
            .iter()
            .map(|&j| candidates[j].contained_cost)
            .sum();
        if marginal <= freed {
            decisions[order[i]] = (true, marginal);
            for &j in &order[i + 1..i + group] {
                decisions[j] = (true, Cost::ZERO);
            }
            placed += group;
            i += group;
        } else {
            break;
        }
    }
    decisions
}

/// The innermost region containing every location and every cluster block
/// of a set.
pub(crate) fn home_region(cfg: &Cfg, pst: &Pst, set: &SaveRestoreSet) -> RegionId {
    let mut home: Option<RegionId> = None;
    let fold = |r: RegionId, home: &mut Option<RegionId>| {
        *home = Some(match home {
            None => r,
            Some(h) => pst.lca(*h, r),
        });
    };
    for b in set.cluster.iter() {
        fold(
            pst.innermost_region_of_block(spillopt_ir::BlockId::from_index(b)),
            &mut home,
        );
    }
    for p in &set.points {
        let r = match p.loc {
            SpillLoc::BlockTop(b) | SpillLoc::BlockBottom(b) => pst.innermost_region_of_block(b),
            SpillLoc::OnEdge(e) => pst.innermost_region_of_edge(cfg, e),
        };
        fold(r, &mut home);
    }
    home.unwrap_or_else(|| pst.root())
}

/// Builds the save/restore set at a region's boundaries for one register
/// (line 8). For the root region this is the procedure entry/exit
/// placement.
pub(crate) fn boundary_set(cfg: &Cfg, pst: &Pst, r: RegionId, reg: PReg) -> SaveRestoreSet {
    let region = pst.region(r);
    let mut points = Vec::new();
    match region.entry {
        RegionBoundary::ProcEntry => points.push(SpillPoint {
            reg,
            kind: SpillKind::Save,
            loc: SpillLoc::BlockTop(cfg.entry()),
        }),
        RegionBoundary::CfgEdge(e) => points.push(SpillPoint {
            reg,
            kind: SpillKind::Save,
            loc: SpillLoc::OnEdge(e),
        }),
        RegionBoundary::ReturnEdge(_) | RegionBoundary::ProcExits => {
            unreachable!("region entry cannot be an exit boundary")
        }
    }
    match region.exit {
        RegionBoundary::ProcExits => {
            for &x in cfg.exit_blocks() {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Restore,
                    loc: SpillLoc::BlockBottom(x),
                });
            }
        }
        RegionBoundary::CfgEdge(e) => points.push(SpillPoint {
            reg,
            kind: SpillKind::Restore,
            loc: SpillLoc::OnEdge(e),
        }),
        RegionBoundary::ReturnEdge(b) => points.push(SpillPoint {
            reg,
            kind: SpillKind::Restore,
            loc: SpillLoc::BlockBottom(b),
        }),
        RegionBoundary::ProcEntry => unreachable!("region exit cannot be the entry boundary"),
    }
    SaveRestoreSet {
        reg,
        points,
        cluster: DenseBitSet::new(cfg.num_blocks()),
        initial: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::location_cost;
    use crate::entry_exit::entry_exit_placement;
    use crate::validate::check_placement;
    use spillopt_ir::{BlockId, Cond, FunctionBuilder, Reg};
    use spillopt_profile::random_walk_profile;

    /// Busy block inside a loop: the hierarchical algorithm must hoist
    /// save/restore out of the loop when profitable.
    #[test]
    fn hoists_out_of_hot_loop() {
        // entry -> header; header -> {body(busy), exit}; body -> header.
        let mut fb = FunctionBuilder::new("l", 0);
        let entry = fb.create_block(None);
        let header = fb.create_block(None);
        let body = fb.create_block(None);
        let exit = fb.create_block(None);
        fb.switch_to(entry);
        let x = fb.li(0);
        fb.jump(header);
        fb.switch_to(header);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), exit, body);
        fb.switch_to(body);
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);

        // Hot loop: 100 entries, 1000 iterations.
        let mut counts = vec![0u64; cfg.num_edges()];
        counts[cfg.edge_between(entry, header).unwrap().index()] = 100;
        counts[cfg.edge_between(header, body).unwrap().index()] = 1000;
        counts[cfg.edge_between(body, header).unwrap().index()] = 1000;
        counts[cfg.edge_between(header, exit).unwrap().index()] = 100;
        let profile = spillopt_profile::EdgeProfile::new(&cfg, counts, 100);

        let mut usage = CalleeSavedUsage::new();
        let r = spillopt_ir::PReg::new(11);
        usage.set_busy(r, body, 4);

        let res = hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::ExecutionCount);
        assert!(check_placement(&cfg, &usage, &res.placement).is_empty());
        // The placement must not touch the loop body edges (cost 1000);
        // its cost must equal the loop-boundary cost of 200.
        let cost: Cost = res
            .placement
            .points()
            .iter()
            .map(|p| location_cost(CostModel::ExecutionCount, &cfg, &profile, p.loc, 1))
            .sum();
        assert_eq!(cost, Cost::from_count(200));
    }

    /// The guarantee of the paper: never worse than entry/exit and never
    /// worse than the initial (modified shrink-wrap) sets, under the
    /// execution count model.
    #[test]
    fn never_worse_than_baselines_on_random_profiles() {
        for seed in 0..10u64 {
            // Diamond with busy arm + loop after it.
            let mut fb = FunctionBuilder::new("g", 0);
            let a = fb.create_block(None);
            let b = fb.create_block(None);
            let c = fb.create_block(None);
            let d = fb.create_block(None);
            let e = fb.create_block(None);
            fb.switch_to(a);
            let x = fb.li(0);
            fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
            fb.switch_to(b);
            fb.jump(d);
            fb.switch_to(c);
            fb.jump(d);
            fb.switch_to(d);
            fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), a, e);
            fb.switch_to(e);
            fb.ret(None);
            let f = fb.finish();
            let cfg = Cfg::compute(&f);
            let pst = Pst::compute(&cfg);
            let profile = random_walk_profile(&cfg, 200, 64, seed);

            let mut usage = CalleeSavedUsage::new();
            let r = spillopt_ir::PReg::new(11);
            usage.set_busy(r, b, 5);

            let res =
                hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::ExecutionCount);
            assert!(check_placement(&cfg, &usage, &res.placement).is_empty());

            let eval = |p: &Placement| -> Cost {
                p.points()
                    .iter()
                    .map(|pt| location_cost(CostModel::ExecutionCount, &cfg, &profile, pt.loc, 1))
                    .sum()
            };
            let hier = eval(&res.placement);
            let baseline = eval(&entry_exit_placement(&cfg, &usage));
            let initial = eval(&modified_shrink_wrap(&cfg, &usage).placement());
            assert!(
                hier <= baseline,
                "seed {seed}: {hier:?} > baseline {baseline:?}"
            );
            assert!(
                hier <= initial,
                "seed {seed}: {hier:?} > initial {initial:?}"
            );
        }
    }

    /// With everything cold except the entry, the tight initial sets win
    /// and survive.
    #[test]
    fn keeps_tight_sets_when_cold() {
        let mut fb = FunctionBuilder::new("c", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        // b is cold: 1 of 100 executions.
        let mut counts = vec![0u64; cfg.num_edges()];
        counts[cfg.edge_between(a, b).unwrap().index()] = 1;
        counts[cfg.edge_between(a, c).unwrap().index()] = 99;
        counts[cfg.edge_between(b, d).unwrap().index()] = 1;
        counts[cfg.edge_between(c, d).unwrap().index()] = 99;
        let profile = spillopt_profile::EdgeProfile::new(&cfg, counts, 100);
        let mut usage = CalleeSavedUsage::new();
        let r = spillopt_ir::PReg::new(11);
        usage.set_busy(r, b, 4);
        let res = hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::ExecutionCount);
        // Save on a->b, restore on b->d: cost 2, beats entry/exit's 200.
        let cost: Cost = res
            .placement
            .points()
            .iter()
            .map(|p| location_cost(CostModel::ExecutionCount, &cfg, &profile, p.loc, 1))
            .sum();
        assert_eq!(cost, Cost::from_count(2));
        assert_eq!(res.final_sets.len(), 1);
        assert!(res.final_sets[0].initial);
        let _ = BlockId::from_index(0);
    }

    /// Pairing breaks per-register independence: two registers whose
    /// boundary hoists are individually unprofitable (200 > 160 each)
    /// hoist together on a pairing target, because one `stp`/`ldp` pair
    /// at the procedure boundary covers both (200 <= 160 + 160). Unit
    /// costs keep both registers' tight sets.
    #[test]
    fn pairing_hoists_registers_in_groups() {
        // Two diamonds in series: a -> {b, c} -> d -> {e, f} -> g.
        let mut fb = FunctionBuilder::new("p", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        let e = fb.create_block(None);
        let f = fb.create_block(None);
        let g = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), f, e);
        fb.switch_to(e);
        fb.jump(g);
        fb.switch_to(f);
        fb.jump(g);
        fb.switch_to(g);
        fb.ret(None);
        let func = fb.finish();
        let cfg = Cfg::compute(&func);
        let pst = Pst::compute(&cfg);

        // Hot arms: 80 of 100 runs take b and e.
        let mut counts = vec![0u64; cfg.num_edges()];
        let set = |counts: &mut Vec<u64>, from, to, n| {
            counts[cfg.edge_between(from, to).unwrap().index()] = n;
        };
        set(&mut counts, a, b, 80);
        set(&mut counts, a, c, 20);
        set(&mut counts, b, d, 80);
        set(&mut counts, c, d, 20);
        set(&mut counts, d, e, 80);
        set(&mut counts, d, f, 20);
        set(&mut counts, e, g, 80);
        set(&mut counts, f, g, 20);
        let profile = spillopt_profile::EdgeProfile::new(&cfg, counts, 100);

        // One register busy in each hot arm.
        let mut usage = CalleeSavedUsage::new();
        let r1 = spillopt_ir::PReg::new(16);
        let r2 = spillopt_ir::PReg::new(17);
        usage.set_busy(r1, b, cfg.num_blocks());
        usage.set_busy(r2, e, cfg.num_blocks());

        let eval = |costs: &SpillCostModel, res: &HierarchicalResult| {
            placement_cost_with(CostModel::JumpEdge, costs, &cfg, &profile, &res.placement)
        };

        // Unit costs: each register keeps its tight sets (160 < 200).
        let unit = hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::JumpEdge);
        assert!(check_placement(&cfg, &usage, &unit.placement).is_empty());
        assert_eq!(eval(&SpillCostModel::UNIT, &unit), Cost::from_count(320));
        assert!(unit
            .placement
            .points()
            .iter()
            .all(|p| matches!(p.loc, SpillLoc::OnEdge(_))));

        // Pairing (stp/ldp): the pair hoists to entry/exit together —
        // one paired save (100) plus one paired restore (100) beats the
        // 320 the scattered singles cost.
        let paired = SpillCostModel {
            pair_size: 2,
            ..SpillCostModel::UNIT
        };
        let res =
            hierarchical_placement_with(&cfg, &pst, &usage, &profile, CostModel::JumpEdge, &paired);
        assert!(check_placement(&cfg, &usage, &res.placement).is_empty());
        assert_eq!(eval(&paired, &res), Cost::from_count(200));
        for p in res.placement.points() {
            match (p.kind, p.loc) {
                (SpillKind::Save, SpillLoc::BlockTop(blk)) => assert_eq!(blk, a),
                (SpillKind::Restore, SpillLoc::BlockBottom(blk)) => assert_eq!(blk, g),
                other => panic!("expected entry/exit placement, got {other:?}"),
            }
        }
        // The root trace records the group decision: the first member
        // pays the paired instruction cost, the second rides free.
        let root_events: Vec<_> = res.trace.iter().filter(|t| t.replaced).collect();
        assert!(root_events.iter().any(|t| t.boundary_cost == Cost::ZERO));
    }
}
