//! The paper's *modified shrink-wrapping*: the initial save/restore sets.
//!
//! Two modifications distinguish it from Chow's original technique
//! (paper, Section 4): no artificial data flow is propagated over loop
//! bodies, and spill code may be placed on jump edges. The result is the
//! tightest valid placement — saves and restores immediately around each
//! connected busy cluster — which seeds the hierarchical algorithm.

use crate::dataflow::{busy_clusters, region_boundary};
use crate::location::{Placement, SpillKind, SpillLoc, SpillPoint};
use crate::sets::SaveRestoreSet;
use crate::usage::CalleeSavedUsage;
use spillopt_ir::{Cfg, DerivedCfg};

/// The initial sets plus their union as a [`Placement`].
#[derive(Clone, Debug)]
pub struct InitialSets {
    /// One set per (register, connected busy cluster).
    pub sets: Vec<SaveRestoreSet>,
}

impl InitialSets {
    /// The union of all sets as a placement.
    pub fn placement(&self) -> Placement {
        Placement::from_points(
            self.sets
                .iter()
                .flat_map(|s| s.points.iter().copied())
                .collect(),
        )
    }
}

/// Computes the paper's initial save/restore sets: for each callee-saved
/// register and each connected cluster of its busy blocks, a save on every
/// edge entering the cluster (or at procedure entry) and a restore on
/// every edge leaving it (or before contained returns).
///
/// All registers' clusters are wrapped in one edge sweep over busy
/// membership words ([`crate::solver::initial_sets_all`]) instead of one
/// boundary sweep per cluster; the sets are identical to the retired
/// path ([`crate::reference::modified_shrink_wrap_reference`]), which
/// also serves as the over-64-registers fallback.
pub fn modified_shrink_wrap(cfg: &Cfg, usage: &CalleeSavedUsage) -> InitialSets {
    let derived = DerivedCfg::compute(cfg);
    modified_shrink_wrap_derived(cfg, &derived, usage)
}

/// As [`modified_shrink_wrap`], with the caller's cached [`DerivedCfg`].
pub fn modified_shrink_wrap_derived(
    cfg: &Cfg,
    derived: &DerivedCfg,
    usage: &CalleeSavedUsage,
) -> InitialSets {
    match crate::solver::initial_sets_all(cfg, derived, usage) {
        Some(sets) => InitialSets { sets },
        None => crate::reference::modified_shrink_wrap_reference(cfg, usage),
    }
}

/// Variant used by the ablation study: initial sets grown by the
/// anticipation/availability hoisting closure (as Chow's dataflow would
/// hoist them) but still without loop or jump-edge artificial flow.
pub fn modified_shrink_wrap_hoisted(cfg: &Cfg, usage: &CalleeSavedUsage) -> InitialSets {
    let mut sets = Vec::new();
    for (reg, busy) in usage.regs() {
        let hoisted =
            crate::dataflow::avail_closure(cfg, &crate::dataflow::antic_closure(cfg, busy));
        for cluster in busy_clusters(cfg, &hoisted) {
            let b = region_boundary(cfg, &cluster);
            let mut points = Vec::new();
            if b.save_at_entry {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Save,
                    loc: SpillLoc::BlockTop(cfg.entry()),
                });
            }
            for e in b.save_edges {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Save,
                    loc: SpillLoc::OnEdge(e),
                });
            }
            for e in b.restore_edges {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Restore,
                    loc: SpillLoc::OnEdge(e),
                });
            }
            for x in b.restore_at_exits {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Restore,
                    loc: SpillLoc::BlockBottom(x),
                });
            }
            sets.push(SaveRestoreSet {
                reg,
                points,
                cluster,
                initial: true,
            });
        }
    }
    InitialSets { sets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, PReg, Reg};

    #[test]
    fn wraps_single_busy_block() {
        // A -> {B busy, C} -> D.
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        let init = modified_shrink_wrap(&cfg, &usage);
        assert_eq!(init.sets.len(), 1);
        let set = &init.sets[0];
        assert_eq!(set.saves().count(), 1);
        assert_eq!(set.restores().count(), 1);
        assert!(set.initial);
        assert_eq!(
            set.saves().next().unwrap().loc,
            SpillLoc::OnEdge(cfg.edge_between(a, b).unwrap())
        );
        assert_eq!(
            set.restores().next().unwrap().loc,
            SpillLoc::OnEdge(cfg.edge_between(b, d).unwrap())
        );
    }

    #[test]
    fn disjoint_clusters_make_separate_sets() {
        // A(busy) -> B -> C(busy) -> ret; one register, two clusters.
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(c);
        fb.switch_to(c);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), a, 3);
        usage.set_busy(PReg::new(11), c, 3);
        let init = modified_shrink_wrap(&cfg, &usage);
        assert_eq!(init.sets.len(), 2);
        // The A cluster saves at entry; the C cluster restores at exit.
        let entry_cluster = init
            .sets
            .iter()
            .find(|s| s.cluster.contains(a.index()))
            .unwrap();
        assert!(entry_cluster
            .saves()
            .any(|p| p.loc == SpillLoc::BlockTop(a)));
        let exit_cluster = init
            .sets
            .iter()
            .find(|s| s.cluster.contains(c.index()))
            .unwrap();
        assert!(exit_cluster
            .restores()
            .any(|p| p.loc == SpillLoc::BlockBottom(c)));
    }

    #[test]
    fn hoisted_variant_merges_gap() {
        // A -> B(busy) -> C -> D(busy) -> E.
        let mut fb = FunctionBuilder::new("f", 0);
        let blocks: Vec<_> = (0..5).map(|_| fb.create_block(None)).collect();
        for i in 0..4 {
            fb.switch_to(blocks[i]);
            fb.jump(blocks[i + 1]);
        }
        fb.switch_to(blocks[4]);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), blocks[1], 5);
        usage.set_busy(PReg::new(11), blocks[3], 5);
        let plain = modified_shrink_wrap(&cfg, &usage);
        assert_eq!(plain.sets.len(), 2);
        let hoisted = modified_shrink_wrap_hoisted(&cfg, &usage);
        assert_eq!(hoisted.sets.len(), 1);
    }
}
