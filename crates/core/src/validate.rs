//! Static validity checking of save/restore placements.
//!
//! A placement is valid when, for every callee-saved register:
//!
//! * every *busy* block is executed in **saved** state (the original value
//!   is in memory, the register is free for the allocator);
//! * a save executes only in **original** state (saving twice would store
//!   an allocated variable over the saved original value);
//! * a restore executes only in saved state and never while the register
//!   is still busy;
//! * control-flow merges agree on the state;
//! * the register is in original state at every return (the register-
//!   usage convention).
//!
//! The checker is an abstract interpretation over block granularity with
//! the same point structure the placements use: block top → busy body →
//! block bottom → outgoing edge. Points at the *entry block's top* mean
//! "at the procedure entry, once per call" (the insertion pass realizes
//! them above any loop back to the entry block), so they execute on the
//! entry transition only, not on back edges into the entry block.

use crate::location::{Placement, SpillKind, SpillLoc, SpillPoint};
use crate::usage::CalleeSavedUsage;
use spillopt_ir::{BlockId, Cfg, DenseBitSet, PReg};
use std::fmt;

/// A validity violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// A save would execute in saved state (double save).
    DoubleSave {
        /// Offending point.
        point: SpillPoint,
    },
    /// A restore would execute in original state (no matching save).
    RestoreWithoutSave {
        /// Offending point.
        point: SpillPoint,
    },
    /// A busy block can execute with the register not saved.
    BusyNotSaved {
        /// The register.
        reg: PReg,
        /// The busy block reached in original state.
        block: BlockId,
    },
    /// A merge point joins saved and original states.
    InconsistentMerge {
        /// The register.
        reg: PReg,
        /// The block whose entry state conflicts.
        block: BlockId,
    },
    /// A return can execute in saved state (value never restored).
    NotRestoredAtExit {
        /// The register.
        reg: PReg,
        /// The return block.
        block: BlockId,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::DoubleSave { point } => write!(f, "double save at {point}"),
            PlacementError::RestoreWithoutSave { point } => {
                write!(f, "restore without save at {point}")
            }
            PlacementError::BusyNotSaved { reg, block } => {
                write!(f, "{reg} busy in {block} but not saved")
            }
            PlacementError::InconsistentMerge { reg, block } => {
                write!(f, "inconsistent save state for {reg} at {block}")
            }
            PlacementError::NotRestoredAtExit { reg, block } => {
                write!(f, "{reg} not restored at exit {block}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Abstract save-state of one register at one program point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Unknown,
    Original,
    Saved,
    Conflict,
}

impl State {
    fn merge(self, other: State) -> State {
        use State::*;
        match (self, other) {
            (Unknown, x) | (x, Unknown) => x,
            (Conflict, _) | (_, Conflict) => Conflict,
            (a, b) if a == b => a,
            _ => Conflict,
        }
    }
}

/// Checks `placement` against `usage`. Returns all violations (empty =
/// valid).
pub fn check_placement(
    cfg: &Cfg,
    usage: &CalleeSavedUsage,
    placement: &Placement,
) -> Vec<PlacementError> {
    let mut errors = Vec::new();
    for (reg, busy) in usage.regs() {
        check_one(cfg, reg, busy, placement, &mut errors);
    }
    // Registers with points but no usage entry still need consistency.
    let empty = DenseBitSet::new(cfg.num_blocks());
    for reg in placement.regs() {
        if usage.busy(reg).is_none() {
            check_one(cfg, reg, &empty, placement, &mut errors);
        }
    }
    errors
}

fn check_one(
    cfg: &Cfg,
    reg: PReg,
    busy: &DenseBitSet,
    placement: &Placement,
    errors: &mut Vec<PlacementError>,
) {
    let n = cfg.num_blocks();
    // Collect the register's points per location.
    let mut top: Vec<Vec<&SpillPoint>> = vec![Vec::new(); n];
    let mut bottom: Vec<Vec<&SpillPoint>> = vec![Vec::new(); n];
    let mut on_edge: Vec<Vec<&SpillPoint>> = vec![Vec::new(); cfg.num_edges()];
    for p in placement.points_for(reg) {
        match p.loc {
            SpillLoc::BlockTop(b) => top[b.index()].push(p),
            SpillLoc::BlockBottom(b) => bottom[b.index()].push(p),
            SpillLoc::OnEdge(e) => on_edge[e.index()].push(p),
        }
    }

    let apply = |mut state: State, points: &[&SpillPoint], errors: &mut Vec<PlacementError>| {
        for p in points {
            match p.kind {
                SpillKind::Save => {
                    if state == State::Saved {
                        errors.push(PlacementError::DoubleSave { point: **p });
                    }
                    state = State::Saved;
                }
                SpillKind::Restore => {
                    if state == State::Original || state == State::Unknown {
                        errors.push(PlacementError::RestoreWithoutSave { point: **p });
                    }
                    // A restore at the bottom of a busy block is legal —
                    // the busy body precedes it (the paper's "restore
                    // after E"). A busy range *continuing* past a restore
                    // surfaces as BusyNotSaved at the successor.
                    state = State::Original;
                }
            }
        }
        state
    };

    // Iterate to fixpoint over block-entry states.
    //
    // `BlockTop(entry)` points execute on the procedure-entry transition
    // only — their physical realization lives above any loop back to the
    // entry block — so they are applied once here, to seed the entry
    // block's in-state, and skipped when the entry block is (re)processed
    // below. Back edges into the entry block merge into the post-top
    // state, exactly as they reach the split entry physically.
    let mut state_in = vec![State::Unknown; n];
    {
        let mut sink = Vec::new();
        let s0 = apply(State::Original, &top[cfg.entry().index()], &mut sink);
        for e in sink {
            if !errors.contains(&e) {
                errors.push(e);
            }
        }
        state_in[cfg.entry().index()] = s0;
    }
    let mut changed = true;
    let mut reported_merge = DenseBitSet::new(n);
    let mut iterations = 0usize;
    while changed {
        changed = false;
        iterations += 1;
        if iterations > 4 * n + 8 {
            break; // conflicts oscillate at most once; safety net
        }
        for bi in 0..n {
            let b = BlockId::from_index(bi);
            let entry_state = state_in[bi];
            if entry_state == State::Unknown {
                continue;
            }
            let mut sink = Vec::new();
            let tops: &[&SpillPoint] = if b == cfg.entry() { &[] } else { &top[bi] };
            let mut s = apply(entry_state, tops, &mut sink);
            // Busy body: must be in saved state.
            if busy.contains(bi) && s != State::Saved {
                sink.push(PlacementError::BusyNotSaved { reg, block: b });
            }
            s = apply(s, &bottom[bi], &mut sink);
            // Returns must be in original state.
            if cfg.exit_blocks().contains(&b) && s == State::Saved {
                sink.push(PlacementError::NotRestoredAtExit { reg, block: b });
            }
            // Record errors only once per fixpoint (first time states are
            // final); easiest: collect on every pass into a set.
            for e in sink {
                if !errors.contains(&e) {
                    errors.push(e);
                }
            }
            for &eid in cfg.succ_edges(b) {
                let mut sink = Vec::new();
                let to = cfg.edge(eid).to;
                let after = apply(s, &on_edge[eid.index()], &mut sink);
                for e in sink {
                    if !errors.contains(&e) {
                        errors.push(e);
                    }
                }
                let merged = state_in[to.index()].merge(after);
                if merged != state_in[to.index()] {
                    state_in[to.index()] = merged;
                    changed = true;
                }
                if merged == State::Conflict && reported_merge.insert(to.index()) {
                    errors.push(PlacementError::InconsistentMerge { reg, block: to });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry_exit::entry_exit_placement;
    use crate::location::Placement;
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    fn diamond() -> (spillopt_ir::Function, [BlockId; 4]) {
        let mut fb = FunctionBuilder::new("d", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        (fb.finish(), [a, b, c, d])
    }

    #[test]
    fn entry_exit_is_always_valid() {
        let (f, [_, b, ..]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        let p = entry_exit_placement(&cfg, &usage);
        assert_eq!(check_placement(&cfg, &usage, &p), vec![]);
    }

    #[test]
    fn missing_save_is_caught() {
        let (f, [_, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        // Restore without save.
        let p = Placement::from_points(vec![SpillPoint {
            reg: r,
            kind: SpillKind::Restore,
            loc: SpillLoc::BlockBottom(d),
        }]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::RestoreWithoutSave { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::BusyNotSaved { .. })));
    }

    #[test]
    fn asymmetric_diamond_merge_is_caught() {
        let (f, [a, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        // Save only on the busy arm, restore at the merged exit: the
        // merge at D sees saved/original conflict.
        let p = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(cfg.edge_between(a, b).unwrap()),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(d),
            },
        ]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::InconsistentMerge { .. })));
    }

    #[test]
    fn unrestored_exit_is_caught() {
        let (f, [a, b, _, _]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        let p = Placement::from_points(vec![SpillPoint {
            reg: r,
            kind: SpillKind::Save,
            loc: SpillLoc::BlockTop(a),
        }]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::NotRestoredAtExit { .. })));
    }

    #[test]
    fn double_save_is_caught() {
        let (f, [a, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        let p = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(cfg.edge_between(a, b).unwrap()),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(d),
            },
        ]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::DoubleSave { .. })));
    }

    #[test]
    fn busy_range_past_a_restore_is_caught() {
        let (f, [a, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        usage.set_busy(r, d, 4);
        // Restoring at the bottom of b while d (busy) follows leaves d
        // executing in original state.
        let p = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(b),
            },
        ]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::BusyNotSaved { block, .. } if *block == d)));
    }

    #[test]
    fn restore_at_bottom_of_busy_block_is_legal() {
        // The paper's own pattern: busy block with the restore as its last
        // instruction.
        let (f, [a, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        let p = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(b),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(
                    cfg.edge_between(a, spillopt_ir::BlockId::from_index(2))
                        .unwrap(),
                ),
            },
        ]);
        let errs = check_placement(&cfg, &usage, &p);
        assert_eq!(errs, vec![]);
        let _ = d;
    }

    #[test]
    fn modified_shrink_wrap_is_valid_on_diamond() {
        let (f, [_, b, ..]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        let p = crate::modified::modified_shrink_wrap(&cfg, &usage).placement();
        assert_eq!(check_placement(&cfg, &usage, &p), vec![]);
        let c = crate::chow::chow_shrink_wrap(&cfg, &usage);
        assert_eq!(check_placement(&cfg, &usage, &c), vec![]);
    }
}
