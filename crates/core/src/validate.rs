//! Static validity checking of save/restore placements.
//!
//! A placement is valid when, for every callee-saved register:
//!
//! * every *busy* block is executed in **saved** state (the original value
//!   is in memory, the register is free for the allocator);
//! * a save executes only in **original** state (saving twice would store
//!   an allocated variable over the saved original value);
//! * a restore executes only in saved state and never while the register
//!   is still busy;
//! * control-flow merges agree on the state;
//! * the register is in original state at every return (the register-
//!   usage convention).
//!
//! The checker is an abstract interpretation over block granularity with
//! the same point structure the placements use: block top → busy body →
//! block bottom → outgoing edge. Points at the *entry block's top* mean
//! "at the procedure entry, once per call" (the insertion pass realizes
//! them above any loop back to the entry block), so they execute on the
//! entry transition only, not on back edges into the entry block.

use crate::location::{Placement, SpillKind, SpillLoc, SpillPoint};
use crate::usage::CalleeSavedUsage;
use spillopt_ir::{BlockId, Cfg, PReg};
use std::fmt;

/// A validity violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// A save would execute in saved state (double save).
    DoubleSave {
        /// Offending point.
        point: SpillPoint,
    },
    /// A restore would execute in original state (no matching save).
    RestoreWithoutSave {
        /// Offending point.
        point: SpillPoint,
    },
    /// A busy block can execute with the register not saved.
    BusyNotSaved {
        /// The register.
        reg: PReg,
        /// The busy block reached in original state.
        block: BlockId,
    },
    /// A merge point joins saved and original states.
    InconsistentMerge {
        /// The register.
        reg: PReg,
        /// The block whose entry state conflicts.
        block: BlockId,
    },
    /// A return can execute in saved state (value never restored).
    NotRestoredAtExit {
        /// The register.
        reg: PReg,
        /// The return block.
        block: BlockId,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::DoubleSave { point } => write!(f, "double save at {point}"),
            PlacementError::RestoreWithoutSave { point } => {
                write!(f, "restore without save at {point}")
            }
            PlacementError::BusyNotSaved { reg, block } => {
                write!(f, "{reg} busy in {block} but not saved")
            }
            PlacementError::InconsistentMerge { reg, block } => {
                write!(f, "inconsistent save state for {reg} at {block}")
            }
            PlacementError::NotRestoredAtExit { reg, block } => {
                write!(f, "{reg} not restored at exit {block}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Checks `placement` against `usage`. Returns all violations (empty =
/// valid).
///
/// The checker runs the abstract interpretation for **all** registers at
/// once: each block's state is three machine words (known/saved/conflict
/// bit planes, one bit per register) and every transition — applying a
/// location's saves and restores, the busy-body and exit checks, the
/// merge at control-flow joins — is a handful of word ops. Per register
/// this follows exactly the retired per-register schedule
/// ([`crate::reference::check_placement_reference`]), so the reported
/// violation *set* is the same (the list order interleaves registers
/// instead of grouping them). More than 64 registers falls back to the
/// reference.
pub fn check_placement(
    cfg: &Cfg,
    usage: &CalleeSavedUsage,
    placement: &Placement,
) -> Vec<PlacementError> {
    // Bit order: usage registers (already sorted), then placement-only
    // registers.
    let mut regs: Vec<PReg> = usage.regs().map(|(r, _)| r).collect();
    for r in placement.regs() {
        if usage.busy(r).is_none() {
            regs.push(r);
        }
    }
    if regs.len() > 64 {
        return crate::reference::check_placement_reference(cfg, usage, placement);
    }
    let bit_of = |reg: PReg| -> u64 {
        1 << regs
            .iter()
            .position(|&r| r == reg)
            .expect("placed register in bit map")
    };

    let n = cfg.num_blocks();
    let m = cfg.num_edges();
    // Per-location save/restore words.
    let mut top_save = vec![0u64; n];
    let mut top_restore = vec![0u64; n];
    let mut bottom_save = vec![0u64; n];
    let mut bottom_restore = vec![0u64; n];
    let mut edge_save = vec![0u64; m];
    let mut edge_restore = vec![0u64; m];
    for p in placement.points() {
        let bit = bit_of(p.reg);
        match (p.loc, p.kind) {
            (SpillLoc::BlockTop(b), SpillKind::Save) => top_save[b.index()] |= bit,
            (SpillLoc::BlockTop(b), SpillKind::Restore) => top_restore[b.index()] |= bit,
            (SpillLoc::BlockBottom(b), SpillKind::Save) => bottom_save[b.index()] |= bit,
            (SpillLoc::BlockBottom(b), SpillKind::Restore) => bottom_restore[b.index()] |= bit,
            (SpillLoc::OnEdge(e), SpillKind::Save) => edge_save[e.index()] |= bit,
            (SpillLoc::OnEdge(e), SpillKind::Restore) => edge_restore[e.index()] |= bit,
        }
    }
    // Per-block busy words.
    let mut busy = vec![0u64; n];
    for (bit, (_, set)) in usage.regs().enumerate() {
        for b in set.iter_ones() {
            busy[b] |= 1 << bit;
        }
    }
    let mut is_exit = vec![false; n];
    for &b in cfg.exit_blocks() {
        is_exit[b.index()] = true;
    }

    let mut errors: Vec<PlacementError> = Vec::new();
    fn push_unique(errors: &mut Vec<PlacementError>, e: PlacementError) {
        if !errors.contains(&e) {
            errors.push(e);
        }
    }
    // Applies the restores then the saves of one location to the masked
    // state planes, reporting per-bit violations.
    let apply = |restores: u64,
                 saves: u64,
                 mask: u64,
                 saved: &mut u64,
                 conflict: &mut u64,
                 loc: SpillLoc,
                 errors: &mut Vec<PlacementError>| {
        let r = restores & mask;
        if r != 0 {
            // Restore in Original (or never-reached) state: no save to
            // undo. Conflict-state restores are legal and re-anchor the
            // state to Original.
            let mut bad = r & !*saved & !*conflict;
            while bad != 0 {
                let bit = bad.trailing_zeros() as usize;
                bad &= bad - 1;
                push_unique(
                    errors,
                    PlacementError::RestoreWithoutSave {
                        point: SpillPoint {
                            reg: regs[bit],
                            kind: SpillKind::Restore,
                            loc,
                        },
                    },
                );
            }
            *saved &= !r;
            *conflict &= !r;
        }
        let s = saves & mask;
        if s != 0 {
            let mut bad = s & *saved & !*conflict;
            while bad != 0 {
                let bit = bad.trailing_zeros() as usize;
                bad &= bad - 1;
                push_unique(
                    errors,
                    PlacementError::DoubleSave {
                        point: SpillPoint {
                            reg: regs[bit],
                            kind: SpillKind::Save,
                            loc,
                        },
                    },
                );
            }
            *saved |= s;
            *conflict &= !s;
        }
    };

    // Block-entry state planes. `BlockTop(entry)` points execute on the
    // procedure-entry transition only — their physical realization lives
    // above any loop back to the entry block — so they are applied once
    // here, to seed the entry block's in-state, and skipped when the
    // entry block is (re)processed below. Back edges into the entry
    // block merge into the post-top state, exactly as they reach the
    // split entry physically.
    let all = if regs.is_empty() {
        0
    } else {
        u64::MAX >> (64 - regs.len())
    };
    let mut known_in = vec![0u64; n];
    let mut saved_in = vec![0u64; n];
    let mut conflict_in = vec![0u64; n];
    let entry = cfg.entry().index();
    {
        let (mut s0, mut c0) = (0u64, 0u64);
        apply(
            top_restore[entry],
            top_save[entry],
            all,
            &mut s0,
            &mut c0,
            SpillLoc::BlockTop(cfg.entry()),
            &mut errors,
        );
        known_in[entry] = all;
        saved_in[entry] = s0;
        conflict_in[entry] = c0;
    }

    let mut reported_merge = vec![0u64; n];
    let mut changed = true;
    let mut iterations = 0usize;
    while changed {
        changed = false;
        iterations += 1;
        if iterations > 4 * n + 8 {
            break; // conflicts oscillate at most once; safety net
        }
        for bi in 0..n {
            let b = BlockId::from_index(bi);
            let mask = known_in[bi];
            if mask == 0 {
                continue;
            }
            let mut saved = saved_in[bi];
            let mut conflict = conflict_in[bi];
            if bi != entry {
                apply(
                    top_restore[bi],
                    top_save[bi],
                    mask,
                    &mut saved,
                    &mut conflict,
                    SpillLoc::BlockTop(b),
                    &mut errors,
                );
            }
            // Busy body: must be in saved state.
            let mut bad = busy[bi] & mask & (!saved | conflict);
            while bad != 0 {
                let bit = bad.trailing_zeros() as usize;
                bad &= bad - 1;
                push_unique(
                    &mut errors,
                    PlacementError::BusyNotSaved {
                        reg: regs[bit],
                        block: b,
                    },
                );
            }
            apply(
                bottom_restore[bi],
                bottom_save[bi],
                mask,
                &mut saved,
                &mut conflict,
                SpillLoc::BlockBottom(b),
                &mut errors,
            );
            // Returns must be in original state.
            if is_exit[bi] {
                let mut bad = mask & saved & !conflict;
                while bad != 0 {
                    let bit = bad.trailing_zeros() as usize;
                    bad &= bad - 1;
                    push_unique(
                        &mut errors,
                        PlacementError::NotRestoredAtExit {
                            reg: regs[bit],
                            block: b,
                        },
                    );
                }
            }
            for &eid in cfg.succ_edges(b) {
                let to = cfg.edge(eid).to.index();
                let (mut s_e, mut c_e) = (saved, conflict);
                apply(
                    edge_restore[eid.index()],
                    edge_save[eid.index()],
                    mask,
                    &mut s_e,
                    &mut c_e,
                    SpillLoc::OnEdge(eid),
                    &mut errors,
                );
                // Merge into the target's entry state: newly known bits
                // copy the incoming state; doubly known bits that
                // disagree (or are already conflicted) conflict.
                let (k_t, s_t, c_t) = (known_in[to], saved_in[to], conflict_in[to]);
                let new_conflict = c_t | (mask & c_e) | (k_t & mask & (s_t ^ s_e));
                let new_known = k_t | mask;
                let new_saved = ((s_t & k_t) | (s_e & mask & !k_t)) & !new_conflict;
                if (new_known, new_saved, new_conflict) != (k_t, s_t, c_t) {
                    known_in[to] = new_known;
                    saved_in[to] = new_saved;
                    conflict_in[to] = new_conflict;
                    changed = true;
                }
                let mut newly = new_conflict & !reported_merge[to];
                reported_merge[to] |= newly;
                while newly != 0 {
                    let bit = newly.trailing_zeros() as usize;
                    newly &= newly - 1;
                    errors.push(PlacementError::InconsistentMerge {
                        reg: regs[bit],
                        block: BlockId::from_index(to),
                    });
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry_exit::entry_exit_placement;
    use crate::location::Placement;
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    fn diamond() -> (spillopt_ir::Function, [BlockId; 4]) {
        let mut fb = FunctionBuilder::new("d", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        (fb.finish(), [a, b, c, d])
    }

    #[test]
    fn entry_exit_is_always_valid() {
        let (f, [_, b, ..]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        let p = entry_exit_placement(&cfg, &usage);
        assert_eq!(check_placement(&cfg, &usage, &p), vec![]);
    }

    #[test]
    fn missing_save_is_caught() {
        let (f, [_, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        // Restore without save.
        let p = Placement::from_points(vec![SpillPoint {
            reg: r,
            kind: SpillKind::Restore,
            loc: SpillLoc::BlockBottom(d),
        }]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::RestoreWithoutSave { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::BusyNotSaved { .. })));
    }

    #[test]
    fn asymmetric_diamond_merge_is_caught() {
        let (f, [a, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        // Save only on the busy arm, restore at the merged exit: the
        // merge at D sees saved/original conflict.
        let p = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(cfg.edge_between(a, b).unwrap()),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(d),
            },
        ]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::InconsistentMerge { .. })));
    }

    #[test]
    fn unrestored_exit_is_caught() {
        let (f, [a, b, _, _]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        let p = Placement::from_points(vec![SpillPoint {
            reg: r,
            kind: SpillKind::Save,
            loc: SpillLoc::BlockTop(a),
        }]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::NotRestoredAtExit { .. })));
    }

    #[test]
    fn double_save_is_caught() {
        let (f, [a, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        let p = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(cfg.edge_between(a, b).unwrap()),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(d),
            },
        ]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::DoubleSave { .. })));
    }

    #[test]
    fn busy_range_past_a_restore_is_caught() {
        let (f, [a, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        usage.set_busy(r, d, 4);
        // Restoring at the bottom of b while d (busy) follows leaves d
        // executing in original state.
        let p = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(b),
            },
        ]);
        let errs = check_placement(&cfg, &usage, &p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, PlacementError::BusyNotSaved { block, .. } if *block == d)));
    }

    #[test]
    fn restore_at_bottom_of_busy_block_is_legal() {
        // The paper's own pattern: busy block with the restore as its last
        // instruction.
        let (f, [a, b, _, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        let r = PReg::new(11);
        usage.set_busy(r, b, 4);
        let p = Placement::from_points(vec![
            SpillPoint {
                reg: r,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(a),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(b),
            },
            SpillPoint {
                reg: r,
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(
                    cfg.edge_between(a, spillopt_ir::BlockId::from_index(2))
                        .unwrap(),
                ),
            },
        ]);
        let errs = check_placement(&cfg, &usage, &p);
        assert_eq!(errs, vec![]);
        let _ = d;
    }

    #[test]
    fn modified_shrink_wrap_is_valid_on_diamond() {
        let (f, [_, b, ..]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut usage = CalleeSavedUsage::new();
        usage.set_busy(PReg::new(11), b, 4);
        let p = crate::modified::modified_shrink_wrap(&cfg, &usage).placement();
        assert_eq!(check_placement(&cfg, &usage, &p), vec![]);
        let c = crate::chow::chow_shrink_wrap(&cfg, &usage);
        assert_eq!(check_placement(&cfg, &usage, &c), vec![]);
    }
}
