//! Save/restore sets: groups of mutually dependent save and restore
//! locations (the paper's webs).

use crate::cost::{location_cost, spill_point_cost, Cost, CostModel, SpillCostModel};
use crate::location::{SpillKind, SpillLoc, SpillPoint};
use spillopt_ir::{Cfg, DenseBitSet, PReg};
use spillopt_profile::EdgeProfile;

/// A save/restore set: save and restore locations that depend on each
/// other for validity and are independent of all other locations — the
/// paper identifies them with live-range webs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaveRestoreSet {
    /// The callee-saved register this set protects.
    pub reg: PReg,
    /// The save/restore locations of the set.
    pub points: Vec<SpillPoint>,
    /// The busy blocks this set wraps (used to decide when a set may be
    /// hoisted to a region boundary).
    pub cluster: DenseBitSet,
    /// Whether this is an initial (shrink-wrapping) set; initial sets
    /// share jump-instruction cost on common jump edges.
    pub initial: bool,
}

impl SaveRestoreSet {
    /// Total cost of the set's locations under a cost model.
    ///
    /// `shares` gives, per edge, how many callee-saved registers have
    /// initial spill locations there (the paper divides the jump
    /// instruction's cost among them); non-initial sets always bear full
    /// jump cost.
    pub fn cost(
        &self,
        model: CostModel,
        cfg: &Cfg,
        profile: &EdgeProfile,
        shares: &EdgeShares,
    ) -> Cost {
        self.points
            .iter()
            .map(|p| {
                let share = if self.initial { shares.share(p.loc) } else { 1 };
                location_cost(model, cfg, profile, p.loc, share)
            })
            .sum()
    }

    /// As [`SaveRestoreSet::cost`], priced with a target's
    /// [`SpillCostModel`].
    ///
    /// Initial sets additionally share paired save/restore instructions:
    /// when `costs.pair_size > 1` and several registers have initial
    /// locations of the same kind at the same location, each pays
    /// `1 / min(sharers, pair_size)` of the instruction (an `stp` covers
    /// two of them). Non-initial sets bear full instruction and jump
    /// costs — boundary pairing is the hierarchical pass's group
    /// decision, not a property of a lone set.
    pub fn cost_with(
        &self,
        model: CostModel,
        costs: &SpillCostModel,
        cfg: &Cfg,
        profile: &EdgeProfile,
        shares: &EdgeShares,
    ) -> Cost {
        self.points
            .iter()
            .map(|p| {
                let (jump_share, pair_share) = if self.initial {
                    (
                        shares.share(p.loc),
                        shares.pair_share(p.loc, p.kind, costs.pair_size),
                    )
                } else {
                    (1, 1)
                };
                spill_point_cost(
                    model, costs, cfg, profile, p.kind, p.loc, jump_share, pair_share,
                )
            })
            .sum()
    }

    /// The save points of the set.
    pub fn saves(&self) -> impl Iterator<Item = &SpillPoint> + '_ {
        self.points.iter().filter(|p| p.kind == SpillKind::Save)
    }

    /// The restore points of the set.
    pub fn restores(&self) -> impl Iterator<Item = &SpillPoint> + '_ {
        self.points.iter().filter(|p| p.kind == SpillKind::Restore)
    }
}

/// Per-edge sharing factors for jump-instruction cost among the *initial*
/// sets (paper: "the cost of a jump instruction is divided among all the
/// callee-saved registers that have spill locations on the corresponding
/// jump edge").
///
/// Stored as dense `Vec`s — edge-indexed jump-share counts and a
/// location×kind-indexed pairing table — instead of the retired
/// `HashMap` accounting ([`crate::reference::EdgeSharesReference`]);
/// every query is an array load. Sized by the largest index mentioned in
/// the sets, with out-of-range queries answering the unshared default.
#[derive(Clone, Debug, Default)]
pub struct EdgeShares {
    /// Distinct registers with a location on edge `e`, indexed by edge.
    counts: Vec<u32>,
    /// Distinct registers with an initial location of a given kind at a
    /// given location — the candidates one paired save/restore
    /// instruction could cover on pairing targets. Indexed by
    /// [`EdgeShares::loc_kind_index`].
    colocated: Vec<u32>,
    /// Block-index space of `colocated` (locations above it are edges).
    num_blocks: usize,
}

impl EdgeShares {
    /// No sharing anywhere (every location bears full jump cost).
    pub fn none() -> Self {
        EdgeShares::default()
    }

    /// Dense index of a location: block tops, block bottoms, then edges.
    fn loc_index(num_blocks: usize, loc: SpillLoc) -> usize {
        match loc {
            SpillLoc::BlockTop(b) => b.index(),
            SpillLoc::BlockBottom(b) => num_blocks + b.index(),
            SpillLoc::OnEdge(e) => 2 * num_blocks + e.index(),
        }
    }

    /// Dense index of a (location, kind) pair.
    fn loc_kind_index(num_blocks: usize, loc: SpillLoc, kind: SpillKind) -> usize {
        Self::loc_index(num_blocks, loc) * 2 + kind as usize
    }

    /// Computes shares from the initial sets: the number of distinct
    /// registers with at least one location on each edge (jump-cost
    /// sharing), and per (location, kind) the number of distinct
    /// registers placing there (pairing). Distinctness is resolved by a
    /// sort+dedup over the mentioned points — no hashing.
    pub fn from_sets(sets: &[SaveRestoreSet]) -> Self {
        let mut num_blocks = 0usize;
        let mut num_edges = 0usize;
        for s in sets {
            for p in &s.points {
                match p.loc {
                    SpillLoc::BlockTop(b) | SpillLoc::BlockBottom(b) => {
                        num_blocks = num_blocks.max(b.index() + 1)
                    }
                    SpillLoc::OnEdge(e) => num_edges = num_edges.max(e.index() + 1),
                }
            }
        }
        // (dense key, reg) tuples; sort+dedup yields distinct registers
        // per key.
        let mut per_edge: Vec<(u32, PReg)> = Vec::new();
        let mut per_loc: Vec<(u32, PReg)> = Vec::new();
        for s in sets {
            for p in &s.points {
                if let SpillLoc::OnEdge(e) = p.loc {
                    per_edge.push((e.index() as u32, p.reg));
                }
                per_loc.push((
                    Self::loc_kind_index(num_blocks, p.loc, p.kind) as u32,
                    p.reg,
                ));
            }
        }
        per_edge.sort_unstable();
        per_edge.dedup();
        per_loc.sort_unstable();
        per_loc.dedup();
        let mut counts = vec![0u32; num_edges];
        for (e, _) in per_edge {
            counts[e as usize] += 1;
        }
        let mut colocated = vec![0u32; (2 * num_blocks + num_edges) * 2];
        for (k, _) in per_loc {
            colocated[k as usize] += 1;
        }
        EdgeShares {
            counts,
            colocated,
            num_blocks,
        }
    }

    /// The sharing factor for a location (1 if not on a shared edge).
    pub fn share(&self, loc: SpillLoc) -> u64 {
        match loc {
            SpillLoc::OnEdge(e) => self.counts.get(e.index()).copied().unwrap_or(1).max(1) as u64,
            _ => 1,
        }
    }

    /// The pairing divisor for one save/restore of `kind` at `loc`: how
    /// many registers share one paired instruction there, capped by the
    /// target's `pair_size` (1 when the target does not pair or the
    /// register is alone).
    pub fn pair_share(&self, loc: SpillLoc, kind: SpillKind, pair_size: u8) -> u64 {
        // A block index at or beyond the table's block space would alias
        // into the edge range; such locations were never mentioned, so
        // they answer the unshared default.
        let in_range = match loc {
            SpillLoc::BlockTop(b) | SpillLoc::BlockBottom(b) => b.index() < self.num_blocks,
            SpillLoc::OnEdge(_) => true,
        };
        let co = if in_range {
            self.colocated
                .get(Self::loc_kind_index(self.num_blocks, loc, kind))
                .copied()
                .unwrap_or(1)
                .max(1) as u64
        } else {
            1
        };
        co.min(pair_size.max(1) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{BlockId, Cond, EdgeId, FunctionBuilder, Reg};

    #[test]
    fn shares_count_distinct_registers() {
        let e = EdgeId::from_index(3);
        let mk = |reg: u8| SaveRestoreSet {
            reg: PReg::new(reg),
            points: vec![SpillPoint {
                reg: PReg::new(reg),
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(e),
            }],
            cluster: DenseBitSet::new(4),
            initial: true,
        };
        let sets = [mk(11), mk(12), mk(11)];
        let shares = EdgeShares::from_sets(&sets);
        assert_eq!(shares.share(SpillLoc::OnEdge(e)), 2);
        assert_eq!(shares.share(SpillLoc::OnEdge(EdgeId::from_index(9))), 1);
        assert_eq!(shares.share(SpillLoc::BlockTop(BlockId::from_index(0))), 1);
    }

    #[test]
    fn jump_model_charges_critical_jump_edges() {
        // A branches to C (taken) and B (fall); B jumps to D, C falls to D;
        // D branches back taken to B making B's pred count 2 — build a
        // critical jump edge D->B.
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        let e = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), b, e);
        fb.switch_to(e);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let db = cfg.edge_between(d, b).unwrap();
        assert!(cfg.needs_jump_block(db));
        let mut counts = vec![0u64; cfg.num_edges()];
        counts[db.index()] = 10;
        let profile = spillopt_profile::EdgeProfile::new(&cfg, counts, 0);

        let set = SaveRestoreSet {
            reg: PReg::new(11),
            points: vec![SpillPoint {
                reg: PReg::new(11),
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(db),
            }],
            cluster: DenseBitSet::new(cfg.num_blocks()),
            initial: true,
        };
        let shares = EdgeShares::from_sets(std::slice::from_ref(&set));
        assert_eq!(
            set.cost(CostModel::ExecutionCount, &cfg, &profile, &shares),
            Cost::from_count(10)
        );
        // Full jump penalty (share = 1): 10 + 10.
        assert_eq!(
            set.cost(CostModel::JumpEdge, &cfg, &profile, &shares),
            Cost::from_count(20)
        );
        // Shared between two registers: 10 + 5.
        let set2 = SaveRestoreSet {
            reg: PReg::new(12),
            points: vec![SpillPoint {
                reg: PReg::new(12),
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(db),
            }],
            cluster: DenseBitSet::new(cfg.num_blocks()),
            initial: true,
        };
        let shares2 = EdgeShares::from_sets(&[set.clone(), set2]);
        assert_eq!(
            set.cost(CostModel::JumpEdge, &cfg, &profile, &shares2),
            Cost::from_count(10) + Cost::from_fraction(10, 2)
        );
    }
}
