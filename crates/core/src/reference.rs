//! The retired (pre-word-parallel) implementations, frozen verbatim.
//!
//! Every hot path this crate rewrote for the word-parallel/dense
//! overhaul keeps its original implementation here, unchanged:
//!
//! * [`chow_shrink_wrap_reference`] — Chow's placement via the
//!   per-register saved-region growth of [`crate::dataflow`] (the
//!   `dataflow` module itself is the retired per-register solver, kept
//!   as the oracle the bit-parallel [`crate::solver`] is differentially
//!   tested against);
//! * [`EdgeSharesReference`] — jump-cost/pairing shares accounted in
//!   `HashMap`s instead of dense edge-indexed tables;
//! * [`hierarchical_placement_vs_reference`] — the PST traversal with
//!   hash-keyed region bookkeeping and per-query set-cost recomputation;
//! * [`placement_cost_with_reference`] — whole-placement pricing with
//!   hash-grouped locations;
//! * [`check_placement_reference`] — the per-register validator;
//! * [`run_suite_priced_reference`] — the four-technique suite wired to
//!   all of the above.
//!
//! Two consumers: the differential tests (the rewritten paths must be
//! decision-for-decision identical), and the perf-trajectory bench
//! (`spillopt bench`), which times the frozen pipeline against the
//! current one on the same corpus so every future PR can measure its
//! speedup against this baseline.

use crate::chow::chow_shrink_wrap_with;
use crate::cost::{location_cost, spill_point_cost, Cost, CostModel, SpillCostModel};
use crate::dataflow::{chow_grow, region_boundary};
use crate::entry_exit::entry_exit_placement;
use crate::hierarchical::{boundary_set, home_region, HierarchicalResult, TraceEvent};
use crate::location::{Placement, SpillKind, SpillLoc, SpillPoint};
use crate::modified::InitialSets;
use crate::pipeline::PlacementSuite;
use crate::sets::SaveRestoreSet;
use crate::usage::CalleeSavedUsage;
use crate::validate::PlacementError;
use spillopt_ir::analysis::loops::CyclicRegion;
use spillopt_ir::{BlockId, Cfg, DenseBitSet, EdgeId, PReg};
use spillopt_profile::EdgeProfile;
use spillopt_pst::{Pst, RegionId};
use std::collections::HashMap;

/// Per-edge sharing factors accounted in `HashMap`s — the retired form
/// of [`crate::sets::EdgeShares`]. Same query results.
#[derive(Clone, Debug, Default)]
pub struct EdgeSharesReference {
    counts: HashMap<EdgeId, u64>,
    colocated: HashMap<(SpillLoc, SpillKind), u64>,
}

impl EdgeSharesReference {
    /// No sharing anywhere (every location bears full jump cost).
    pub fn none() -> Self {
        EdgeSharesReference::default()
    }

    /// Computes shares from the initial sets (retired hash-map
    /// accounting).
    pub fn from_sets(sets: &[SaveRestoreSet]) -> Self {
        let mut regs_per_edge: HashMap<EdgeId, Vec<PReg>> = HashMap::new();
        let mut regs_per_loc: HashMap<(SpillLoc, SpillKind), Vec<PReg>> = HashMap::new();
        for s in sets {
            for p in &s.points {
                if let SpillLoc::OnEdge(e) = p.loc {
                    let v = regs_per_edge.entry(e).or_default();
                    if !v.contains(&p.reg) {
                        v.push(p.reg);
                    }
                }
                let v = regs_per_loc.entry((p.loc, p.kind)).or_default();
                if !v.contains(&p.reg) {
                    v.push(p.reg);
                }
            }
        }
        EdgeSharesReference {
            counts: regs_per_edge
                .into_iter()
                .map(|(e, v)| (e, v.len() as u64))
                .collect(),
            colocated: regs_per_loc
                .into_iter()
                .map(|(k, v)| (k, v.len() as u64))
                .collect(),
        }
    }

    /// The sharing factor for a location (1 if not on a shared edge).
    pub fn share(&self, loc: SpillLoc) -> u64 {
        match loc {
            SpillLoc::OnEdge(e) => self.counts.get(&e).copied().unwrap_or(1).max(1),
            _ => 1,
        }
    }

    /// The pairing divisor for one save/restore of `kind` at `loc`.
    pub fn pair_share(&self, loc: SpillLoc, kind: SpillKind, pair_size: u8) -> u64 {
        let co = self
            .colocated
            .get(&(loc, kind))
            .copied()
            .unwrap_or(1)
            .max(1);
        co.min(pair_size.max(1) as u64)
    }
}

/// [`SaveRestoreSet::cost_with`] against the retired share accounting.
pub fn set_cost_with_reference(
    set: &SaveRestoreSet,
    model: CostModel,
    costs: &SpillCostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    shares: &EdgeSharesReference,
) -> Cost {
    set.points
        .iter()
        .map(|p| {
            let (jump_share, pair_share) = if set.initial {
                (
                    shares.share(p.loc),
                    shares.pair_share(p.loc, p.kind, costs.pair_size),
                )
            } else {
                (1, 1)
            };
            spill_point_cost(
                model, costs, cfg, profile, p.kind, p.loc, jump_share, pair_share,
            )
        })
        .sum()
}

/// The paper's initial save/restore sets via the retired per-cluster
/// boundary scan (one `region_boundary` edge sweep per cluster). Same
/// sets, same order as [`crate::modified_shrink_wrap`].
pub fn modified_shrink_wrap_reference(cfg: &Cfg, usage: &CalleeSavedUsage) -> InitialSets {
    let mut sets = Vec::new();
    for (reg, busy) in usage.regs() {
        for cluster in crate::dataflow::busy_clusters(cfg, busy) {
            let b = region_boundary(cfg, &cluster);
            let mut points = Vec::new();
            if b.save_at_entry {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Save,
                    loc: SpillLoc::BlockTop(cfg.entry()),
                });
            }
            for e in b.save_edges {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Save,
                    loc: SpillLoc::OnEdge(e),
                });
            }
            for e in b.restore_edges {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Restore,
                    loc: SpillLoc::OnEdge(e),
                });
            }
            for x in b.restore_at_exits {
                points.push(SpillPoint {
                    reg,
                    kind: SpillKind::Restore,
                    loc: SpillLoc::BlockBottom(x),
                });
            }
            sets.push(SaveRestoreSet {
                reg,
                points,
                cluster,
                initial: true,
            });
        }
    }
    InitialSets { sets }
}

/// Chow's shrink-wrapping via the per-register saved-region growth
/// ([`chow_grow`]), one fixpoint per callee-saved register. Identical
/// placement to [`crate::chow_shrink_wrap_with`].
pub fn chow_shrink_wrap_reference(
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    usage: &CalleeSavedUsage,
) -> Placement {
    let mut points = Vec::new();
    for (reg, busy) in usage.regs() {
        let w = chow_grow(cfg, cyclic, busy);
        let b = region_boundary(cfg, &w);
        if b.save_at_entry {
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Save,
                loc: SpillLoc::BlockTop(cfg.entry()),
            });
        }
        for e in b.save_edges {
            debug_assert!(
                !cfg.needs_jump_block(e),
                "Chow placement reached a critical jump edge"
            );
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Save,
                loc: SpillLoc::OnEdge(e),
            });
        }
        for e in b.restore_edges {
            debug_assert!(
                !cfg.needs_jump_block(e),
                "Chow placement reached a critical jump edge"
            );
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Restore,
                loc: SpillLoc::OnEdge(e),
            });
        }
        for x in b.restore_at_exits {
            points.push(SpillPoint {
                reg,
                kind: SpillKind::Restore,
                loc: SpillLoc::BlockBottom(x),
            });
        }
    }
    Placement::from_points(points)
}

/// Whole-placement pricing with hash-grouped locations — the retired
/// form of [`crate::placement_cost_with`]. Same cost.
pub fn placement_cost_with_reference(
    model: CostModel,
    costs: &SpillCostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    placement: &Placement,
) -> Cost {
    let pair = costs.pair_size.max(1) as u64;
    let mut groups: HashMap<(SpillLoc, SpillKind), u64> = HashMap::new();
    for p in placement.points() {
        *groups.entry((p.loc, p.kind)).or_insert(0) += 1;
    }
    let mut keys: Vec<(SpillLoc, SpillKind)> = groups.keys().copied().collect();
    keys.sort();
    let mut total = Cost::ZERO;
    for key in keys {
        let (loc, kind) = key;
        let regs = groups[&key];
        let insts = regs.div_ceil(pair);
        let count = crate::cost::location_exec_count(cfg, profile, loc);
        total += costs
            .insn(cfg, kind, loc)
            .of(count.saturating_mul(insts), 1);
    }
    if model == CostModel::JumpEdge {
        let mut edges: Vec<EdgeId> = placement
            .points()
            .iter()
            .filter_map(|p| match p.loc {
                SpillLoc::OnEdge(e) if cfg.needs_jump_block(e) => Some(e),
                _ => None,
            })
            .collect();
        edges.sort();
        edges.dedup();
        for e in edges {
            total += costs.jump.of(profile.edge_count(e), 1);
        }
    }
    total
}

/// One register's candidacy at a region (retired traversal).
struct Candidate {
    reg: PReg,
    sets: Vec<SaveRestoreSet>,
    contained_cost: Cost,
    hoistable: bool,
    boundary: SaveRestoreSet,
    boundary_cost: Cost,
}

/// The hierarchical traversal with hash-keyed bookkeeping — the retired
/// form of [`crate::hierarchical_placement_vs`]. Identical decisions,
/// placement, final sets, and trace.
pub fn hierarchical_placement_vs_reference(
    cfg: &Cfg,
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    model: CostModel,
    costs: &SpillCostModel,
    shrink_wrap: &Placement,
) -> HierarchicalResult {
    // Lines 2-3: initial sets from the modified shrink-wrapping, with the
    // jump-cost sharing the paper prescribes for them.
    let initial = modified_shrink_wrap_reference(cfg, usage);
    let shares = EdgeSharesReference::from_sets(&initial.sets);

    // Assign each set to its home region: the innermost region containing
    // the whole cluster and every location.
    let mut home_sets: HashMap<RegionId, Vec<SaveRestoreSet>> = HashMap::new();
    for set in initial.sets {
        let home = home_region(cfg, pst, &set);
        home_sets.entry(home).or_default().push(set);
    }

    let mut trace = Vec::new();
    // Folded sets flowing up the tree, per region (keyed by region).
    let mut folded: HashMap<RegionId, Vec<SaveRestoreSet>> = HashMap::new();

    // Line 4: topological-order (children-first) traversal.
    for &r in pst.postorder() {
        let region = pst.region(r);
        let mut live: Vec<SaveRestoreSet> = Vec::new();
        for &c in &region.children {
            live.extend(folded.remove(&c).unwrap_or_default());
        }
        live.extend(home_sets.remove(&r).unwrap_or_default());

        // Line 5: per callee-saved register.
        let mut regs: Vec<PReg> = live.iter().map(|s| s.reg).collect();
        regs.sort();
        regs.dedup();

        let mut candidates: Vec<Candidate> = Vec::new();
        for reg in regs {
            let (mine, rest): (Vec<_>, Vec<_>) = live.drain(..).partition(|s| s.reg == reg);
            live = rest;

            // Hoisting to this region's boundary is only valid if every
            // busy block of `reg` inside the region belongs to the
            // contained sets (otherwise another web of the same register
            // crosses the boundary).
            let busy = usage.busy(reg).expect("set exists for used register");
            let mut busy_inside = busy.clone();
            busy_inside.intersect_with(&region.blocks);
            let contained_blocks: usize = mine.iter().map(|s| s.cluster.count()).sum();
            let hoistable = contained_blocks == busy_inside.count();

            let contained_cost: Cost = mine
                .iter()
                .map(|s| set_cost_with_reference(s, model, costs, cfg, profile, &shares))
                .sum();
            let boundary = boundary_set(cfg, pst, r, reg);
            let boundary_cost =
                set_cost_with_reference(&boundary, model, costs, cfg, profile, &shares);

            candidates.push(Candidate {
                reg,
                sets: mine,
                contained_cost,
                hoistable,
                boundary,
                boundary_cost,
            });
        }

        let decisions = if costs.pair_size > 1 {
            decide_paired_reference(model, costs, cfg, profile, &candidates)
        } else {
            // Line 6: the paper's per-register "less than or equal" rule.
            candidates
                .iter()
                .map(|c| {
                    (
                        c.hoistable && c.boundary_cost <= c.contained_cost,
                        c.boundary_cost,
                    )
                })
                .collect()
        };

        let mut surviving: Vec<SaveRestoreSet> = Vec::new();
        for (c, (replaced, charged)) in candidates.into_iter().zip(decisions) {
            trace.push(TraceEvent {
                region: r,
                reg: c.reg,
                num_contained: c.sets.len(),
                contained_cost: c.contained_cost,
                boundary_cost: charged,
                replaced,
            });
            if replaced {
                // Lines 7-8.
                let mut cluster = DenseBitSet::new(cfg.num_blocks());
                for s in &c.sets {
                    cluster.union_with(&s.cluster);
                }
                surviving.push(SaveRestoreSet {
                    cluster,
                    ..c.boundary
                });
            } else {
                surviving.extend(c.sets);
            }
        }
        folded.insert(r, surviving);
    }

    let mut final_sets = folded.remove(&pst.root()).unwrap_or_default();
    let mut placement =
        Placement::from_points(final_sets.iter().flat_map(|s| s.points.clone()).collect());

    // Final group-wise comparison against both baselines.
    if !placement.points().is_empty() {
        let ours = placement_cost_with_reference(model, costs, cfg, profile, &placement);
        let entry_exit = entry_exit_placement(cfg, usage);
        let ee_cost = placement_cost_with_reference(model, costs, cfg, profile, &entry_exit);
        let sw_cost = placement_cost_with_reference(model, costs, cfg, profile, shrink_wrap);
        if ee_cost.min(sw_cost) < ours {
            let winner = if ee_cost <= sw_cost {
                entry_exit
            } else {
                shrink_wrap.clone()
            };
            final_sets = winner
                .regs()
                .into_iter()
                .map(|reg| {
                    let mut cluster = DenseBitSet::new(cfg.num_blocks());
                    if let Some(busy) = usage.busy(reg) {
                        cluster.union_with(busy);
                    }
                    SaveRestoreSet {
                        reg,
                        points: winner.points_for(reg).copied().collect(),
                        cluster,
                        initial: false,
                    }
                })
                .collect();
            placement = winner;
        }
    }

    HierarchicalResult {
        placement,
        final_sets,
        trace,
    }
}

/// The pairing-aware group decision at one region boundary (retired
/// copy; see `decide_paired` in [`crate::hierarchical`]).
fn decide_paired_reference(
    model: CostModel,
    costs: &SpillCostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    candidates: &[Candidate],
) -> Vec<(bool, Cost)> {
    let pair = costs.pair_size.max(1) as usize;

    let (insn_only, jump_extra) = match candidates.iter().find(|c| c.hoistable) {
        Some(c) => {
            let insn_only = set_cost_with_reference(
                &c.boundary,
                CostModel::ExecutionCount,
                costs,
                cfg,
                profile,
                &EdgeSharesReference::none(),
            );
            let jump_extra: Cost = if model == CostModel::JumpEdge {
                c.boundary
                    .points
                    .iter()
                    .filter_map(|p| match p.loc {
                        SpillLoc::OnEdge(e) if cfg.needs_jump_block(e) => {
                            Some(costs.jump.of(profile.edge_count(e), 1))
                        }
                        _ => None,
                    })
                    .sum()
            } else {
                Cost::ZERO
            };
            (insn_only, jump_extra)
        }
        None => (Cost::ZERO, Cost::ZERO),
    };

    // Order of consideration: hoistable, most expensive contained first;
    // ties by register number for determinism.
    let mut order: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].hoistable)
        .collect();
    order.sort_by(|&a, &b| {
        candidates[b]
            .contained_cost
            .cmp(&candidates[a].contained_cost)
            .then(candidates[a].reg.cmp(&candidates[b].reg))
    });

    let mut decisions: Vec<(bool, Cost)> = candidates
        .iter()
        .map(|c| (false, c.boundary_cost))
        .collect();
    let mut placed = 0usize;
    let mut i = 0;
    while i < order.len() {
        debug_assert!(placed.is_multiple_of(pair));
        let marginal = if placed == 0 {
            insn_only + jump_extra
        } else {
            insn_only
        };
        let group = pair.min(order.len() - i);
        let freed: Cost = order[i..i + group]
            .iter()
            .map(|&j| candidates[j].contained_cost)
            .sum();
        if marginal <= freed {
            decisions[order[i]] = (true, marginal);
            for &j in &order[i + 1..i + group] {
                decisions[j] = (true, Cost::ZERO);
            }
            placed += group;
            i += group;
        } else {
            break;
        }
    }
    decisions
}

/// Abstract save-state of one register at one program point (retired
/// per-register validator).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Unknown,
    Original,
    Saved,
    Conflict,
}

impl State {
    fn merge(self, other: State) -> State {
        use State::*;
        match (self, other) {
            (Unknown, x) | (x, Unknown) => x,
            (Conflict, _) | (_, Conflict) => Conflict,
            (a, b) if a == b => a,
            _ => Conflict,
        }
    }
}

/// The per-register validator — the retired form of
/// [`crate::check_placement`]. Reports the same violation set (the
/// word-parallel checker may order the list differently; compare as
/// sets).
pub fn check_placement_reference(
    cfg: &Cfg,
    usage: &CalleeSavedUsage,
    placement: &Placement,
) -> Vec<PlacementError> {
    let mut errors = Vec::new();
    for (reg, busy) in usage.regs() {
        check_one_reference(cfg, reg, busy, placement, &mut errors);
    }
    // Registers with points but no usage entry still need consistency.
    let empty = DenseBitSet::new(cfg.num_blocks());
    for reg in placement.regs() {
        if usage.busy(reg).is_none() {
            check_one_reference(cfg, reg, &empty, placement, &mut errors);
        }
    }
    errors
}

fn check_one_reference(
    cfg: &Cfg,
    reg: PReg,
    busy: &DenseBitSet,
    placement: &Placement,
    errors: &mut Vec<PlacementError>,
) {
    let n = cfg.num_blocks();
    // Collect the register's points per location.
    let mut top: Vec<Vec<&SpillPoint>> = vec![Vec::new(); n];
    let mut bottom: Vec<Vec<&SpillPoint>> = vec![Vec::new(); n];
    let mut on_edge: Vec<Vec<&SpillPoint>> = vec![Vec::new(); cfg.num_edges()];
    for p in placement.points_for(reg) {
        match p.loc {
            SpillLoc::BlockTop(b) => top[b.index()].push(p),
            SpillLoc::BlockBottom(b) => bottom[b.index()].push(p),
            SpillLoc::OnEdge(e) => on_edge[e.index()].push(p),
        }
    }

    let apply = |mut state: State, points: &[&SpillPoint], errors: &mut Vec<PlacementError>| {
        for p in points {
            match p.kind {
                SpillKind::Save => {
                    if state == State::Saved {
                        errors.push(PlacementError::DoubleSave { point: **p });
                    }
                    state = State::Saved;
                }
                SpillKind::Restore => {
                    if state == State::Original || state == State::Unknown {
                        errors.push(PlacementError::RestoreWithoutSave { point: **p });
                    }
                    state = State::Original;
                }
            }
        }
        state
    };

    // Iterate to fixpoint over block-entry states.
    let mut state_in = vec![State::Unknown; n];
    {
        let mut sink = Vec::new();
        let s0 = apply(State::Original, &top[cfg.entry().index()], &mut sink);
        for e in sink {
            if !errors.contains(&e) {
                errors.push(e);
            }
        }
        state_in[cfg.entry().index()] = s0;
    }
    let mut changed = true;
    let mut reported_merge = DenseBitSet::new(n);
    let mut iterations = 0usize;
    while changed {
        changed = false;
        iterations += 1;
        if iterations > 4 * n + 8 {
            break; // conflicts oscillate at most once; safety net
        }
        for bi in 0..n {
            let b = BlockId::from_index(bi);
            let entry_state = state_in[bi];
            if entry_state == State::Unknown {
                continue;
            }
            let mut sink = Vec::new();
            let tops: &[&SpillPoint] = if b == cfg.entry() { &[] } else { &top[bi] };
            let mut s = apply(entry_state, tops, &mut sink);
            // Busy body: must be in saved state.
            if busy.contains(bi) && s != State::Saved {
                sink.push(PlacementError::BusyNotSaved { reg, block: b });
            }
            s = apply(s, &bottom[bi], &mut sink);
            // Returns must be in original state.
            if cfg.exit_blocks().contains(&b) && s == State::Saved {
                sink.push(PlacementError::NotRestoredAtExit { reg, block: b });
            }
            for e in sink {
                if !errors.contains(&e) {
                    errors.push(e);
                }
            }
            for &eid in cfg.succ_edges(b) {
                let mut sink = Vec::new();
                let to = cfg.edge(eid).to;
                let after = apply(s, &on_edge[eid.index()], &mut sink);
                for e in sink {
                    if !errors.contains(&e) {
                        errors.push(e);
                    }
                }
                let merged = state_in[to.index()].merge(after);
                if merged != state_in[to.index()] {
                    state_in[to.index()] = merged;
                    changed = true;
                }
                if merged == State::Conflict && reported_merge.insert(to.index()) {
                    errors.push(PlacementError::InconsistentMerge { reg, block: to });
                }
            }
        }
    }
}

/// Runs every technique through the retired implementations and verifies
/// the results — the frozen form of [`crate::run_suite_priced`].
///
/// # Panics
///
/// Panics if any produced placement fails validity checking.
pub fn run_suite_priced_reference(
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    costs: &SpillCostModel,
) -> PlacementSuite {
    let entry_exit = entry_exit_placement(cfg, usage);
    let chow = chow_shrink_wrap_reference(cfg, cyclic, usage);
    debug_assert_eq!(chow, chow_shrink_wrap_with(cfg, cyclic, usage));
    let hierarchical_exec = hierarchical_placement_vs_reference(
        cfg,
        pst,
        usage,
        profile,
        CostModel::ExecutionCount,
        costs,
        &chow,
    );
    let hierarchical_jump = hierarchical_placement_vs_reference(
        cfg,
        pst,
        usage,
        profile,
        CostModel::JumpEdge,
        costs,
        &chow,
    );

    for (name, p) in [
        ("entry_exit", &entry_exit),
        ("chow", &chow),
        ("hierarchical_exec", &hierarchical_exec.placement),
        ("hierarchical_jump", &hierarchical_jump.placement),
    ] {
        let errs = check_placement_reference(cfg, usage, p);
        assert!(errs.is_empty(), "{name} placement invalid: {errs:?}\n{p}");
    }

    let predicted = [
        placement_cost_with_reference(CostModel::JumpEdge, costs, cfg, profile, &entry_exit),
        placement_cost_with_reference(CostModel::JumpEdge, costs, cfg, profile, &chow),
        placement_cost_with_reference(
            CostModel::JumpEdge,
            costs,
            cfg,
            profile,
            &hierarchical_exec.placement,
        ),
        placement_cost_with_reference(
            CostModel::JumpEdge,
            costs,
            cfg,
            profile,
            &hierarchical_jump.placement,
        ),
    ];

    PlacementSuite {
        entry_exit,
        chow,
        hierarchical_exec,
        hierarchical_jump,
        predicted,
    }
}

/// [`crate::placement_cost`]'s retired sibling for the execution-count
/// path (shared implementation is cheap; kept for completeness of the
/// frozen suite).
pub fn placement_model_cost_reference(
    model: CostModel,
    cfg: &Cfg,
    profile: &EdgeProfile,
    placement: &Placement,
    shares: &EdgeSharesReference,
) -> Cost {
    placement
        .points()
        .iter()
        .map(|p| location_cost(model, cfg, profile, p.loc, shares.share(p.loc)))
        .sum()
}
