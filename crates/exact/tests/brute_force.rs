//! Differential test: on tiny random CFGs the branch-and-bound solver
//! must agree exactly with brute-force enumeration of every decision
//! variable, on every registered target (plus the unregistered "tiny"
//! one) and under both cost models.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use spillopt_core::{
    check_placement, placement_cost_with, CalleeSavedUsage, CostModel, SpillCostModel,
};
use spillopt_exact::{brute_force_optimum, solve_exact, ExactLimits, ExactOutcome};
use spillopt_ir::{Cfg, Cond, Function, FunctionBuilder, PReg, Reg};
use spillopt_targets::{registry, spec_by_name};

fn random_function_attempt(rng: &mut SmallRng, num_blocks: usize) -> Function {
    let mut fb = FunctionBuilder::new("tiny", 0);
    let blocks: Vec<_> = (0..num_blocks).map(|_| fb.create_block(None)).collect();
    for (i, &b) in blocks.iter().enumerate() {
        fb.switch_to(b);
        let x = fb.li(i as i64);
        // The last block always returns so an exit exists; others pick a
        // random terminator (possibly forming loops or critical edges).
        let choice = if i + 1 == num_blocks {
            0
        } else {
            rng.gen_range(0..4)
        };
        match choice {
            0 => fb.ret(None),
            1 => fb.jump(blocks[rng.gen_range(0..num_blocks)]),
            _ => {
                let taken = rng.gen_range(0..num_blocks);
                let fallthrough = rng.gen_range(0..num_blocks);
                if taken == fallthrough {
                    fb.jump(blocks[taken]);
                } else {
                    fb.branch(
                        Cond::Lt,
                        Reg::Virt(x),
                        Reg::Virt(x),
                        blocks[taken],
                        blocks[fallthrough],
                    );
                }
            }
        }
    }
    fb.finish()
}

/// Whether every block is reachable from entry and reaches an exit —
/// the invariant the IR verifier enforces on real input (and that the
/// random-walk profiler's termination depends on).
fn cfg_is_valid(cfg: &Cfg) -> bool {
    let n = cfg.num_blocks();
    let mut from_entry = vec![false; n];
    let mut stack = vec![cfg.entry()];
    from_entry[cfg.entry().index()] = true;
    while let Some(b) = stack.pop() {
        for &e in cfg.succ_edges(b) {
            let to = cfg.edge(e).to;
            if !from_entry[to.index()] {
                from_entry[to.index()] = true;
                stack.push(to);
            }
        }
    }
    let mut to_exit = vec![false; n];
    let mut stack: Vec<_> = cfg.exit_blocks().to_vec();
    for &b in cfg.exit_blocks() {
        to_exit[b.index()] = true;
    }
    while let Some(b) = stack.pop() {
        for p in cfg.pred_blocks(b) {
            if !to_exit[p.index()] {
                to_exit[p.index()] = true;
                stack.push(p);
            }
        }
    }
    (0..n).all(|b| from_entry[b] && to_exit[b])
}

/// Draws random functions until one satisfies the verifier's
/// reachability invariant (rejection sampling keeps the shapes as
/// adversarial as the unconstrained generator allows).
fn random_function(rng: &mut SmallRng, num_blocks: usize) -> Function {
    for _ in 0..200 {
        let func = random_function_attempt(rng, num_blocks);
        if cfg_is_valid(&Cfg::compute(&func)) {
            return func;
        }
    }
    panic!("no valid {num_blocks}-block CFG in 200 draws");
}

fn random_usage(rng: &mut SmallRng, num_blocks: usize, num_regs: usize) -> CalleeSavedUsage {
    let mut usage = CalleeSavedUsage::new();
    for r in 0..num_regs {
        let reg = PReg::new(11 + r as u8);
        for b in 0..num_blocks {
            if rng.gen_bool(0.4) {
                usage.set_busy(reg, spillopt_ir::BlockId::from_index(b), num_blocks);
            }
        }
    }
    usage
}

fn specs() -> Vec<(String, SpillCostModel)> {
    let mut specs: Vec<(String, SpillCostModel)> = registry()
        .into_iter()
        .map(|s| (s.name.to_string(), s.costs))
        .collect();
    if let Some(tiny) = spec_by_name("tiny") {
        specs.push((tiny.name.to_string(), tiny.costs));
    }
    specs
}

/// Runs the differential comparison for one generated case; returns how
/// many (target, model) combinations were actually brute-forced.
fn compare_case(seed: u64, num_blocks: usize, num_regs: usize, max_states: u64) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    let func = random_function(&mut rng, num_blocks);
    let cfg = Cfg::compute(&func);
    let usage = random_usage(&mut rng, num_blocks, num_regs);
    let walks = rng.gen_range(0..60);
    let profile = spillopt_profile::random_walk_profile(&cfg, walks, 24, seed ^ 0x5eed);

    let limits = ExactLimits {
        node_budget: 500_000,
        ..ExactLimits::default()
    };
    let mut compared = 0;
    for (name, costs) in specs() {
        for model in [CostModel::ExecutionCount, CostModel::JumpEdge] {
            let Some((brute_cost, _)) =
                brute_force_optimum(&cfg, &usage, &profile, model, &costs, max_states)
            else {
                continue;
            };
            let outcome = solve_exact(&cfg, &usage, &profile, model, &costs, &[], &limits);
            let sol = match outcome {
                ExactOutcome::Solved(s) => s,
                other => panic!(
                    "seed {seed} target {name} model {model:?}: \
                     tiny case not solved exactly: {other:?}"
                ),
            };
            assert_eq!(
                sol.optimum.raw(),
                brute_cost.raw(),
                "seed {seed} target {name} model {model:?}: solver found {} \
                 but exhaustive enumeration found {} (after {} nodes)",
                sol.optimum,
                brute_cost,
                sol.nodes,
            );
            assert!(
                check_placement(&cfg, &usage, &sol.placement).is_empty(),
                "seed {seed} target {name} model {model:?}: optimal placement invalid"
            );
            assert_eq!(
                placement_cost_with(model, &costs, &cfg, &profile, &sol.placement).raw(),
                sol.optimum.raw(),
                "seed {seed} target {name} model {model:?}: claimed optimum does not \
                 price back to the placement's cost"
            );
            compared += 1;
        }
    }
    compared
}

#[test]
fn one_register_up_to_six_blocks() {
    let mut compared = 0;
    for seed in 0..40 {
        let num_blocks = 2 + (seed as usize % 5);
        compared += compare_case(1000 + seed, num_blocks, 1, 1 << 18);
    }
    assert!(compared > 200, "only {compared} comparisons ran");
}

#[test]
fn two_registers_up_to_four_blocks() {
    let mut compared = 0;
    for seed in 0..24 {
        let num_blocks = 2 + (seed as usize % 3);
        compared += compare_case(2000 + seed, num_blocks, 2, 1 << 19);
    }
    assert!(compared > 100, "only {compared} comparisons ran");
}

/// Three registers on two-block CFGs: with AArch64's `pair_size == 2`
/// this exercises the pairing branch-and-bound (`R > pair_size`), where
/// `ceil(n / 2)` couples registers non-linearly.
#[test]
fn three_registers_two_blocks() {
    let mut compared = 0;
    for seed in 0..30 {
        compared += compare_case(3000 + seed, 2, 3, 1 << 19);
    }
    assert!(compared > 150, "only {compared} comparisons ran");
}
