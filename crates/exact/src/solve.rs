//! The exact solver: pooled-cut fast paths plus branch and bound over
//! the jump-sharing / instruction-pairing coupling.

use std::fmt;

use spillopt_core::{
    check_placement, placement_cost_with, CalleeSavedUsage, Cost, CostModel, Placement,
    SpillCostModel, SpillPoint,
};
use spillopt_ir::{Cfg, PReg};
use spillopt_profile::EdgeProfile;

use crate::cut::{solve_cut, EdgeDecision, RelaxWeights};
use crate::model::{Fix, Model};

/// Size and effort limits for [`solve_exact`].
#[derive(Clone, Copy, Debug)]
pub struct ExactLimits {
    /// Functions with more blocks than this are skipped.
    pub max_blocks: usize,
    /// Functions with more live callee-saved registers than this are
    /// skipped.
    pub max_regs: usize,
    /// Branch-and-bound node budget; exhausting it degrades the result
    /// from a certified optimum to an uncertified upper bound.
    pub node_budget: u64,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            max_blocks: 48,
            max_regs: 13,
            node_budget: 2_000,
        }
    }
}

/// Why [`solve_exact`] declined to solve a function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SkipReason {
    /// The CFG exceeds [`ExactLimits::max_blocks`].
    TooManyBlocks {
        /// Blocks in the function.
        blocks: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The function keeps more registers live than
    /// [`ExactLimits::max_regs`].
    TooManyRegs {
        /// Live callee-saved registers in the function.
        regs: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::TooManyBlocks { blocks, limit } => {
                write!(f, "{blocks} blocks exceeds the exact-solver limit {limit}")
            }
            SkipReason::TooManyRegs { regs, limit } => {
                write!(f, "{regs} registers exceeds the exact-solver limit {limit}")
            }
        }
    }
}

/// A placement together with its price and the search effort spent.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    /// The placement's cost under the requested model (certified
    /// minimal only in [`ExactOutcome::Solved`]).
    pub optimum: Cost,
    /// A placement achieving [`ExactSolution::optimum`]; always passes
    /// [`spillopt_core::check_placement`].
    pub placement: Placement,
    /// Branch-and-bound nodes evaluated (0 when a fast path applied).
    pub nodes: u64,
}

/// Result of an exact-solve attempt.
#[derive(Clone, Debug)]
pub enum ExactOutcome {
    /// The search completed: the cost is the certified minimum.
    Solved(ExactSolution),
    /// The node budget ran out: the cost is only an upper bound.
    Bounded(ExactSolution),
    /// The function was out of the configured size envelope.
    Skipped(SkipReason),
}

impl ExactOutcome {
    /// The certified solution, if the search completed.
    pub fn solved(&self) -> Option<&ExactSolution> {
        match self {
            ExactOutcome::Solved(s) => Some(s),
            _ => None,
        }
    }
}

/// One branch-and-bound decision unit: registers proven to share an
/// optimal state assignment, with the relaxation pricing for the group.
struct Class {
    regs: Vec<PReg>,
    fixes: Vec<Fix>,
    weights: RelaxWeights,
}

struct Search<'m, 'a> {
    model: &'m Model<'a>,
    usage: &'m CalleeSavedUsage,
    /// Indices of transitions carrying a jump-block charge (critical
    /// jump edges under the jump-edge model) — the first branching
    /// dimension.
    jump_transitions: Vec<usize>,
    /// Positions touched by at least one transition with nonzero save,
    /// restore, or jump weight — the only variables worth branching on.
    weighted: Vec<bool>,
    /// Sum of weights incident to each position (branching tiebreak).
    incident: Vec<u128>,
    /// Whether pairing couples registers (`pair_size ≥ 2`): adds the
    /// union-cut lower bound and the replicated-union upper bound, and
    /// enables the position-variable branching dimension.
    use_union: bool,
    best: Option<(Cost, Placement)>,
    nodes: u64,
    budget: u64,
    exhausted: bool,
}

impl<'m, 'a> Search<'m, 'a> {
    /// Records `placement` if it beats the incumbent; returns its cost.
    fn offer(&mut self, placement: Placement) -> Cost {
        let cost = self.model.true_cost(&placement);
        if self.best.as_ref().is_none_or(|(b, _)| cost.raw() < b.raw()) {
            self.best = Some((cost, placement));
        }
        cost
    }

    /// Offers a technique placement as the incumbent, but only when it
    /// actually validates — certifying against an invalid cheap seed
    /// would corrupt the optimum.
    fn offer_seed(&mut self, seed: &Placement) {
        if check_placement(self.model.cfg, self.usage, seed).is_empty() {
            self.offer(seed.clone());
        }
    }

    fn materialize(&self, classes: &[Class], xs: &[Vec<bool>]) -> Placement {
        let mut points: Vec<SpillPoint> = Vec::new();
        for (c, x) in classes.iter().zip(xs) {
            for &r in &c.regs {
                self.model.materialize_into(r, x, &mut points);
            }
        }
        Placement::from_points(points)
    }

    /// Union-of-classes fixes: saved where any class is pinned saved,
    /// original only where every class is pinned original.
    fn union_fixes(&self, classes: &[Class]) -> Vec<Fix> {
        let p = self.model.positions;
        let mut fixes = vec![Fix::Zero; p];
        for (i, fix) in fixes.iter_mut().enumerate() {
            if classes.iter().any(|c| c.fixes[i] == Fix::One) {
                *fix = Fix::One;
            } else if classes.iter().any(|c| c.fixes[i] == Fix::Free) {
                *fix = Fix::Free;
            }
        }
        fixes
    }

    /// Whether class assignment `x` places spill code on transition
    /// `ti` (its endpoint states differ).
    fn crosses(&self, x: &[bool], ti: usize) -> bool {
        let t = &self.model.transitions[ti];
        let from = t.from.map(|p| x[p as usize]).unwrap_or(false);
        from != x[t.to as usize]
    }

    fn node(&mut self, classes: &[Class], decisions: &[EdgeDecision]) {
        if self.exhausted {
            return;
        }
        self.nodes += 1;
        spillopt_obs::fault::budget_tick("exact_search", 1);
        if self.nodes > self.budget {
            self.exhausted = true;
            return;
        }

        // Jump blocks already committed on this path are a sunk cost.
        let sunk: u128 = self
            .jump_transitions
            .iter()
            .filter(|&&ti| decisions[ti] == EdgeDecision::Used)
            .map(|&ti| self.model.transitions[ti].jump_raw as u128)
            .sum();

        // Relaxation: independent per-class cuts under shared-resource
        // discounts, so `sunk + sum` never exceeds the true cost of any
        // placement consistent with this node's edge decisions.
        let mut lb: u128 = sunk;
        let mut args: Vec<Vec<bool>> = Vec::with_capacity(classes.len());
        for c in classes {
            let (v, x) = solve_cut(self.model, &c.fixes, &c.weights, decisions);
            lb += v;
            args.push(x);
        }
        if self.use_union {
            // Second bound: any joint assignment dominates its OR under
            // full (undiscounted) pricing, and the OR replicated to all
            // registers is itself feasible — bound and candidate in one.
            let (uv, ux) = solve_cut(
                self.model,
                &self.union_fixes(classes),
                &RelaxWeights::full(),
                decisions,
            );
            lb = lb.max(sunk + uv);
            let replicated: Vec<Vec<bool>> = classes.iter().map(|_| ux.clone()).collect();
            let replicated = self.materialize(classes, &replicated);
            self.offer(replicated);
        }
        if let Some((b, _)) = &self.best {
            if lb >= b.raw() as u128 {
                return;
            }
        }

        // Candidate: the per-class argmins priced with the real shared
        // accounting. If that meets the bound the subtree is closed.
        let joint = self.materialize(classes, &args);
        let joint_cost = self.offer(joint);
        if (joint_cost.raw() as u128) <= lb {
            return;
        }

        // First branch dimension: an undecided jump edge some argmin
        // actually crosses (the only way a jump share can undercharge).
        // Partitioning into "jump block paid, crossings free" vs "no
        // jump block, no crossings" is exhaustive, and at jump-decided
        // leaves the pair-free problem decouples into exact class cuts.
        let mut pick_edge: Option<(usize, u64)> = None;
        for &ti in &self.jump_transitions {
            if decisions[ti] != EdgeDecision::Undecided {
                continue;
            }
            if !args.iter().any(|x| self.crosses(x, ti)) {
                continue;
            }
            let w = self.model.transitions[ti].jump_raw;
            if pick_edge.is_none_or(|(_, best_w)| w > best_w) {
                pick_edge = Some((ti, w));
            }
        }
        if let Some((ti, _)) = pick_edge {
            let mut child = decisions.to_vec();
            child[ti] = EdgeDecision::Used;
            self.node(classes, &child);
            child[ti] = EdgeDecision::Forbidden;
            self.node(classes, &child);
            return;
        }

        // No undercharged jump edge remains. Without pairing the class
        // cuts are now exact, so `joint_cost <= lb` must already have
        // closed the node; reaching here means pairing (`ceil(n/pair)`)
        // is what the relaxation undercharges. Branch on a free
        // position variable: prefer positions where class argmins
        // disagree (pairing tension), break ties by incident weight.
        let mut pick: Option<(usize, usize, bool, u128, bool)> = None;
        for (ci, c) in classes.iter().enumerate() {
            for p in 0..self.model.positions {
                if c.fixes[p] != Fix::Free || !self.weighted[p] {
                    continue;
                }
                let disagree = args.iter().any(|x| x[p] != args[ci][p]);
                let better = match &pick {
                    None => true,
                    Some((_, _, _, w, d)) => (disagree, self.incident[p]) > (*d, *w),
                };
                if better {
                    pick = Some((ci, p, args[ci][p], self.incident[p], disagree));
                }
            }
        }
        let Some((ci, p, first, _, _)) = pick else {
            // Every weight-bearing variable is pinned: the joint
            // candidate above is this subtree's exact value.
            return;
        };
        for value in [first, !first] {
            let mut child: Vec<Class> = classes
                .iter()
                .map(|c| Class {
                    regs: c.regs.clone(),
                    fixes: c.fixes.clone(),
                    weights: c.weights,
                })
                .collect();
            child[ci].fixes[p] = if value { Fix::One } else { Fix::Zero };
            self.node(&child, decisions);
        }
    }
}

/// Computes a certified-minimum save/restore placement for one
/// function: the cheapest placement passing
/// [`spillopt_core::check_placement`] under
/// [`spillopt_core::placement_cost_with`]'s accounting for
/// `(cost_model, costs)`.
///
/// `seeds` are known-good placements (typically the four technique
/// outputs) used to prime the incumbent; invalid seeds are ignored.
pub fn solve_exact(
    cfg: &Cfg,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    cost_model: CostModel,
    costs: &SpillCostModel,
    seeds: &[&Placement],
    limits: &ExactLimits,
) -> ExactOutcome {
    if usage.is_empty() {
        let placement = Placement::new();
        let optimum = placement_cost_with(cost_model, costs, cfg, profile, &placement);
        return ExactOutcome::Solved(ExactSolution {
            optimum,
            placement,
            nodes: 0,
        });
    }
    if cfg.num_blocks() > limits.max_blocks {
        return ExactOutcome::Skipped(SkipReason::TooManyBlocks {
            blocks: cfg.num_blocks(),
            limit: limits.max_blocks,
        });
    }
    if usage.num_regs() > limits.max_regs {
        return ExactOutcome::Skipped(SkipReason::TooManyRegs {
            regs: usage.num_regs(),
            limit: limits.max_regs,
        });
    }

    let model = Model::build(cfg, profile, cost_model, costs);
    let regs: Vec<(PReg, Vec<usize>)> = usage
        .regs()
        .map(|(r, s)| (r, s.iter_ones().collect()))
        .collect();
    let r_total = regs.len();
    let pair = (costs.pair_size.max(1)) as usize;

    // Fast path: every register fits one paired instruction, so an
    // optimal placement treats them as one unit — a single pooled cut
    // over the union of busy sets is exact.
    if r_total <= pair {
        let mut union: Vec<usize> = regs.iter().flat_map(|(_, b)| b.iter().copied()).collect();
        union.sort_unstable();
        union.dedup();
        let fixes = model.fixes_for(union.into_iter());
        let (cut, x) = solve_cut(&model, &fixes, &RelaxWeights::full(), &[]);
        let mut points = Vec::new();
        for (r, _) in &regs {
            model.materialize_into(*r, &x, &mut points);
        }
        let placement = Placement::from_points(points);
        let optimum = model.true_cost(&placement);
        debug_assert_eq!(optimum.raw() as u128, cut);
        return ExactOutcome::Solved(ExactSolution {
            optimum,
            placement,
            nodes: 0,
        });
    }

    // Decision units. Without pairing, registers with identical busy
    // sets provably share an optimal assignment (the objective is
    // linear per register plus a concave once-per-edge jump term), so
    // they collapse into one multiplicity-weighted class. With pairing,
    // `ceil(n / pair)` is not concave and every register stays its own
    // unit.
    let classes: Vec<Class> = if pair == 1 {
        let mut grouped: Vec<(Vec<usize>, Vec<PReg>)> = Vec::new();
        for (r, busy) in &regs {
            match grouped.iter_mut().find(|(b, _)| b == busy) {
                Some((_, members)) => members.push(*r),
                None => grouped.push((busy.clone(), vec![*r])),
            }
        }
        grouped
            .into_iter()
            .map(|(busy, members)| {
                let m = members.len() as u64;
                Class {
                    regs: members,
                    fixes: model.fixes_for(busy.into_iter()),
                    weights: RelaxWeights {
                        mult: m,
                        div: 1,
                        jump_num: m,
                        jump_den: r_total as u64,
                    },
                }
            })
            .collect()
    } else {
        regs.iter()
            .map(|(r, busy)| Class {
                regs: vec![*r],
                fixes: model.fixes_for(busy.iter().copied()),
                weights: RelaxWeights {
                    mult: 1,
                    div: pair as u64,
                    jump_num: 1,
                    jump_den: r_total as u64,
                },
            })
            .collect()
    };

    let mut weighted = vec![false; model.positions];
    let mut incident = vec![0u128; model.positions];
    for t in &model.transitions {
        let w = t.save_raw as u128 + t.restore_raw as u128 + t.jump_raw as u128;
        if w != 0 {
            if let Some(from) = t.from {
                weighted[from as usize] = true;
                incident[from as usize] += w;
            }
            weighted[t.to as usize] = true;
            incident[t.to as usize] += w;
        }
    }
    let jump_transitions: Vec<usize> = model
        .transitions
        .iter()
        .enumerate()
        .filter(|(_, t)| t.jump_raw > 0)
        .map(|(ti, _)| ti)
        .collect();
    let mut search = Search {
        model: &model,
        usage,
        jump_transitions,
        weighted,
        incident,
        use_union: pair > 1,
        best: None,
        nodes: 0,
        budget: limits.node_budget.max(1),
        exhausted: false,
    };
    for seed in seeds {
        search.offer_seed(seed);
    }
    let decisions = vec![EdgeDecision::Undecided; model.transitions.len()];
    {
        let _s = spillopt_obs::span("exact_search");
        search.node(&classes, &decisions);
    }
    spillopt_obs::count("exact_bnb_nodes", search.nodes);

    let (optimum, placement) = search
        .best
        .expect("root node always materializes a feasible candidate");
    let solution = ExactSolution {
        optimum,
        placement,
        nodes: search.nodes,
    };
    if search.exhausted {
        ExactOutcome::Bounded(solution)
    } else {
        ExactOutcome::Solved(solution)
    }
}
