//! Exhaustive enumeration over the decision variables: the oracle the
//! branch-and-bound solver is differentially tested against.
//!
//! This deliberately shares nothing with the solver beyond the
//! position/transition representation itself: no pooling, no
//! relaxation, no search — every register's every free position is
//! enumerated independently, and every candidate is priced with the
//! authoritative [`spillopt_core::placement_cost_with`].

use spillopt_core::{CalleeSavedUsage, Cost, CostModel, Placement, SpillCostModel};
use spillopt_ir::Cfg;
use spillopt_profile::EdgeProfile;

use crate::model::{Fix, Model};

/// Enumerates all valid placements (as per-register state assignments)
/// and returns the cheapest, or `None` when the state space exceeds
/// `max_states`. Only viable for tiny functions: the state count is
/// `2^(free positions × registers)`.
pub fn brute_force_optimum(
    cfg: &Cfg,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    cost_model: CostModel,
    costs: &SpillCostModel,
    max_states: u64,
) -> Option<(Cost, Placement)> {
    let model = Model::build(cfg, profile, cost_model, costs);
    // Per register: the pinned baseline assignment and its free slots.
    let mut base: Vec<Vec<bool>> = Vec::new();
    let mut free: Vec<(usize, usize)> = Vec::new(); // (register, position)
    let regs: Vec<_> = usage.regs().map(|(r, _)| r).collect();
    for (ri, (_, busy)) in usage.regs().enumerate() {
        let fixes = model.fixes_for(busy.iter_ones());
        let mut x = vec![false; model.positions];
        for (p, f) in fixes.iter().enumerate() {
            match f {
                Fix::One => x[p] = true,
                Fix::Zero => {}
                Fix::Free => free.push((ri, p)),
            }
        }
        base.push(x);
    }
    if free.len() >= 63 || 1u64 << free.len() > max_states {
        return None;
    }

    let mut best: Option<(Cost, Placement)> = None;
    let mut xs = base.clone();
    for mask in 0u64..(1u64 << free.len()) {
        for (x, b) in xs.iter_mut().zip(&base) {
            x.copy_from_slice(b);
        }
        for (bit, &(ri, p)) in free.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                xs[ri][p] = true;
            }
        }
        let mut points = Vec::new();
        for (ri, &r) in regs.iter().enumerate() {
            model.materialize_into(r, &xs[ri], &mut points);
        }
        let placement = Placement::from_points(points);
        let cost = model.true_cost(&placement);
        if best.as_ref().is_none_or(|(b, _)| cost.raw() < b.raw()) {
            best = Some((cost, placement));
        }
    }
    best
}
