//! # spillopt-exact
//!
//! Certified-optimal callee-saved save/restore placement: a
//! branch-and-bound / implicit-ILP solver over per-location decision
//! variables, used as the stress subsystem's fourth oracle (the
//! *optimality-gap* oracle).
//!
//! ## The model
//!
//! A placement is valid exactly when, for every callee-saved register,
//! there is a consistent assignment of a binary *state* (original /
//! saved) to three positions per block — before the block-top location,
//! the busy body, and after the block-bottom location — such that busy
//! bodies are saved, returns are original, the procedure entry starts
//! original, and every control-flow edge delivers the state its target
//! expects ([`spillopt_core::check_placement`]'s abstract
//! interpretation, including the entry-top *once per call* rule). Save
//! and restore points are then forced at every state transition, so
//! minimizing placement cost is an optimization over one boolean per
//! register per position: the availability constraint "busy bodies
//! execute saved" pins variables to 1, the anticipability constraint
//! "returns execute original" pins variables to 0, and everything else
//! is free.
//!
//! ## The solver
//!
//! Per register the problem is a directed s–t min cut (save and restore
//! weights are the asymmetric arc capacities). Registers couple only
//! through [`spillopt_core::placement_cost_with`]'s shared accounting:
//! one jump block per distinct critical jump edge, and `ceil(n /
//! pair_size)` paired instructions per co-located group. Two regimes
//! are solved exactly without search: when every busy register fits one
//! paired instruction (`n ≤ pair_size`) the joint optimum is a single
//! pooled cut over the union of busy sets, and when `pair_size == 1`
//! registers with identical busy sets provably share one optimal
//! assignment, so they collapse into multiplicity classes. The
//! remaining coupling is closed by branch and bound over the *shared
//! resources themselves*. The primary branching dimension is the
//! fixed-charge jump block: each critical jump edge is `Undecided`
//! (its charge relaxed to a per-class share — a true lower bound),
//! `Used` (charged once as a sunk cost, after which any class crosses
//! it for free), or `Forbidden` (no spill code may cross, encoded as
//! infinite-capacity equality arcs). At jump-decided nodes the
//! `pair_size == 1` problem decouples into exact per-class cuts, so
//! the per-class argmins priced with the real shared accounting close
//! the node; only instruction pairing (`ceil(n / pair_size)` with
//! `pair_size ≥ 2`) can keep a gap open, and that residual dimension
//! branches on individual position variables. A completed search
//! certifies the optimum; an exhausted node budget degrades to an
//! uncertified upper bound the oracle skips.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod brute;
mod cut;
mod model;
mod solve;

pub use brute::brute_force_optimum;
pub use solve::{solve_exact, ExactLimits, ExactOutcome, ExactSolution, SkipReason};
