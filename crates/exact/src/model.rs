//! The position/transition model: valid placements as binary state
//! assignments, with target-priced transition weights.

use spillopt_core::{
    location_exec_count, CostModel, Placement, SpillCostModel, SpillKind, SpillLoc, SpillPoint,
};
use spillopt_ir::{BlockId, Cfg, PReg};
use spillopt_profile::EdgeProfile;

/// Fixed/free status of one (register, position) decision variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Fix {
    /// Unconstrained.
    Free,
    /// Pinned to original state.
    Zero,
    /// Pinned to saved state.
    One,
}

/// One state transition location: spill code at `loc` flips the state
/// between positions `from` and `to`. `from == None` is the constant
/// original state at the procedure entry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Transition {
    pub from: Option<u32>,
    pub to: u32,
    pub loc: SpillLoc,
    /// Scaled cost of one save instruction stream here
    /// (`weight × exec count`, in [`spillopt_core::Cost`] raw units).
    pub save_raw: u64,
    /// Scaled cost of one restore instruction stream here.
    pub restore_raw: u64,
    /// Scaled cost of the jump block this location requires (nonzero
    /// only on critical jump edges under [`CostModel::JumpEdge`]),
    /// charged once per edge no matter how many registers place here.
    pub jump_raw: u64,
}

/// The whole per-function model: positions, priced transitions, and the
/// fixes shared by every register (entry/exit conventions).
#[derive(Debug)]
pub(crate) struct Model<'a> {
    pub cfg: &'a Cfg,
    pub profile: &'a EdgeProfile,
    pub costs: SpillCostModel,
    pub cost_model: CostModel,
    /// `3 × num_blocks`: body, out, and in positions per block.
    pub positions: usize,
    pub transitions: Vec<Transition>,
    /// Fixes every register shares: exits pinned original, plus the
    /// entry's unused `in` slot (the entry starts from the constant).
    pub base_fix: Vec<Fix>,
}

impl<'a> Model<'a> {
    /// State position of block `b`'s body (between top and bottom).
    pub fn body(&self, b: usize) -> usize {
        b
    }

    /// State position after block `b`'s bottom location.
    pub fn out(&self, b: usize) -> usize {
        self.cfg.num_blocks() + b
    }

    /// State position before block `b`'s top location (merge state).
    pub fn inp(&self, b: usize) -> usize {
        2 * self.cfg.num_blocks() + b
    }

    /// Builds the model for one function under one target pricing.
    pub fn build(
        cfg: &'a Cfg,
        profile: &'a EdgeProfile,
        cost_model: CostModel,
        costs: &SpillCostModel,
    ) -> Self {
        let n = cfg.num_blocks();
        let entry = cfg.entry().index();
        let mut m = Model {
            cfg,
            profile,
            costs: *costs,
            cost_model,
            positions: 3 * n,
            transitions: Vec::with_capacity(2 * n + cfg.num_edges()),
            base_fix: vec![Fix::Free; 3 * n],
        };
        // The entry has no merge position: back edges into the entry
        // deliver the post-top state directly. Pin the unused slot so
        // no search ever branches on it.
        let entry_inp = m.inp(entry);
        m.base_fix[entry_inp] = Fix::Zero;
        for &b in cfg.exit_blocks() {
            let out = m.out(b.index());
            m.base_fix[out] = Fix::Zero;
        }

        let priced = |kind: SpillKind, loc: SpillLoc| -> u64 {
            let count = location_exec_count(cfg, profile, loc);
            costs.insn(cfg, kind, loc).of(count, 1).raw()
        };
        for b in 0..n {
            let top = SpillLoc::BlockTop(BlockId::from_index(b));
            let from = if b == entry {
                None
            } else {
                Some(m.inp(b) as u32)
            };
            m.transitions.push(Transition {
                from,
                to: m.body(b) as u32,
                loc: top,
                save_raw: priced(SpillKind::Save, top),
                restore_raw: priced(SpillKind::Restore, top),
                jump_raw: 0,
            });
            let bottom = SpillLoc::BlockBottom(BlockId::from_index(b));
            m.transitions.push(Transition {
                from: Some(m.body(b) as u32),
                to: m.out(b) as u32,
                loc: bottom,
                save_raw: priced(SpillKind::Save, bottom),
                restore_raw: priced(SpillKind::Restore, bottom),
                jump_raw: 0,
            });
        }
        for (eid, edge) in cfg.edges() {
            let loc = SpillLoc::OnEdge(eid);
            let to = if edge.to.index() == entry {
                m.body(entry)
            } else {
                m.inp(edge.to.index())
            };
            let jump_raw = if cost_model == CostModel::JumpEdge && cfg.needs_jump_block(eid) {
                costs.jump.of(profile.edge_count(eid), 1).raw()
            } else {
                0
            };
            m.transitions.push(Transition {
                from: Some(m.out(edge.from.index()) as u32),
                to: to as u32,
                loc,
                save_raw: priced(SpillKind::Save, loc),
                restore_raw: priced(SpillKind::Restore, loc),
                jump_raw,
            });
        }
        m
    }

    /// The base fixes plus `busy` bodies pinned saved, for one register
    /// (or one pooled class) with the given busy block set.
    pub fn fixes_for(&self, busy: impl Iterator<Item = usize>) -> Vec<Fix> {
        let mut fixes = self.base_fix.clone();
        for b in busy {
            fixes[self.body(b)] = Fix::One;
        }
        fixes
    }

    /// Emits the spill points register `reg` needs under state
    /// assignment `x` (one bool per position) into `points`.
    pub fn materialize_into(&self, reg: PReg, x: &[bool], points: &mut Vec<SpillPoint>) {
        for t in &self.transitions {
            let from = t.from.map(|p| x[p as usize]).unwrap_or(false);
            let to = x[t.to as usize];
            if from != to {
                let kind = if to {
                    SpillKind::Save
                } else {
                    SpillKind::Restore
                };
                points.push(SpillPoint {
                    reg,
                    kind,
                    loc: t.loc,
                });
            }
        }
    }

    /// The authoritative price of a placement: the same shared-jump,
    /// paired-instruction accounting the rest of the system uses.
    pub fn true_cost(&self, placement: &Placement) -> spillopt_core::Cost {
        spillopt_core::placement_cost_with(
            self.cost_model,
            &self.costs,
            self.cfg,
            self.profile,
            placement,
        )
    }
}
