//! Directed s–t min cut over the position graph: the per-register
//! relaxation (and, in the pooled regimes, the exact solution).

use crate::model::{Fix, Model};

/// Effectively-infinite capacity for pinned variables (far above any
/// sum of real costs, far below overflow under addition).
const INF: u128 = u128::MAX >> 3;

/// How one register's (or one pooled class's) arcs are priced in the
/// relaxation: instruction weights scaled by `mult / div`, the jump
/// share by `jump_num / jump_den`. Floor division only ever *lowers*
/// the relaxation, so the bound stays sound.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RelaxWeights {
    pub mult: u64,
    pub div: u64,
    pub jump_num: u64,
    pub jump_den: u64,
}

impl RelaxWeights {
    /// Exact single-register pricing: full weights, full jump.
    pub fn full() -> Self {
        RelaxWeights {
            mult: 1,
            div: 1,
            jump_num: 1,
            jump_den: 1,
        }
    }
}

/// A tiny Edmonds–Karp max-flow. The graphs here have `3·blocks + 2`
/// nodes and a handful of arcs per block/edge, so asymptotics are
/// irrelevant; exact `u128` capacities are what matters.
struct Flow {
    adj: Vec<Vec<u32>>,
    to: Vec<u32>,
    cap: Vec<u128>,
}

impl Flow {
    fn new(n: usize) -> Self {
        Flow {
            adj: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
        }
    }

    fn add(&mut self, u: usize, v: usize, c: u128) {
        if c == 0 {
            return;
        }
        let i = self.to.len() as u32;
        self.adj[u].push(i);
        self.to.push(v as u32);
        self.cap.push(c);
        self.adj[v].push(i + 1);
        self.to.push(u as u32);
        self.cap.push(0);
    }

    fn max_flow(&mut self, s: usize, t: usize) -> u128 {
        let n = self.adj.len();
        let mut total: u128 = 0;
        let mut augmentations: u64 = 0;
        let mut pred = vec![u32::MAX; n];
        loop {
            for p in pred.iter_mut() {
                *p = u32::MAX;
            }
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s as u32);
            pred[s] = u32::MAX - 1;
            'bfs: while let Some(u) = queue.pop_front() {
                for &a in &self.adj[u as usize] {
                    let v = self.to[a as usize];
                    if self.cap[a as usize] > 0 && pred[v as usize] == u32::MAX {
                        pred[v as usize] = a;
                        if v as usize == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if pred[t] == u32::MAX {
                spillopt_obs::count("maxflow_augmentations", augmentations);
                return total;
            }
            // Bottleneck along the predecessor chain, then augment.
            let mut bottleneck = u128::MAX;
            let mut v = t;
            while v != s {
                let a = pred[v] as usize;
                bottleneck = bottleneck.min(self.cap[a]);
                v = self.to[a ^ 1] as usize;
            }
            let mut v = t;
            while v != s {
                let a = pred[v] as usize;
                self.cap[a] -= bottleneck;
                self.cap[a ^ 1] += bottleneck;
                v = self.to[a ^ 1] as usize;
            }
            total += bottleneck;
            augmentations += 1;
        }
    }

    /// The source side of the min cut: nodes reachable from `s` in the
    /// residual graph.
    fn source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &a in &self.adj[u] {
                let v = self.to[a as usize] as usize;
                if self.cap[a as usize] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

/// Branch-and-bound state of one critical jump edge's jump block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EdgeDecision {
    /// Not yet branched on: relaxed to the per-class share.
    Undecided,
    /// Jump block charged once (sunk by the search node); classes cross
    /// at zero marginal jump cost.
    Used,
    /// No jump block: no register may place spill code on this edge.
    Forbidden,
}

/// Solves one register's (or pooled class's) relaxed placement problem
/// under `fixes`: returns the minimum relaxed cost and an achieving
/// state assignment (`true` = saved).
///
/// Convention: source side = saved. A save weight is charged when a
/// transition's `to` is saved while `from` is original (arc `to →
/// from`), a restore when `from` is saved while `to` is original (arc
/// `from → to`); pinned-saved positions hang off the source, pinned-
/// original positions off the sink, both at infinite capacity.
///
/// `decisions` is indexed parallel to the model's transitions (empty =
/// all undecided) and governs only jump-bearing transitions: an
/// `Undecided` edge adds the `jump_num/jump_den` share to both
/// directions, a `Used` edge adds nothing (its full price was sunk by
/// the caller), and a `Forbidden` edge pins its endpoints to the same
/// state.
pub(crate) fn solve_cut(
    model: &Model<'_>,
    fixes: &[Fix],
    w: &RelaxWeights,
    decisions: &[EdgeDecision],
) -> (u128, Vec<bool>) {
    let p = model.positions;
    let (s, t) = (p, p + 1);
    let mut g = Flow::new(p + 2);
    let scale = |raw: u64| -> u128 { (raw as u128 * w.mult as u128) / w.div as u128 };
    let jump = |raw: u64| -> u128 { (raw as u128 * w.jump_num as u128) / w.jump_den as u128 };
    for (ti, tr) in model.transitions.iter().enumerate() {
        let decision = if tr.jump_raw > 0 {
            decisions
                .get(ti)
                .copied()
                .unwrap_or(EdgeDecision::Undecided)
        } else {
            EdgeDecision::Undecided
        };
        if tr.jump_raw > 0 && decision == EdgeDecision::Forbidden {
            // No spill code may cross: force both endpoints equal.
            if let Some(u) = tr.from {
                g.add(u as usize, tr.to as usize, INF);
                g.add(tr.to as usize, u as usize, INF);
            }
            continue;
        }
        let jump_extra = if tr.jump_raw > 0 && decision == EdgeDecision::Undecided {
            jump(tr.jump_raw)
        } else {
            0
        };
        let save_cap = scale(tr.save_raw) + jump_extra;
        let restore_cap = scale(tr.restore_raw) + jump_extra;
        match tr.from {
            // Constant-original endpoint (procedure entry): a save is a
            // unary charge on the target being saved; a restore out of
            // the constant is impossible.
            None => g.add(tr.to as usize, t, save_cap),
            Some(u) => {
                g.add(u as usize, tr.to as usize, restore_cap);
                g.add(tr.to as usize, u as usize, save_cap);
            }
        }
    }
    for (i, f) in fixes.iter().enumerate() {
        match f {
            Fix::Free => {}
            Fix::One => g.add(s, i, INF),
            Fix::Zero => g.add(i, t, INF),
        }
    }
    let cost = g.max_flow(s, t);
    let mut side = g.source_side(s);
    side.truncate(p);
    (cost, side)
}
