//! End-to-end module optimization over the stress corpus — the
//! continuous form of the perf-trajectory harness (`spillopt bench`).
//!
//! Two arms per target: the current pipeline and the frozen pre-rewrite
//! reference (`spillopt_driver::refimpl`). The committed trajectory
//! point lives in `BENCH_PR4.json`; this bench tracks the same quantity
//! under criterion's timing loop for local comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spillopt_driver::driver::{DriverConfig, ProfileSource};
use spillopt_driver::refimpl::optimize_module_reference;
use spillopt_driver::OptimizerBuilder;
use spillopt_ir::Module;
use spillopt_targets::TargetSpec;
use std::hint::black_box;

/// A small stress corpus (generated outside the timed region).
fn corpus(spec: &TargetSpec, scale: u32, functions: usize) -> Vec<Module> {
    let target = spec.to_target();
    let mut modules = Vec::new();
    let mut n = 0;
    let mut seed = 0;
    while n < functions {
        let case = spillopt_stress::gen_case_scaled(&target, seed, scale);
        n += case.module.num_funcs();
        modules.push(case.module);
        seed += 1;
    }
    modules
}

fn bench_module_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("module_optimize");
    group.sample_size(10);
    let config = DriverConfig {
        threads: 1,
        profile: ProfileSource::default(),
    };
    for spec in [
        spillopt_targets::pa_risc_like(),
        spillopt_targets::aarch64_aapcs64(),
    ] {
        let modules = corpus(&spec, 8, 40);
        // Analysis reuse OFF: this bench times the cold pipeline (the
        // session arena would otherwise serve every iteration but the
        // first from cache).
        let session = OptimizerBuilder::new()
            .target_spec(spec.clone())
            .threads(1)
            .reuse_analyses(false)
            .build()
            .expect("valid session");
        group.bench_with_input(
            BenchmarkId::new("current", spec.name),
            &modules,
            |b, modules| {
                b.iter(|| {
                    for m in modules {
                        black_box(session.optimize(m).expect("optimize"));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", spec.name),
            &modules,
            |b, modules| {
                b.iter(|| {
                    for m in modules {
                        black_box(optimize_module_reference(m, &spec, &config).expect("optimize"));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_module_optimize);
criterion_main!(benches);
