//! Micro-benchmark: the bit-parallel saved-region solver versus the
//! retired per-register growth, as a function of CFG size (edge count).
//!
//! This is the isolated form of the PR's headline rewrite: one
//! membership word per block and word-op transfer functions against one
//! anticipation/availability fixpoint per callee-saved register. The
//! gap widens linearly with the number of busy registers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spillopt_core::{dataflow, solver, CalleeSavedUsage, RegWords};
use spillopt_ir::analysis::loops::sccs;
use spillopt_ir::{Cfg, DerivedCfg};
use std::hint::black_box;

/// An allocated stress function of roughly the requested scale, with
/// its callee-saved usage.
fn input_at_scale(scale: u32) -> (Cfg, DerivedCfg, CalleeSavedUsage) {
    let spec = spillopt_targets::pa_risc_like();
    let target = spec.to_target();
    // Scan a few seeds for a function that actually uses callee-saved
    // registers (deterministic).
    for seed in 0..16 {
        let case = spillopt_stress::gen_case_scaled(&target, seed, scale);
        for f in case.module.func_ids() {
            let mut func = case.module.func(f).clone();
            let cfg = Cfg::compute(&func);
            let profile = spillopt_profile::random_walk_profile(&cfg, 64, 128, seed);
            spillopt_regalloc::allocate(&mut func, &target, Some(&profile));
            let cfg = Cfg::compute(&func);
            let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
            if usage.num_regs() >= 4 {
                let derived = DerivedCfg::compute(&cfg);
                return (cfg, derived, usage);
            }
        }
    }
    panic!("no callee-saved-using stress function found");
}

fn bench_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(20);
    for scale in [1u32, 4, 16, 64] {
        let (cfg, derived, usage) = input_at_scale(scale);
        let cyclic = sccs(&cfg);
        group.throughput(Throughput::Elements(cfg.num_edges() as u64));
        group.bench_with_input(
            BenchmarkId::new("bit_parallel", cfg.num_edges()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut words =
                        RegWords::from_busy(cfg.num_blocks(), &usage).expect("<= 64 regs");
                    solver::chow_grow_all(&derived, cfg.entry().index(), &cyclic, &mut words);
                    black_box(&words);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_register", cfg.num_edges()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    for (_, busy) in usage.regs() {
                        black_box(dataflow::chow_grow(cfg, &cyclic, busy));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver_scaling);
criterion_main!(benches);
