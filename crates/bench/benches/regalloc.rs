//! The Chaitin/Briggs register allocator substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng as _;
use spillopt_benchgen::{emit_function, gen_body, EmitConfig, ShapeConfig, Style};
use spillopt_ir::Target;
use spillopt_regalloc::allocate;
use std::hint::black_box;

fn bench_regalloc(c: &mut Criterion) {
    let target = Target::default();
    let mut group = c.benchmark_group("regalloc");
    group.sample_size(20);
    for (label, budget, pressure) in [("small", 16, 4), ("medium", 60, 8), ("large", 200, 10)] {
        let shape = ShapeConfig {
            budget,
            loop_prob: 0.35,
            else_prob: 0.5,
            cold_if_prob: 0.25,
            goto_prob: 0.06,
            call_prob: 0.1,
            loop_trip: (2, 8),
            max_depth: 4,
        };
        let emit = EmitConfig {
            shape: shape.clone(),
            pressure,
            num_params: 2,
            data_slots: 4,
            style: Style::Register,
            num_handlers: 1,
            handler_goto_frac: 0.5,
            hot_segment_calls: 0,
            crossing_frac: 0.0,
            cold_crossing: 0.0,
            cold_sites: 0,
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let body = gen_body(&shape, &mut rng, 0);
        let func = emit_function(label, &target, &emit, &body, 0, 7);
        group.bench_with_input(BenchmarkId::from_parameter(label), &func, |b, func| {
            b.iter(|| {
                let mut f = func.clone();
                black_box(allocate(&mut f, &target, None));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_regalloc);
criterion_main!(benches);
