//! PST construction scaling — the Johnson-Pearson-Pingali linear-time
//! claim the paper's complexity analysis relies on. Time per block should
//! stay roughly flat as CFGs grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng as _;
use spillopt_benchgen::{emit_function, gen_body, EmitConfig, ShapeConfig, Style};
use spillopt_ir::{Cfg, Target};
use spillopt_pst::Pst;
use std::hint::black_box;

fn cfg_of_size(budget: usize) -> Cfg {
    let target = Target::default();
    let shape = ShapeConfig {
        budget,
        loop_prob: 0.3,
        else_prob: 0.5,
        cold_if_prob: 0.25,
        goto_prob: 0.08,
        call_prob: 0.0,
        loop_trip: (2, 6),
        max_depth: 6,
    };
    let emit = EmitConfig {
        shape: shape.clone(),
        pressure: 4,
        num_params: 2,
        data_slots: 2,
        style: Style::Register,
        num_handlers: 2,
        handler_goto_frac: 0.5,
        hot_segment_calls: 0,
        crossing_frac: 0.0,
        cold_crossing: 0.0,
        cold_sites: 0,
    };
    let mut rng = rand::rngs::SmallRng::seed_from_u64(budget as u64);
    let body = gen_body(&shape, &mut rng, 0);
    let func = emit_function("scaling", &target, &emit, &body, 0, 42);
    Cfg::compute(&func)
}

fn bench_pst(c: &mut Criterion) {
    let mut group = c.benchmark_group("pst_scaling");
    for budget in [32usize, 128, 512, 2048] {
        let cfg = cfg_of_size(budget);
        group.throughput(Throughput::Elements(cfg.num_blocks() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.num_blocks()),
            &cfg,
            |b, cfg| b.iter(|| black_box(Pst::compute(cfg))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pst);
criterion_main!(benches);
