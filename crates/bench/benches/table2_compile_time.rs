//! Table 2 — incremental compile time of the placement passes.
//!
//! The paper times whole GCC compilations on an HP C3000 and reports the
//! incremental seconds of shrink-wrapping and of the hierarchical
//! algorithm over entry/exit placement, plus their ratio (average 5.44×).
//! Here we time the placement decisions themselves per benchmark; the
//! comparable quantity is the optimized/shrink-wrap ratio printed by
//! `repro table2`.
//!
//! Timing convention (matching `spillopt_harness::runner` and the module
//! driver's `AnalysisCache`): CFG-derived analyses — SCCs for Chow, the
//! PST for the hierarchical pass — are shared precomputations, amortized
//! *outside* the timed region. Every technique is timed on the same
//! borrowed analyses, so the ratios compare the techniques, not their
//! analysis appetites. `pst_scaling` benches the PST build on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spillopt_bench::placement_inputs;
use spillopt_core::{
    chow_shrink_wrap_with, entry_exit_placement, hierarchical_placement_vs, CostModel,
    SpillCostModel,
};
use spillopt_ir::analysis::loops::sccs;
use spillopt_pst::Pst;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    for name in ["gzip", "mcf", "crafty", "twolf"] {
        let inputs = placement_inputs(name);
        let analyses: Vec<_> = inputs
            .iter()
            .map(|i| (sccs(&i.cfg), Pst::compute(&i.cfg)))
            .collect();
        // The hierarchical pass's final never-worse comparison consumes
        // the shrink-wrap baseline; like the SCC/PST analyses it is
        // shared precomputation, amortized outside the timed region.
        let chows: Vec<_> = inputs
            .iter()
            .zip(&analyses)
            .map(|(i, (cyclic, _))| chow_shrink_wrap_with(&i.cfg, cyclic, &i.usage))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("entry_exit", name),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    for i in inputs {
                        black_box(entry_exit_placement(&i.cfg, &i.usage));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("shrinkwrap", name),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    for (i, (cyclic, _)) in inputs.iter().zip(&analyses) {
                        black_box(chow_shrink_wrap_with(&i.cfg, cyclic, &i.usage));
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("optimized", name), &inputs, |b, inputs| {
            b.iter(|| {
                for ((i, (_, pst)), chow) in inputs.iter().zip(&analyses).zip(&chows) {
                    black_box(hierarchical_placement_vs(
                        &i.cfg,
                        pst,
                        &i.usage,
                        &i.profile,
                        CostModel::JumpEdge,
                        &SpillCostModel::UNIT,
                        chow,
                    ));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
