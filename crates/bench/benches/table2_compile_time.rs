//! Table 2 — incremental compile time of the placement passes.
//!
//! The paper times whole GCC compilations on an HP C3000 and reports the
//! incremental seconds of shrink-wrapping and of the hierarchical
//! algorithm over entry/exit placement, plus their ratio (average 5.44×).
//! Here we time the passes themselves per benchmark; the comparable
//! quantity is the optimized/shrink-wrap ratio printed by `repro table2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spillopt_bench::placement_inputs;
use spillopt_core::{chow_shrink_wrap, entry_exit_placement, hierarchical_placement, CostModel};
use spillopt_pst::Pst;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    for name in ["gzip", "mcf", "crafty", "twolf"] {
        let inputs = placement_inputs(name);
        group.bench_with_input(BenchmarkId::new("entry_exit", name), &inputs, |b, inputs| {
            b.iter(|| {
                for i in inputs {
                    black_box(entry_exit_placement(&i.cfg, &i.usage));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("shrinkwrap", name), &inputs, |b, inputs| {
            b.iter(|| {
                for i in inputs {
                    black_box(chow_shrink_wrap(&i.cfg, &i.usage));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", name), &inputs, |b, inputs| {
            b.iter(|| {
                for i in inputs {
                    let pst = Pst::compute(&i.cfg);
                    black_box(hierarchical_placement(
                        &i.cfg,
                        &pst,
                        &i.usage,
                        &i.profile,
                        CostModel::JumpEdge,
                    ));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
