//! Ablations: component costs of the hierarchical algorithm (PST
//! construction vs initial sets vs traversal) and the cost-model choice.

use criterion::{criterion_group, criterion_main, Criterion};
use spillopt_bench::placement_inputs;
use spillopt_core::{
    chow_shrink_wrap, hierarchical_placement_vs, modified_shrink_wrap,
    modified_shrink_wrap_hoisted, CostModel, SpillCostModel,
};
use spillopt_pst::Pst;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let inputs = placement_inputs("gcc");
    let mut group = c.benchmark_group("ablations");
    group.sample_size(15);

    group.bench_function("pst_only", |b| {
        b.iter(|| {
            for i in &inputs {
                black_box(Pst::compute(&i.cfg));
            }
        })
    });
    group.bench_function("initial_sets_only", |b| {
        b.iter(|| {
            for i in &inputs {
                black_box(modified_shrink_wrap(&i.cfg, &i.usage));
            }
        })
    });
    group.bench_function("initial_sets_hoisted", |b| {
        b.iter(|| {
            for i in &inputs {
                black_box(modified_shrink_wrap_hoisted(&i.cfg, &i.usage));
            }
        })
    });
    let psts: Vec<Pst> = inputs.iter().map(|i| Pst::compute(&i.cfg)).collect();
    // Shared precomputation for the traversal's never-worse baseline.
    let chows: Vec<_> = inputs
        .iter()
        .map(|i| chow_shrink_wrap(&i.cfg, &i.usage))
        .collect();
    for (label, model) in [
        ("traversal_exec_model", CostModel::ExecutionCount),
        ("traversal_jump_model", CostModel::JumpEdge),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                for ((i, pst), chow) in inputs.iter().zip(&psts).zip(&chows) {
                    black_box(hierarchical_placement_vs(
                        &i.cfg,
                        pst,
                        &i.usage,
                        &i.profile,
                        model,
                        &SpillCostModel::UNIT,
                        chow,
                    ));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
