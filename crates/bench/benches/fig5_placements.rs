//! Figure 5 — the full placement computation (all techniques) over
//! representative benchmarks, including physical insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spillopt_bench::placement_inputs;
use spillopt_core::{
    chow_shrink_wrap, hierarchical_placement_vs, insert_placement, CostModel, SpillCostModel,
};
use spillopt_pst::Pst;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(15);
    for name in ["gzip", "gcc"] {
        let inputs = placement_inputs(name);
        // The never-worse baseline is shared precomputation (the suite
        // computes it once per function anyway); PST construction stays
        // inside the timed region deliberately — this bench measures the
        // whole place-and-insert pass.
        let chows: Vec<_> = inputs
            .iter()
            .map(|i| chow_shrink_wrap(&i.cfg, &i.usage))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("place_and_insert", name),
            &(inputs, chows),
            |b, (inputs, chows)| {
                b.iter(|| {
                    for (i, chow) in inputs.iter().zip(chows) {
                        let pst = Pst::compute(&i.cfg);
                        let placement = hierarchical_placement_vs(
                            &i.cfg,
                            &pst,
                            &i.usage,
                            &i.profile,
                            CostModel::JumpEdge,
                            &SpillCostModel::UNIT,
                            chow,
                        )
                        .placement;
                        let mut func = i.func.clone();
                        black_box(insert_placement(&mut func, &i.cfg, &placement));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
