//! Figure 5 — the full placement computation (all techniques) over
//! representative benchmarks, including physical insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spillopt_bench::placement_inputs;
use spillopt_core::{hierarchical_placement, insert_placement, CostModel};
use spillopt_pst::Pst;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(15);
    for name in ["gzip", "gcc"] {
        let inputs = placement_inputs(name);
        group.bench_with_input(
            BenchmarkId::new("place_and_insert", name),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    for i in inputs {
                        let pst = Pst::compute(&i.cfg);
                        let placement = hierarchical_placement(
                            &i.cfg,
                            &pst,
                            &i.usage,
                            &i.profile,
                            CostModel::JumpEdge,
                        )
                        .placement;
                        let mut func = i.func.clone();
                        black_box(insert_placement(&mut func, &i.cfg, &placement));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
