//! Cross-target placement throughput: the full per-function suite
//! (entry/exit, Chow, both hierarchical variants) on each registered
//! backend target.
//!
//! The interesting comparison is the pairing-aware hierarchical
//! traversal (AArch64's group decision at region boundaries) against the
//! paper's per-register rule — the group decision sorts candidates per
//! region, so its cost is the thing to watch as register files grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng as _;
use spillopt_benchgen::{emit_function, gen_body, EmitConfig, ShapeConfig, Style};
use spillopt_core::{run_suite, CalleeSavedUsage, SuiteInputs, SuiteOptions};
use spillopt_ir::analysis::loops::sccs;
use spillopt_ir::{Cfg, DerivedCfg};
use spillopt_profile::random_walk_profile;
use spillopt_pst::Pst;
use spillopt_regalloc::allocate;
use std::hint::black_box;

fn bench_cross_target(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_target_suite");
    group.sample_size(20);
    for spec in spillopt_targets::registry() {
        let target = spec.to_target();
        let shape = ShapeConfig {
            budget: 120,
            loop_prob: 0.35,
            else_prob: 0.5,
            cold_if_prob: 0.25,
            goto_prob: 0.06,
            call_prob: 0.15,
            loop_trip: (2, 8),
            max_depth: 4,
        };
        let emit = EmitConfig {
            shape: shape.clone(),
            pressure: 10,
            num_params: 2,
            data_slots: 4,
            style: Style::Register,
            num_handlers: 1,
            handler_goto_frac: 0.5,
            hot_segment_calls: 2,
            crossing_frac: 0.5,
            cold_crossing: 0.25,
            cold_sites: 1,
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let body = gen_body(&shape, &mut rng, 0);
        let mut func = emit_function(spec.name, &target, &emit, &body, 0, 11);
        allocate(&mut func, &target, None);

        let cfg = Cfg::compute(&func);
        let cyclic = sccs(&cfg);
        let pst = Pst::compute(&cfg);
        let derived = DerivedCfg::compute(&cfg);
        let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
        let profile = random_walk_profile(&cfg, 256, 512, 11);
        if usage.is_empty() {
            continue;
        }
        let inputs = SuiteInputs::analyzed(&usage, &profile, &cyclic, &pst, &derived);

        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &spec, |b, spec| {
            let options = SuiteOptions::priced(spec.costs);
            b.iter(|| black_box(run_suite(&cfg, &inputs, &options).expect("valid placements")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cross_target);
criterion_main!(benches);
