//! # spillopt-bench
//!
//! Shared fixtures for the Criterion benchmarks that regenerate the
//! paper's performance measurements (Table 2's incremental compile times
//! and the per-figure workloads). See the `benches/` directory:
//!
//! * `table2_compile_time` — placement-pass runtime per benchmark and
//!   technique (the paper's Table 2);
//! * `fig5_placements` — end-to-end placement work for the Figure 5
//!   benchmarks;
//! * `pst_scaling` — PST construction across CFG sizes (the linear-time
//!   claim);
//! * `regalloc` — the Chaitin/Briggs substrate;
//! * `ablations` — component costs of the hierarchical algorithm.

#![warn(missing_docs)]

use spillopt_benchgen::{benchmark_by_name, build_bench};
use spillopt_core::CalleeSavedUsage;
use spillopt_ir::{Cfg, Target};
use spillopt_profile::{EdgeProfile, Machine};
use spillopt_regalloc::allocate;

/// A ready-to-place function: allocated, profiled, with callee-saved
/// usage.
#[derive(Debug)]
pub struct PlacementInput {
    /// The allocated (physical) function.
    pub func: spillopt_ir::Function,
    /// CFG snapshot.
    pub cfg: Cfg,
    /// Train profile.
    pub profile: EdgeProfile,
    /// Callee-saved usage.
    pub usage: CalleeSavedUsage,
}

/// Generates, profiles, and allocates every function of a named synthetic
/// benchmark, returning the ones that use callee-saved registers.
///
/// # Panics
///
/// Panics on unknown names or pipeline failures (benchmarks are
/// deterministic; this cannot happen once the suite is green).
pub fn placement_inputs(name: &str) -> Vec<PlacementInput> {
    let target = Target::default();
    let spec = benchmark_by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let bench = build_bench(&spec, &target);
    let mut vm = Machine::new(&bench.module, &target);
    vm.set_fuel(1 << 30);
    for (f, args) in &bench.train_runs {
        vm.call(*f, args).expect("train run");
    }
    let mut out = Vec::new();
    for f in bench.module.func_ids() {
        let profile = vm.edge_profile(f);
        let mut func = bench.module.func(f).clone();
        allocate(&mut func, &target, Some(&profile));
        let cfg = Cfg::compute(&func);
        let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
        if usage.is_empty() {
            continue;
        }
        out.push(PlacementInput {
            func,
            cfg,
            profile,
            usage,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_nonempty_for_gzip() {
        let inputs = placement_inputs("gzip");
        assert!(!inputs.is_empty());
        for i in &inputs {
            assert!(!i.usage.is_empty());
            assert_eq!(i.cfg.num_blocks(), i.func.num_blocks());
        }
    }
}
