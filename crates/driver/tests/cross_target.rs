//! Cross-target integration tests: the cross-target report must be
//! byte-identical for every thread count, the paper's "hierarchical
//! never worse than Chow or entry/exit" guarantee must hold in-model on
//! every registered target (pairing-aware costs included), and
//! `compare --target T` must run for each registered target on the
//! paper's headline benchmark.

use spillopt_benchgen::{benchmark_by_name, build_bench};
use spillopt_driver::{OptimizerBuilder, ProfileSource, Strategy};
use spillopt_targets::{registry, TargetSpec};

fn cross_report_json(bench: &str, threads: usize) -> String {
    let session = OptimizerBuilder::new()
        .all_targets()
        .threads(threads)
        .build()
        .expect("valid session");
    let report = session
        .cross_target(|spec| {
            let bench_spec = benchmark_by_name(bench).expect("known benchmark");
            let built = build_bench(&bench_spec, &spec.to_target());
            Ok((built.module, ProfileSource::Workload(built.train_runs)))
        })
        .expect("cross-target run");
    report.to_json().to_compact()
}

#[test]
fn cross_target_report_is_bit_identical_across_thread_counts() {
    let serial = cross_report_json("mcf", 1);
    let parallel = cross_report_json("mcf", 8);
    assert_eq!(
        serial, parallel,
        "parallel cross-target JSON differs from serial"
    );
    let auto = cross_report_json("mcf", 0);
    assert_eq!(
        serial, auto,
        "auto-threads cross-target JSON differs from serial"
    );
    // Every registered target contributed a full report.
    for spec in registry() {
        assert!(
            serial.contains(&format!(r#""target":"{}""#, spec.name)),
            "cross-target report is missing {}",
            spec.name
        );
    }
}

fn run_bench_on(spec: &TargetSpec, bench: &str) -> spillopt_driver::ModuleReport {
    let bench_spec = benchmark_by_name(bench).expect("known benchmark");
    let built = build_bench(&bench_spec, &spec.to_target());
    OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(0)
        .profile(ProfileSource::Workload(built.train_runs))
        .build()
        .expect("valid session")
        .optimize(&built.module)
        .expect("driver")
        .report
}

/// The paper's guarantee, in-model, on every registered target: the
/// hierarchical jump-edge placement never costs more than the entry/exit
/// baseline or Chow's shrink-wrapping under that target's own
/// (pairing-aware) accounting — per function and in aggregate.
#[test]
fn hier_jump_never_loses_on_any_registered_target() {
    for spec in registry() {
        for bench in ["mcf", "gzip", "crafty"] {
            let report = run_bench_on(&spec, bench);
            assert!(
                report.total_cost(Strategy::HierJump) <= report.total_cost(Strategy::Baseline),
                "{bench} on {}: hier-jump beaten by baseline",
                spec.name
            );
            assert!(
                report.total_cost(Strategy::HierJump) <= report.total_cost(Strategy::Shrinkwrap),
                "{bench} on {}: hier-jump beaten by shrink-wrapping",
                spec.name
            );
            for f in &report.functions {
                let Some(hier) = f.strategy(Strategy::HierJump) else {
                    continue;
                };
                let base = f.strategy(Strategy::Baseline).expect("baseline present");
                let chow = f
                    .strategy(Strategy::Shrinkwrap)
                    .expect("shrinkwrap present");
                assert!(
                    hier.cost <= base.cost,
                    "{bench}/{} on {}: hier-jump beaten by baseline",
                    f.name,
                    spec.name
                );
                assert!(
                    hier.cost <= chow.cost,
                    "{bench}/{} on {}: hier-jump beaten by shrink-wrapping",
                    f.name,
                    spec.name
                );
            }
        }
    }
}

/// `spillopt compare --bench crafty --target <T>` runs for every
/// registered target (the acceptance criterion, driven in-process).
#[test]
fn compare_crafty_runs_on_every_registered_target() {
    for spec in registry() {
        let args: Vec<String> = [
            "compare",
            "--bench",
            "crafty",
            "--target",
            spec.name,
            "--threads",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut buf = Vec::new();
        spillopt_driver::cli::run(&args, &mut buf)
            .unwrap_or_else(|e| panic!("compare crafty on {} failed: {e:?}", spec.name));
        let out = String::from_utf8(buf).expect("utf8");
        assert!(
            out.contains(spec.name),
            "{}: target missing from table",
            spec.name
        );
        assert!(out.contains("crafty"));
    }
}

/// The cross-target section exposes the convention differences the
/// paper's single-machine evaluation hides: fewer callee-saved registers
/// and pairing change the per-target totals.
#[test]
fn targets_actually_differ() {
    let specs = registry();
    let session = OptimizerBuilder::new()
        .all_targets()
        .threads(0)
        .build()
        .expect("valid session");
    let report = session
        .cross_target(|spec| {
            let bench_spec = benchmark_by_name("gzip").expect("known benchmark");
            let built = build_bench(&bench_spec, &spec.to_target());
            Ok((built.module, ProfileSource::Workload(built.train_runs)))
        })
        .expect("cross-target run");

    assert_eq!(report.targets.len(), specs.len());
    assert!(report.best_target().is_some());
    // The per-target baselines cannot all coincide: the register-file
    // splits differ, so the callee-saved pressure differs.
    let baselines: Vec<u64> = report
        .targets
        .iter()
        .map(|(_, r)| r.total_cost(Strategy::Baseline).raw())
        .collect();
    assert!(
        baselines.windows(2).any(|w| w[0] != w[1]),
        "all targets produced identical baseline costs: {baselines:?}"
    );
}
