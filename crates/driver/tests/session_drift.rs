//! Integration tests for delta-driven incremental re-optimization.
//!
//! The warm session's analysis arena is an invisible cache: whatever
//! path a function takes — cold pipeline, exact warm hit, or an
//! incremental re-fold of only the profile-dirtied PST regions — the
//! module report bytes must equal a fresh cold session's. These tests
//! drive that differential over generated stress modules on every
//! registered target, then pin down the incremental path's economics
//! (the dirty-region ledger) and mechanics (provenance stream, LRU
//! eviction) on concrete cases.

use spillopt_benchgen::{benchmark_by_name, build_bench};
use spillopt_driver::{FunctionReport, OptimizerBuilder, ProfileSource, Provenance, Session};
use spillopt_ir::{Cfg, Module};
use spillopt_profile::EdgeProfile;
use spillopt_stress::gen_case;
use spillopt_sync::Mutex;
use spillopt_targets::{registry, TargetSpec};

fn warm_session(spec: &TargetSpec) -> Session {
    OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .build()
        .expect("valid warm session")
}

/// A fresh arena-less pipeline: the cold oracle.
fn cold_bytes(spec: &TargetSpec, module: &Module, profiles: &[EdgeProfile]) -> String {
    OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .reuse_analyses(false)
        .build()
        .expect("valid cold session")
        .optimize_profiled(module, profiles)
        .expect("cold run")
        .report
        .to_json()
        .to_compact()
}

fn warm_bytes(session: &Session, module: &Module, profiles: &[EdgeProfile]) -> String {
    session
        .optimize_profiled(module, profiles)
        .expect("warm run")
        .report
        .to_json()
        .to_compact()
}

/// Moves one count unit between two edges sharing a destination block,
/// per function where possible: block counts (and hence allocation
/// weights) are unchanged, so the warm session must take the
/// incremental re-fold path. Returns how many functions drifted.
fn nudge_weight_preserving(module: &Module, profiles: &mut [EdgeProfile]) -> usize {
    let mut drifted = 0;
    'funcs: for (fid, p) in module.func_ids().zip(profiles.iter_mut()) {
        let cfg = Cfg::compute(module.func(fid));
        let mut counts = p.edge_counts().to_vec();
        for (ia, ea) in cfg.edges() {
            if counts[ia.index()] == 0 {
                continue;
            }
            for (ib, eb) in cfg.edges() {
                if ia != ib && ea.to == eb.to {
                    counts[ia.index()] -= 1;
                    counts[ib.index()] += 1;
                    *p = EdgeProfile::new(&cfg, counts, p.entry_count());
                    drifted += 1;
                    continue 'funcs;
                }
            }
        }
    }
    drifted
}

/// Rewrites every count outright — block counts change, so the warm
/// session must re-allocate (and, when the allocation changes, replace
/// the cached structure cold).
fn full_invalidation(module: &Module, profiles: &mut [EdgeProfile]) {
    for (fid, p) in module.func_ids().zip(profiles.iter_mut()) {
        let cfg = Cfg::compute(module.func(fid));
        let counts = p
            .edge_counts()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.wrapping_mul(3) + 37 * i as u64 + 11) % 997)
            .collect();
        *p = EdgeProfile::new(&cfg, counts, p.entry_count() + 13);
    }
}

#[test]
fn incremental_reports_match_the_cold_oracle_on_every_target() {
    for spec in registry() {
        for seed in 0..3u64 {
            let module = gen_case(&spec.to_target(), seed).module;
            let session = warm_session(&spec);
            let mut profiles = session
                .resolve_profiles(&module)
                .expect("synthetic profiles");
            let ctx = |kind: &str| format!("{} seed {seed}: {kind}", spec.name);

            // Base run (cold fill), then a zero-delta re-run (warm hit).
            let base = warm_bytes(&session, &module, &profiles);
            assert_eq!(
                base,
                cold_bytes(&spec, &module, &profiles),
                "{}",
                ctx("base")
            );
            assert_eq!(
                base,
                warm_bytes(&session, &module, &profiles),
                "{}",
                ctx("zero-delta")
            );

            // Weights-preserving drift: the incremental re-fold path.
            nudge_weight_preserving(&module, &mut profiles);
            assert_eq!(
                warm_bytes(&session, &module, &profiles),
                cold_bytes(&spec, &module, &profiles),
                "{}",
                ctx("weights-preserving drift")
            );

            // Full invalidation: re-allocate, possibly cold replace.
            full_invalidation(&module, &mut profiles);
            assert_eq!(
                warm_bytes(&session, &module, &profiles),
                cold_bytes(&spec, &module, &profiles),
                "{}",
                ctx("full invalidation")
            );
        }
    }
}

#[test]
fn dirty_ledger_refolds_strictly_fewer_regions_than_the_function_total() {
    let spec = registry().remove(0);
    let bench = benchmark_by_name("mcf").expect("known benchmark");
    let built = build_bench(&bench, &spec.to_target());
    let session = OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .profile(ProfileSource::Workload(built.train_runs))
        .build()
        .expect("valid session");
    session.optimize(&built.module).expect("cold fill");

    let mut profiles = session
        .resolve_profiles(&built.module)
        .expect("workload profiles");
    let drifted = nudge_weight_preserving(&built.module, &mut profiles);
    assert!(drifted > 0, "mcf must admit a weights-preserving drift");
    session
        .optimize_profiled(&built.module, &profiles)
        .expect("drifted run");

    let arena = session.arena_stats();
    assert!(
        arena.incremental > 0,
        "drift did not take the incremental path: {arena:?}"
    );
    assert!(arena.regions_refolded > 0, "{arena:?}");
    // The whole point of delta-driven re-folding: a local drift must
    // not re-fold the whole function.
    assert!(
        arena.regions_refolded < arena.regions_total,
        "local drift re-folded every region: {arena:?}"
    );
}

#[test]
fn provenance_streams_cold_then_warm_then_incremental() {
    let spec = registry().remove(0);
    let module = gen_case(&spec.to_target(), 1).module;
    let session = warm_session(&spec);
    let mut profiles = session
        .resolve_profiles(&module)
        .expect("synthetic profiles");

    let seen: Mutex<Vec<Provenance>> = Mutex::new(Vec::new());
    let observer = |_t: &str, _m: &str, _r: &FunctionReport, p: Provenance| {
        seen.lock().unwrap().push(p);
    };
    let run = |profiles: &[EdgeProfile]| {
        seen.lock().unwrap().clear();
        session
            .optimize_profiled_observed(&module, profiles, &observer)
            .expect("observed run");
        seen.lock().unwrap().clone()
    };

    let first = run(&profiles);
    assert!(!first.is_empty());
    assert!(first.iter().all(|p| *p == Provenance::Cold), "{first:?}");

    let second = run(&profiles);
    assert!(second.iter().all(|p| *p == Provenance::Warm), "{second:?}");

    let drifted = nudge_weight_preserving(&module, &mut profiles);
    let third = run(&profiles);
    if drifted > 0 {
        assert!(third.contains(&Provenance::Incremental), "{third:?}");
    }
    // However the drift landed, nothing should have gone back cold: the
    // structures were all cached and allocation weights are unchanged.
    assert!(third.iter().all(|p| *p != Provenance::Cold), "{third:?}");
}

#[test]
fn bounded_arena_evicts_lru_structures() {
    let spec = registry().remove(0);
    // Find a generated module with at least two functions so a
    // capacity-1 arena must evict during a single module run.
    let module = (0..32u64)
        .map(|seed| gen_case(&spec.to_target(), seed).module)
        .find(|m| m.num_funcs() >= 2)
        .expect("a multi-function stress module in 32 seeds");
    let session = OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .arena_capacity(1)
        .build()
        .expect("valid bounded session");

    let first = session.optimize(&module).expect("first run");
    let second = session.optimize(&module).expect("second run");
    let arena = session.arena_stats();
    assert!(arena.evictions > 0, "capacity 1 never evicted: {arena:?}");
    assert!(arena.entries <= 1, "over capacity: {arena:?}");
    // Eviction costs reuse, never correctness.
    assert_eq!(
        first.report.to_json().to_compact(),
        second.report.to_json().to_compact()
    );
}
