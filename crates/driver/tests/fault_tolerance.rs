//! Integration tests for fault-tolerant sessions: containment under
//! every [`FailurePolicy`], cooperative budgets, quarantine backoff,
//! observer-panic attribution, and session reusability after failures.

use spillopt_driver::{
    Budget, DriverError, FailurePolicy, FaultAction, FaultKind, OptimizerBuilder, Session, Strategy,
};
use spillopt_ir::Module;
use spillopt_obs::fault::{FaultPlan, InjectionKind, InjectionScope};
use spillopt_stress::gen_case;
use spillopt_targets::{pa_risc_like, TargetSpec};

fn test_module(seed: u64) -> Module {
    gen_case(&pa_risc_like().to_target(), seed).module
}

/// A serial session (injection scopes are thread-local, so the
/// pipeline must run inline) with the given policy and an arena.
fn session(spec: &TargetSpec, policy: FailurePolicy) -> Session {
    OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .on_fault(policy)
        .build()
        .expect("valid session")
}

fn oracle_bytes(spec: &TargetSpec, module: &Module) -> String {
    session(spec, FailurePolicy::Fail)
        .optimize(module)
        .expect("fault-free run")
        .report
        .to_json()
        .to_compact()
}

fn plan(site: &'static str, kind: InjectionKind) -> FaultPlan {
    FaultPlan { site, nth: 0, kind }
}

#[test]
fn fail_policy_surfaces_structured_errors_and_session_stays_usable() {
    let spec = pa_risc_like();
    let module = test_module(3);
    let oracle = oracle_bytes(&spec, &module);
    let sess = session(&spec, FailurePolicy::Fail);

    // An injected panic surfaces as DriverError::Panicked.
    {
        let _scope = InjectionScope::arm(vec![plan("allocate", InjectionKind::Panic)]);
        let err = sess.optimize(&module).expect_err("fault must surface");
        assert!(
            matches!(err, DriverError::Panicked { .. }),
            "wrong error class: {err}"
        );
    }
    // An injected recoverable error surfaces as InvalidPlacement.
    {
        let _scope = InjectionScope::arm(vec![plan("cfg", InjectionKind::Error)]);
        let err = sess.optimize(&module).expect_err("fault must surface");
        assert!(
            matches!(err, DriverError::InvalidPlacement { .. }),
            "wrong error class: {err}"
        );
    }
    // An injected budget trip surfaces as BudgetExceeded naming the site.
    {
        let _scope = InjectionScope::arm(vec![plan("liveness", InjectionKind::Budget)]);
        let err = sess.optimize(&module).expect_err("fault must surface");
        match err {
            DriverError::BudgetExceeded { phase, .. } => assert_eq!(phase, "liveness"),
            other => panic!("wrong error class: {other}"),
        }
    }

    // After three failures, the same session's clean run is
    // byte-identical to a fresh session: no poisoned locks, no partial
    // cache state.
    let clean = sess.optimize(&module).expect("session must stay usable");
    assert_eq!(clean.report.to_json().to_compact(), oracle);
    assert!(clean.faults().is_empty());
}

#[test]
fn degrade_policy_retires_the_function_down_the_ladder() {
    let spec = pa_risc_like();
    let module = test_module(5);
    let sess = session(&spec, FailurePolicy::Degrade);

    let run = {
        // place_hier_jump only runs inside the full suite, so the
        // degraded rungs (fresh single-technique attempts) are clean.
        let scope = InjectionScope::arm(vec![plan("place_hier_jump", InjectionKind::Panic)]);
        let run = sess.optimize(&module).expect("degrade must contain");
        assert_eq!(scope.fired(), 1, "fault never fired");
        run
    };
    assert_eq!(run.faults().len(), 1, "exactly one ledger entry");
    let fault = &run.faults()[0];
    assert_eq!(fault.kind, FaultKind::Panic);
    assert!(
        matches!(
            fault.action,
            FaultAction::Degraded {
                to: Strategy::HierJump
            }
        ),
        "first ladder rung should succeed: {fault}"
    );
    // The degraded function still carries a validated placement.
    let report = &run.report.functions[fault.index];
    assert_eq!(report.best, Some(Strategy::HierJump));
    assert_eq!(report.strategies.len(), 1);

    // Applying the run (placement insertion) must work end to end.
    let optimized = run.apply(None);
    assert_eq!(optimized.num_funcs(), module.num_funcs());
}

#[test]
fn skip_policy_passes_the_function_through_unoptimized() {
    let spec = pa_risc_like();
    let module = test_module(7);
    let sess = session(&spec, FailurePolicy::Skip);

    let run = {
        let _scope = InjectionScope::arm(vec![plan("allocate", InjectionKind::Panic)]);
        sess.optimize(&module).expect("skip must contain")
    };
    assert_eq!(run.faults().len(), 1);
    let fault = &run.faults()[0];
    assert_eq!(fault.action, FaultAction::Skipped);
    let report = &run.report.functions[fault.index];
    assert!(report.best.is_none(), "skipped function has no placement");
    assert!(report.strategies.is_empty());
    // apply() emits the skipped function as its source IR.
    let optimized = run.apply(None);
    assert_eq!(optimized.num_funcs(), module.num_funcs());
}

#[test]
fn iteration_budget_surfaces_under_fail_and_degrades_under_degrade() {
    let spec = pa_risc_like();
    let module = test_module(11);

    // Fail: the first function whose placement reaches the Chow
    // fixpoint trips the cap and the error names the phase.
    let strict = OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .budget(Budget::none().solver_iters(0))
        .build()
        .expect("valid session");
    let err = strict.optimize(&module).expect_err("cap must trip");
    match err {
        DriverError::BudgetExceeded { phase, .. } => assert_eq!(phase, "solver_fixpoint"),
        other => panic!("wrong error class: {other}"),
    }

    // Degrade: every rung that needs the Chow fixpoint trips too, so
    // the ladder lands on the entry/exit baseline — and the module
    // still comes back whole.
    let lenient = OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .on_fault(FailurePolicy::Degrade)
        .budget(Budget::none().solver_iters(0))
        .build()
        .expect("valid session");
    let run = lenient.optimize(&module).expect("degrade must contain");
    assert!(!run.faults().is_empty(), "cap never tripped");
    for fault in run.faults() {
        assert_eq!(fault.kind, FaultKind::BudgetExceeded, "{fault}");
        assert_eq!(
            fault.action,
            FaultAction::Degraded {
                to: Strategy::Baseline
            },
            "{fault}"
        );
    }
    assert_eq!(run.report.functions.len(), module.num_funcs());
}

#[test]
fn optimize_many_keeps_healthy_modules_under_degrade_and_skip() {
    let spec = pa_risc_like();
    let modules: Vec<Module> = (20..23).map(test_module).collect();
    let oracles: Vec<String> = modules.iter().map(|m| oracle_bytes(&spec, m)).collect();

    for policy in [FailurePolicy::Degrade, FailurePolicy::Skip] {
        let sess = session(&spec, policy);
        let runs = {
            let scope = InjectionScope::arm(vec![plan("allocate", InjectionKind::Panic)]);
            let runs = sess.optimize_many(&modules).expect("batch must survive");
            assert_eq!(scope.fired(), 1);
            runs
        };
        assert_eq!(runs.len(), modules.len());
        let faulted: Vec<usize> = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.faults().is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(faulted.len(), 1, "exactly one module carries the fault");
        let total: usize = runs.iter().map(|r| r.faults().len()).sum();
        assert_eq!(total, 1, "the fault appears exactly once across the batch");
        for (i, run) in runs.iter().enumerate() {
            if i != faulted[0] {
                assert_eq!(
                    run.report.to_json().to_compact(),
                    oracles[i],
                    "healthy module {i} diverged under policy {}",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn quarantine_backs_off_repeat_offenders_then_readmits() {
    let spec = pa_risc_like();
    let module = test_module(13);
    let oracle = oracle_bytes(&spec, &module);
    let sess = session(&spec, FailurePolicy::Skip);

    // Two faulted runs on the same function: the second failure opens a
    // backoff window of two calls.
    for _ in 0..2 {
        let run = {
            let _scope = InjectionScope::arm(vec![plan("allocate", InjectionKind::Panic)]);
            sess.optimize(&module).expect("skip must contain")
        };
        assert_eq!(run.faults().len(), 1);
        assert_eq!(run.faults()[0].kind, FaultKind::Panic);
    }

    // The next two clean calls sit out the quarantine window: no
    // attempt, a Quarantined ledger entry instead.
    for call in 0..2 {
        let run = sess.optimize(&module).expect("quarantine must contain");
        assert_eq!(run.faults().len(), 1, "call {call}");
        assert_eq!(run.faults()[0].kind, FaultKind::Quarantined, "call {call}");
    }
    assert_eq!(sess.arena_stats().quarantined, 2);

    // The window has elapsed: the function is readmitted, succeeds, and
    // the report is byte-identical to a fault-free session's.
    let run = sess.optimize(&module).expect("readmitted run");
    assert!(run.faults().is_empty(), "{:?}", run.faults());
    assert_eq!(run.report.to_json().to_compact(), oracle);

    // A single failure never quarantines: one fault, then a clean call
    // that attempts (and matches the oracle) immediately.
    let fresh = session(&spec, FailurePolicy::Skip);
    {
        let _scope = InjectionScope::arm(vec![plan("allocate", InjectionKind::Panic)]);
        fresh.optimize(&module).expect("skip must contain");
    }
    let clean = fresh.optimize(&module).expect("clean run");
    assert!(clean.faults().is_empty());
    assert_eq!(clean.report.to_json().to_compact(), oracle);
    assert_eq!(fresh.arena_stats().quarantined, 0);
}

/// An observer that panics in a chosen callback.
struct PanickyObserver {
    in_retired: bool,
}

impl spillopt_driver::Observer for PanickyObserver {
    fn function_retired(
        &self,
        _target: &str,
        _module: &str,
        _report: &spillopt_driver::FunctionReport,
        _provenance: spillopt_driver::Provenance,
    ) {
        if self.in_retired {
            panic!("observer bug: log sink unavailable");
        }
    }

    fn module_done(&self, _report: &spillopt_driver::ModuleReport) {
        if !self.in_retired {
            panic!("observer bug: summary sink unavailable");
        }
    }

    fn name(&self) -> &str {
        "panicky-logger"
    }
}

#[test]
fn observer_panics_are_attributed_to_the_observer_not_the_function() {
    let spec = pa_risc_like();
    let module = test_module(17);

    for in_retired in [true, false] {
        let sess = session(&spec, FailurePolicy::Degrade);
        let observer = PanickyObserver { in_retired };
        let err = sess
            .optimize_observed(&module, &observer)
            .expect_err("observer panic must surface");
        match err {
            DriverError::ObserverPanicked {
                observer,
                callback,
                message,
            } => {
                assert_eq!(observer, "panicky-logger");
                let expected = if in_retired {
                    "function_retired"
                } else {
                    "module_done"
                };
                assert_eq!(callback, expected);
                assert!(message.contains("observer bug"), "{message}");
            }
            other => panic!("wrong error class: {other}"),
        }
        // The observer's failure is not the pipeline's: the same
        // session retires the module cleanly without the observer.
        let run = sess.optimize(&module).expect("session must stay usable");
        assert!(run.faults().is_empty());
    }
}
