//! Integration tests for the module driver: parallel runs must be
//! bit-identical to serial runs, and the optimized module must preserve
//! program behaviour on the reference workload.

use spillopt_benchgen::{benchmark_by_name, build_bench};
use spillopt_driver::{OptimizerBuilder, ProfileSource, Strategy};
use spillopt_ir::Target;
use spillopt_profile::Machine;

fn run_bench(name: &str, threads: usize) -> (spillopt_driver::ModuleRun, spillopt_ir::Module) {
    let target = Target::default();
    let spec = benchmark_by_name(name).expect("known benchmark");
    let bench = build_bench(&spec, &target);
    let session = OptimizerBuilder::new()
        .target(target)
        .threads(threads)
        .profile(ProfileSource::Workload(bench.train_runs.clone()))
        .build()
        .expect("valid session");
    let run = session.optimize(&bench.module).expect("driver");
    (run, bench.module)
}

#[test]
fn parallel_report_is_bit_identical_to_serial() {
    for name in ["gzip", "vortex"] {
        let (serial, _) = run_bench(name, 1);
        let (parallel, _) = run_bench(name, 8);
        assert_eq!(
            serial.report.to_json().to_compact(),
            parallel.report.to_json().to_compact(),
            "{name}: parallel JSON differs from serial"
        );
        // And again with auto thread count, for good measure.
        let (auto, _) = run_bench(name, 0);
        assert_eq!(
            serial.report.to_json().to_compact(),
            auto.report.to_json().to_compact(),
            "{name}: auto-threads JSON differs from serial"
        );
    }
}

#[test]
fn synthetic_profiles_are_deterministic_across_threads() {
    let target = Target::default();
    let bench = build_bench(&benchmark_by_name("parser").unwrap(), &target);
    let report_with = |threads| {
        OptimizerBuilder::new()
            .target(target.clone())
            .threads(threads)
            .build()
            .expect("valid session")
            .optimize(&bench.module)
            .expect("driver")
            .report
            .to_json()
            .to_compact()
    };
    assert_eq!(report_with(1), report_with(4));
}

#[test]
fn hier_jump_never_loses_at_module_scale() {
    for name in ["gzip", "crafty", "twolf"] {
        let (run, _) = run_bench(name, 0);
        let report = &run.report;
        assert!(
            report.total_cost(Strategy::HierJump) <= report.total_cost(Strategy::Baseline),
            "{name}: hier-jump beaten by baseline"
        );
        assert!(
            report.total_cost(Strategy::HierJump) <= report.total_cost(Strategy::Shrinkwrap),
            "{name}: hier-jump beaten by shrink-wrapping"
        );
        // Per function too, and `best` is coherent.
        for f in &report.functions {
            if let Some(best) = f.best {
                let best_cost = f.strategy(best).unwrap().cost;
                for s in &f.strategies {
                    assert!(best_cost <= s.cost, "{name}/{}: best beaten", f.name);
                }
            }
        }
    }
}

#[test]
fn optimized_module_preserves_behaviour() {
    let target = Target::default();
    let bench = build_bench(&benchmark_by_name("bzip2").unwrap(), &target);

    let reference: Vec<i64> = {
        let mut vm = Machine::new(&bench.module, &target);
        vm.set_fuel(1 << 30);
        bench
            .ref_runs
            .iter()
            .map(|(f, args)| vm.call(*f, args).expect("ref run"))
            .collect()
    };

    let run = OptimizerBuilder::new()
        .target(target.clone())
        .threads(0)
        .profile(ProfileSource::Workload(bench.train_runs.clone()))
        .build()
        .expect("valid session")
        .optimize(&bench.module)
        .expect("driver");

    // Both the per-function best and the paper's technique must leave
    // behaviour untouched.
    for choice in [None, Some(Strategy::HierJump)] {
        let optimized = run.apply(choice);
        let mut vm = Machine::new(&optimized, &target);
        vm.set_fuel(1 << 30);
        for ((f, args), expected) in bench.ref_runs.iter().zip(&reference) {
            let got = vm.call(*f, args).expect("optimized run");
            assert_eq!(got, *expected, "behaviour changed under {choice:?}");
        }
    }
}
