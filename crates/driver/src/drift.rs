//! Profile-drift fuzzer: the differential oracle for delta-driven
//! incremental re-optimization.
//!
//! A drift case starts from a [`spillopt_stress::gen_case`] module and a
//! deterministic base profile per function, then applies a seeded
//! sequence of profile mutations ("drift steps"). After the base run and
//! after every step, the same module + profiles go through two
//! pipelines:
//!
//! * a **warm session** (analysis arena on), whose repeated
//!   [`crate::session::Session::optimize_profiled`] calls take the
//!   warm-hit / incremental-refold / cold-replace paths; and
//! * a **fresh cold session** per check (arena off), the frozen
//!   whole-function recompute.
//!
//! The [`crate::report::ModuleReport`] JSON bytes must be identical on
//! every check — the warm arena is an invisible cache, never an answer
//! change. A divergence is shrunk twice: first the drift sequence
//! (greedy step drop), then the module itself via
//! [`spillopt_stress::minimize()`] with a replay-the-drift predicate, so a
//! [`DriftFailure`] prints a small module and the few steps that still
//! reproduce it.
//!
//! Mutation kinds are chosen per step from an RNG stream keyed by
//! `(seed, step)` and defined relative to the *current* module shape
//! (function counts, CFG edge lists), so a shrunk module replays the
//! same step sequence meaningfully. The kinds deliberately cover every
//! triage path in the session arena: a zero delta (warm hit), entry and
//! single-edge count bumps (re-allocate-and-compare, usually
//! incremental), a full re-randomize of one function (allocation
//! change, cold replace), and a weights-preserving move of counts
//! between two edges sharing a destination block (block counts — and
//! hence allocation weights — unchanged, guaranteeing the incremental
//! path).

use crate::pool::try_run_indexed;
use crate::session::{OptimizerBuilder, Session};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spillopt_ir::{Cfg, FuncId, Module};
use spillopt_profile::{random_walk_profile, EdgeProfile};
use spillopt_stress::{gen_case, minimize, with_quiet_panics};
use spillopt_targets::TargetSpec;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Drift steps applied per case when the CLI flag does not say
/// otherwise.
pub const DEFAULT_DRIFT_STEPS: u64 = 8;

/// Configuration of one drift run.
#[derive(Clone, Debug, Default)]
pub struct DriftConfig {
    /// First seed (inclusive).
    pub start: u64,
    /// Number of seeds to run.
    pub seeds: u64,
    /// Drift steps per case (checks per case = steps + 1 for the base
    /// profile).
    pub steps: u64,
    /// Targets to check every seed on.
    pub targets: Vec<TargetSpec>,
    /// Worker threads; `0` = available parallelism, `1` = serial.
    pub threads: usize,
}

/// A minimized warm-vs-cold divergence.
#[derive(Clone, Debug)]
pub struct DriftFailure {
    /// The seed that produced the case.
    pub seed: u64,
    /// Registry name of the target it failed on.
    pub target: &'static str,
    /// The minimized drift sequence: the step ids (1-based, in original
    /// order) that still reproduce the divergence when replayed against
    /// the minimized module.
    pub steps: Vec<u64>,
    /// What diverged (first differing check, with both report bodies).
    pub detail: String,
    /// IR text of the minimized module.
    pub minimized: String,
}

impl fmt::Display for DriftFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "seed {} on target {}: incremental re-optimization diverged from the cold oracle",
            self.seed, self.target
        )?;
        writeln!(f, "drift steps kept: {:?}", self.steps)?;
        writeln!(f, "{}", self.detail)?;
        writeln!(f, "minimized module:")?;
        write!(f, "{}", self.minimized)
    }
}

/// Aggregated outcome of a drift run.
#[derive(Debug, Default)]
pub struct DriftSummary {
    /// `(target, seed)` cases checked (including failing ones).
    pub cases: usize,
    /// Warm-vs-cold byte comparisons performed (base + steps, summed
    /// over passing cases; a failing case stops at its divergence).
    pub steps_checked: u64,
    /// Functions generated across all cases.
    pub functions: usize,
    /// Warm-session arena hits (zero-delta steps served from the
    /// outcome cache).
    pub warm_hits: u64,
    /// Warm-session incremental re-folds (drifted profile, allocation
    /// unchanged).
    pub incremental: u64,
    /// Regions actually re-folded by the incremental calls.
    pub regions_refolded: u64,
    /// Regions the incremental calls would have folded cold.
    pub regions_total: u64,
    /// Minimized counterexamples, ordered by seed then registry order.
    pub failures: Vec<DriftFailure>,
}

impl DriftSummary {
    /// `true` when every check was byte-identical.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// How a replay ended short of full success.
enum ReplayError {
    /// The warm report's bytes differed from the cold oracle's — the
    /// failure this fuzzer exists to find (and the only one the
    /// minimizer is allowed to chase).
    Diverged(String),
    /// Either pipeline refused or panicked; reported, but never treated
    /// as "the same failure" while shrinking.
    Driver(String),
}

/// What a fully-passing replay measured.
struct ReplayStats {
    checks: u64,
    warm_hits: u64,
    incremental: u64,
    regions_refolded: u64,
    regions_total: u64,
}

fn warm_session(spec: &TargetSpec) -> Result<Session, ReplayError> {
    OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .build()
        .map_err(|e| ReplayError::Driver(format!("warm session: {e}")))
}

fn cold_session(spec: &TargetSpec) -> Result<Session, ReplayError> {
    OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .reuse_analyses(false)
        .build()
        .map_err(|e| ReplayError::Driver(format!("cold session: {e}")))
}

/// Deterministic base profiles for `module` (per-function random walks,
/// seeded like the session's synthetic source).
fn base_profiles(module: &Module, seed: u64) -> Vec<EdgeProfile> {
    module
        .func_ids()
        .map(|fid| {
            let cfg = Cfg::compute(module.func(fid));
            random_walk_profile(
                &cfg,
                96,
                128,
                seed ^ (fid.index() as u64).wrapping_mul(0x9e37_79b9),
            )
        })
        .collect()
}

/// Two distinct edges sharing a destination block, the first with a
/// nonzero count — the precondition for a weights-preserving move
/// (block counts are sums of incoming edge counts, so shifting count
/// between such edges changes no block count and no allocation weight).
fn weight_preserving_pair(cfg: &Cfg, counts: &[u64]) -> Option<(usize, usize)> {
    for (ia, ea) in cfg.edges() {
        if counts[ia.index()] == 0 {
            continue;
        }
        for (ib, eb) in cfg.edges() {
            if ia != ib && ea.to == eb.to {
                return Some((ia.index(), ib.index()));
            }
        }
    }
    None
}

/// Applies a weights-preserving nudge to every function that admits
/// one: moves one count unit between two edges sharing a destination
/// block, leaving every block count — and hence every allocation
/// weight — unchanged while producing a non-empty [`ProfileDelta`].
/// Returns how many functions were drifted (functions without a
/// sharing pair keep their profile verbatim). `spillopt stats` uses
/// this for its third, incremental run.
///
/// [`ProfileDelta`]: spillopt_profile::ProfileDelta
pub(crate) fn nudge_weight_preserving(module: &Module, profiles: &mut [EdgeProfile]) -> usize {
    let mut drifted = 0;
    for (fid, p) in module.func_ids().zip(profiles.iter_mut()) {
        let cfg = Cfg::compute(module.func(fid));
        let mut counts = p.edge_counts().to_vec();
        if let Some((a, b)) = weight_preserving_pair(&cfg, &counts) {
            counts[a] -= 1;
            counts[b] += 1;
            *p = EdgeProfile::new(&cfg, counts, p.entry_count());
            drifted += 1;
        }
    }
    drifted
}

/// Applies drift step `step` of `seed`'s sequence to `profiles`,
/// in place. Pure in `(module shape, seed, step, current profiles)`.
fn mutate_step(module: &Module, profiles: &mut [EdgeProfile], seed: u64, step: u64) {
    let mut rng = SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ step.wrapping_add(0xd1f7),
    );
    if profiles.is_empty() {
        return;
    }
    let f = rng.gen_range(0..profiles.len());
    let cfg = Cfg::compute(module.func(FuncId::from_index(f)));
    let mut counts = profiles[f].edge_counts().to_vec();
    let mut entry = profiles[f].entry_count();
    match rng.gen_range(0..5u32) {
        // Zero delta: the warm session must serve the cached outcome.
        0 => {}
        // Entry bump: entry block count changes, so allocation weights
        // change; the session re-allocates and compares.
        1 => entry = (entry + rng.gen_range(1..100u64)) & 0xffff,
        // Single-edge bump.
        2 if !counts.is_empty() => {
            let e = rng.gen_range(0..counts.len());
            counts[e] = (counts[e] + rng.gen_range(1..1000u64)) & 0xffff;
        }
        // Full re-randomize: typically flips hot/cold blocks and forces
        // a cold structure replace.
        3 => {
            for c in counts.iter_mut() {
                *c = rng.gen_range(0..1000u64);
            }
            entry = rng.gen_range(1..1000u64);
        }
        // Weights-preserving move (guaranteed incremental path), with a
        // plain bump as fallback on shapes without a sharing pair.
        _ => {
            if let Some((a, b)) = weight_preserving_pair(&cfg, &counts) {
                let moved = rng.gen_range(1..=counts[a].min(64));
                counts[a] -= moved;
                counts[b] += moved;
            } else if !counts.is_empty() {
                let e = rng.gen_range(0..counts.len());
                counts[e] += 1;
            }
        }
    }
    profiles[f] = EdgeProfile::new(&cfg, counts, entry);
}

/// One warm-vs-cold comparison of `module` under `profiles`.
fn check(
    warm: &Session,
    spec: &TargetSpec,
    module: &Module,
    profiles: &[EdgeProfile],
    label: u64,
) -> Result<(), ReplayError> {
    let warm_run = warm
        .optimize_profiled(module, profiles)
        .map_err(|e| ReplayError::Driver(format!("step {label}: warm run failed: {e}")))?;
    let cold_run = cold_session(spec)?
        .optimize_profiled(module, profiles)
        .map_err(|e| ReplayError::Driver(format!("step {label}: cold run failed: {e}")))?;
    let warm_bytes = warm_run.report.to_json().to_compact();
    let cold_bytes = cold_run.report.to_json().to_compact();
    if warm_bytes != cold_bytes {
        return Err(ReplayError::Diverged(format!(
            "step {label}: warm report != cold report\n  cold: {cold_bytes}\n  warm: {warm_bytes}"
        )));
    }
    Ok(())
}

/// Replays a drift sequence against `module`: the base profiles, then
/// each listed step, byte-comparing warm vs cold after every run.
fn replay(
    spec: &TargetSpec,
    module: &Module,
    seed: u64,
    step_ids: &[u64],
) -> Result<ReplayStats, ReplayError> {
    let warm = warm_session(spec)?;
    let mut profiles = base_profiles(module, seed);
    check(&warm, spec, module, &profiles, 0)?;
    let mut checks = 1;
    for &step in step_ids {
        mutate_step(module, &mut profiles, seed, step);
        check(&warm, spec, module, &profiles, step)?;
        checks += 1;
    }
    let arena = warm.arena_stats();
    Ok(ReplayStats {
        checks,
        warm_hits: arena.hits,
        incremental: arena.incremental,
        regions_refolded: arena.regions_refolded,
        regions_total: arena.regions_total,
    })
}

/// `true` when replaying `step_ids` over `module` still reproduces a
/// byte divergence (a driver error or panic is a *different* failure
/// and must not steer the minimizer).
fn still_diverges(spec: &TargetSpec, module: &Module, seed: u64, step_ids: &[u64]) -> bool {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        matches!(
            replay(spec, module, seed, step_ids),
            Err(ReplayError::Diverged(_))
        )
    }));
    caught.unwrap_or(false)
}

/// Runs one `(target, seed)` case; a failure comes back minimized.
fn drift_seed(
    spec: &TargetSpec,
    seed: u64,
    steps: u64,
) -> Result<(usize, ReplayStats), Box<DriftFailure>> {
    let case = gen_case(&spec.to_target(), seed);
    let all_steps: Vec<u64> = (1..=steps).collect();
    let detail = match replay(spec, &case.module, seed, &all_steps) {
        Ok(stats) => return Ok((case.module.num_funcs(), stats)),
        Err(ReplayError::Diverged(detail)) => detail,
        Err(ReplayError::Driver(detail)) => {
            // Not a divergence, but still a failed case: report it
            // un-minimized (the minimizer only chases divergences).
            return Err(Box::new(DriftFailure {
                seed,
                target: spec.name,
                steps: all_steps,
                detail,
                minimized: case.module.to_string(),
            }));
        }
    };

    // Shrink the drift sequence first (greedy single-step drops), then
    // the module under the kept sequence.
    let mut kept = all_steps;
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        let mut candidate = kept.clone();
        candidate.remove(i);
        if still_diverges(spec, &case.module, seed, &candidate) {
            kept = candidate;
        }
    }
    let (module, _) = minimize(&case.module, &case.runs, |m, _| {
        still_diverges(spec, m, seed, &kept)
    });
    let detail = match replay(spec, &module, seed, &kept) {
        Err(ReplayError::Diverged(d)) => d,
        // minimize() only keeps reductions the predicate confirmed, so
        // the original detail still describes the failure.
        _ => detail,
    };
    Err(Box::new(DriftFailure {
        seed,
        target: spec.name,
        steps: kept,
        detail,
        minimized: module.to_string(),
    }))
}

/// Runs the drift differential over `config.seeds` seeds ×
/// `config.targets` targets on the work-stealing pool. Deterministic:
/// the summary (including failure order) is a pure function of the
/// configuration.
pub fn run_drift(config: &DriftConfig) -> DriftSummary {
    let mut items: Vec<(TargetSpec, u64)> = Vec::new();
    for seed in config.start..config.start.saturating_add(config.seeds) {
        for spec in &config.targets {
            items.push((spec.clone(), seed));
        }
    }
    let cases = items.len();
    let coords: Vec<(&'static str, u64)> = items.iter().map(|(s, seed)| (s.name, *seed)).collect();
    let steps = config.steps;
    // Sessions run inline (threads(1)) and already convert pipeline
    // panics into driver errors; this net covers a panic in the
    // generator or minimizer itself, converting it into a failure that
    // names its (target, seed) instead of killing the sweep.
    let outcomes: Vec<Result<(usize, ReplayStats), Box<DriftFailure>>> =
        match try_run_indexed(items, config.threads, move |_, (spec, seed)| {
            with_quiet_panics(|| drift_seed(&spec, seed, steps))
        }) {
            Ok(outcomes) => outcomes,
            Err(p) => {
                let (target, seed) = coords[p.index];
                return DriftSummary {
                    cases,
                    failures: vec![DriftFailure {
                        seed,
                        target,
                        steps: Vec::new(),
                        detail: format!("drift harness panicked: {}", p.message()),
                        minimized: String::new(),
                    }],
                    ..DriftSummary::default()
                };
            }
        };

    let mut summary = DriftSummary {
        cases,
        ..DriftSummary::default()
    };
    for outcome in outcomes {
        match outcome {
            Ok((functions, stats)) => {
                summary.steps_checked += stats.checks;
                summary.functions += functions;
                summary.warm_hits += stats.warm_hits;
                summary.incremental += stats.incremental;
                summary.regions_refolded += stats.regions_refolded;
                summary.regions_total += stats.regions_total;
            }
            Err(failure) => summary.failures.push(*failure),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_smoke_passes_on_every_registered_target() {
        let summary = run_drift(&DriftConfig {
            start: 0,
            seeds: 4,
            steps: 6,
            targets: spillopt_targets::registry(),
            threads: 0,
        });
        assert_eq!(summary.cases, 4 * spillopt_targets::registry().len());
        assert!(
            summary.passed(),
            "drift failures:\n{}",
            summary
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // base + 6 steps per case
        assert_eq!(summary.steps_checked, 7 * summary.cases as u64);
        assert!(summary.functions > 0);
        // The mutation mix must actually exercise the fast paths: some
        // zero-delta steps hit the outcome cache, and the
        // weights-preserving moves take the incremental re-fold.
        assert!(summary.warm_hits > 0, "no warm hits across the sweep");
        assert!(summary.incremental > 0, "no incremental re-folds");
        assert!(summary.regions_refolded <= summary.regions_total);
    }

    #[test]
    fn drift_sweep_is_deterministic() {
        let config = DriftConfig {
            start: 7,
            seeds: 2,
            steps: 4,
            targets: spillopt_targets::registry(),
            threads: 1,
        };
        let a = run_drift(&config);
        let b = run_drift(&config);
        assert_eq!(a.steps_checked, b.steps_checked);
        assert_eq!(a.incremental, b.incremental);
        assert_eq!(a.regions_refolded, b.regions_refolded);
        assert_eq!(a.regions_total, b.regions_total);
    }
}
