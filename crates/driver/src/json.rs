//! A minimal deterministic JSON writer.
//!
//! The report's "identical across thread counts" guarantee extends to
//! the serialized bytes, so this writer is deliberately boring: object
//! keys are emitted in insertion order chosen by the report code (never
//! from a hash map), floats use Rust's shortest-roundtrip `Display`, and
//! there is no configuration. No third-party serializer is available
//! offline, and none is needed for write-only JSON.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (u64 covers every count this crate emits).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Finite float (NaN/inf serialize as `null`, as in most emitters).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Starts an empty object.
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key to an object (panics on non-objects — a misuse bug,
    /// not a data condition).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("Json::with on non-object {other:?}"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_structure() {
        let v = Json::obj()
            .with("name", "m\"x\n")
            .with("count", 3usize)
            .with("ratio", 0.25)
            .with("items", vec![Json::UInt(1), Json::Null, Json::Bool(true)]);
        assert_eq!(
            v.to_compact(),
            r#"{"name":"m\"x\n","count":3,"ratio":0.25,"items":[1,null,true]}"#
        );
        assert!(v.to_pretty().contains("\n  \"count\": 3"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().to_compact(), "{}");
        assert_eq!(Json::Array(Vec::new()).to_pretty(), "[]");
    }
}
