//! Module-scale driver for the differential stress subsystem.
//!
//! `spillopt-stress` owns the generator, the three oracles, and the
//! minimizer; this module fans `(target, seed)` cases out on the
//! work-stealing pool and aggregates the outcome — the engine behind the
//! `spillopt stress` CLI subcommand, the per-PR smoke slice, and the
//! nightly CI job. It is a library API on purpose: integration tests
//! drive the same entry point the CLI uses.

use crate::pool::try_run_indexed;
use spillopt_stress::{run_seed, CaseReport, FailureKind, OracleFailure, SeedFailure};
use spillopt_targets::TargetSpec;

/// Configuration of one stress run.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// First seed (inclusive).
    pub start: u64,
    /// Number of seeds to run.
    pub seeds: u64,
    /// Targets to check every seed on.
    pub targets: Vec<TargetSpec>,
    /// Worker threads; `0` = available parallelism, `1` = serial.
    pub threads: usize,
}

/// Aggregated outcome of a stress run.
#[derive(Debug, Default)]
pub struct StressSummary {
    /// `(target, seed)` cases checked (including failing ones).
    pub cases: usize,
    /// Functions generated and run through the pipeline.
    pub functions: usize,
    /// Functions that used callee-saved registers.
    pub placed_functions: usize,
    /// Technique × function placements checked against the oracles.
    pub placements_checked: usize,
    /// Minimized counterexamples, ordered by seed then registry order.
    pub failures: Vec<SeedFailure>,
}

impl StressSummary {
    /// `true` when every case passed all three oracles.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the oracles over `config.seeds` seeds × `config.targets` targets
/// on the work-stealing pool. Deterministic: the summary (including
/// failure order) is a pure function of the configuration.
pub fn run_stress(config: &StressConfig) -> StressSummary {
    let mut items: Vec<(TargetSpec, u64)> = Vec::new();
    for seed in config.start..config.start.saturating_add(config.seeds) {
        for spec in &config.targets {
            items.push((spec.clone(), seed));
        }
    }
    let cases = items.len();
    let coords: Vec<(&'static str, u64)> = items.iter().map(|(s, seed)| (s.name, *seed)).collect();
    // `run_seed` already catches pipeline panics; this extra net covers
    // a panic in the generator or minimizer itself, converting it into a
    // failure that names its (target, seed) instead of killing the sweep.
    let outcomes: Vec<Result<CaseReport, Box<SeedFailure>>> =
        match try_run_indexed(items, config.threads, |_, (spec, seed)| {
            run_seed(&spec, seed)
        }) {
            Ok(outcomes) => outcomes,
            Err(p) => {
                let (target, seed) = coords[p.index];
                return StressSummary {
                    cases,
                    failures: vec![SeedFailure {
                        seed,
                        target,
                        failure: OracleFailure {
                            kind: FailureKind::Panic,
                            strategy: None,
                            detail: format!("stress harness panicked: {}", p.message()),
                        },
                        minimized: String::new(),
                        runs: Vec::new(),
                    }],
                    ..StressSummary::default()
                };
            }
        };

    let mut summary = StressSummary {
        cases: outcomes.len(),
        ..StressSummary::default()
    };
    for outcome in outcomes {
        match outcome {
            Ok(report) => {
                summary.functions += report.functions;
                summary.placed_functions += report.placed_functions;
                summary.placements_checked += report.placements_checked;
            }
            Err(failure) => summary.failures.push(*failure),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_slice_passes_on_every_registered_target() {
        let summary = run_stress(&StressConfig {
            start: 0,
            seeds: 3,
            targets: spillopt_targets::registry(),
            threads: 0,
        });
        assert_eq!(summary.cases, 3 * spillopt_targets::registry().len());
        assert!(
            summary.passed(),
            "stress failures:\n{}",
            summary
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(summary.functions > 0);
    }

    #[test]
    fn summary_is_deterministic_across_thread_counts() {
        let config = |threads| StressConfig {
            start: 5,
            seeds: 2,
            targets: vec![spillopt_targets::pa_risc_like()],
            threads,
        };
        let a = run_stress(&config(1));
        let b = run_stress(&config(4));
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.functions, b.functions);
        assert_eq!(a.placements_checked, b.placements_checked);
    }
}
