//! Module-scale driver for the differential stress subsystem.
//!
//! `spillopt-stress` owns the generator, the four oracles, and the
//! minimizer; this module fans `(target, seed)` cases out on the
//! work-stealing pool and aggregates the outcome — the engine behind the
//! `spillopt stress` / `spillopt gap` CLI subcommands, the per-PR smoke
//! slice, and the nightly CI job. It is a library API on purpose:
//! integration tests drive the same entry point the CLI uses.

use crate::json::Json;
use crate::pool::try_run_indexed;
use spillopt_stress::{
    run_seed_with, CaseReport, ExactOptions, ExactStats, FailureKind, GapHist, ModelGapStats,
    OracleFailure, SeedFailure,
};
use spillopt_targets::TargetSpec;

/// Configuration of one stress run.
#[derive(Clone, Debug, Default)]
pub struct StressConfig {
    /// First seed (inclusive).
    pub start: u64,
    /// Number of seeds to run.
    pub seeds: u64,
    /// Targets to check every seed on.
    pub targets: Vec<TargetSpec>,
    /// Worker threads; `0` = available parallelism, `1` = serial.
    pub threads: usize,
    /// When set, the exact-optimum (optimality-gap) oracle also runs on
    /// every case: a hier-jump placement beyond the allowed gap over the
    /// certified optimum fails the case, and per-target gap statistics
    /// are accumulated into [`StressSummary::exact`].
    pub exact: Option<ExactOptions>,
}

/// One target's accumulated exact-oracle coverage and gap histograms.
#[derive(Clone, Copy, Debug)]
pub struct TargetGapStats {
    /// Registry name.
    pub target: &'static str,
    /// Solver coverage and measured gaps, summed over this target's
    /// passing cases.
    pub stats: ExactStats,
}

impl TargetGapStats {
    /// The per-target entry of the `spillopt gap --json` report.
    pub fn to_json(&self) -> Json {
        let hist = |h: &GapHist| {
            Json::obj()
                .with("zero", Json::UInt(h.zero as u64))
                .with("le1_pct", Json::UInt(h.le1 as u64))
                .with("le5_pct", Json::UInt(h.le5 as u64))
                .with("le10_pct", Json::UInt(h.le10 as u64))
                .with("gt10_pct", Json::UInt(h.gt10 as u64))
                .with("max_gap_permille", Json::UInt(h.max_permille))
        };
        let model = |m: &ModelGapStats| {
            Json::obj()
                .with("solved", Json::UInt(m.solved as u64))
                .with("bounded", Json::UInt(m.bounded as u64))
                .with("skipped", Json::UInt(m.skipped as u64))
                .with("gaps", hist(&m.hist))
        };
        Json::obj()
            .with("target", Json::str(self.target))
            .with("hier_jump_vs_jump_optimum", model(&self.stats.jump))
            .with("hier_exec_vs_exec_optimum", model(&self.stats.exec))
    }
}

/// Aggregated outcome of a stress run.
#[derive(Debug, Default)]
pub struct StressSummary {
    /// `(target, seed)` cases checked (including failing ones).
    pub cases: usize,
    /// Functions generated and run through the pipeline.
    pub functions: usize,
    /// Functions that used callee-saved registers.
    pub placed_functions: usize,
    /// Technique × function placements checked against the oracles.
    pub placements_checked: usize,
    /// Per-target exact-oracle statistics, in configuration target
    /// order. Empty unless [`StressConfig::exact`] was set.
    pub exact: Vec<TargetGapStats>,
    /// Minimized counterexamples, ordered by seed then registry order.
    pub failures: Vec<SeedFailure>,
}

impl StressSummary {
    /// `true` when every case passed every oracle.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The `spillopt gap --json` report body (the caller wraps it with
    /// run provenance).
    pub fn gap_report_json(&self) -> Json {
        Json::Array(self.exact.iter().map(TargetGapStats::to_json).collect())
    }
}

/// Runs the oracles over `config.seeds` seeds × `config.targets` targets
/// on the work-stealing pool. Deterministic: the summary (including
/// failure order) is a pure function of the configuration.
pub fn run_stress(config: &StressConfig) -> StressSummary {
    let mut items: Vec<(TargetSpec, u64)> = Vec::new();
    for seed in config.start..config.start.saturating_add(config.seeds) {
        for spec in &config.targets {
            items.push((spec.clone(), seed));
        }
    }
    let cases = items.len();
    let coords: Vec<(&'static str, u64)> = items.iter().map(|(s, seed)| (s.name, *seed)).collect();
    // `run_seed` already catches pipeline panics; this extra net covers
    // a panic in the generator or minimizer itself, converting it into a
    // failure that names its (target, seed) instead of killing the sweep.
    let exact = config.exact;
    let outcomes: Vec<Result<CaseReport, Box<SeedFailure>>> =
        match try_run_indexed(items, config.threads, move |_, (spec, seed)| {
            run_seed_with(&spec, seed, exact.as_ref())
        }) {
            Ok(outcomes) => outcomes,
            Err(p) => {
                let (target, seed) = coords[p.index];
                return StressSummary {
                    cases,
                    failures: vec![SeedFailure {
                        seed,
                        target,
                        failure: OracleFailure {
                            kind: FailureKind::Panic,
                            strategy: None,
                            detail: format!("stress harness panicked: {}", p.message()),
                        },
                        minimized: String::new(),
                        runs: Vec::new(),
                    }],
                    ..StressSummary::default()
                };
            }
        };

    let mut summary = StressSummary {
        cases: outcomes.len(),
        ..StressSummary::default()
    };
    if config.exact.is_some() {
        summary.exact = config
            .targets
            .iter()
            .map(|spec| TargetGapStats {
                target: spec.name,
                stats: ExactStats::default(),
            })
            .collect();
    }
    // Items were pushed seed-major, so case `i` ran on target
    // `i % targets.len()`.
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(report) => {
                summary.functions += report.functions;
                summary.placed_functions += report.placed_functions;
                summary.placements_checked += report.placements_checked;
                if let Some(t) = summary.exact.get_mut(i % config.targets.len()) {
                    t.stats.accumulate(&report.exact);
                }
            }
            Err(failure) => summary.failures.push(*failure),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_slice_passes_on_every_registered_target() {
        let summary = run_stress(&StressConfig {
            start: 0,
            seeds: 3,
            targets: spillopt_targets::registry(),
            threads: 0,
            exact: None,
        });
        assert_eq!(summary.cases, 3 * spillopt_targets::registry().len());
        assert!(
            summary.passed(),
            "stress failures:\n{}",
            summary
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(summary.functions > 0);
    }

    #[test]
    fn summary_is_deterministic_across_thread_counts() {
        let config = |threads| StressConfig {
            start: 5,
            seeds: 2,
            targets: vec![spillopt_targets::pa_risc_like()],
            threads,
            exact: None,
        };
        let a = run_stress(&config(1));
        let b = run_stress(&config(4));
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.functions, b.functions);
        assert_eq!(a.placements_checked, b.placements_checked);
    }

    #[test]
    fn exact_mode_aggregates_per_target_gap_stats() {
        let summary = run_stress(&StressConfig {
            start: 0,
            seeds: 2,
            targets: spillopt_targets::registry(),
            threads: 0,
            exact: Some(ExactOptions::default()),
        });
        assert!(
            summary.passed(),
            "exact-oracle failures:\n{}",
            summary
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(summary.exact.len(), spillopt_targets::registry().len());
        // Every generated function is accounted for under both models.
        for t in &summary.exact {
            for m in [&t.stats.jump, &t.stats.exec] {
                assert!(
                    m.solved + m.bounded + m.skipped > 0,
                    "{}: no coverage",
                    t.target
                );
            }
        }
        // The oracle runs once per placed function (functions with no
        // callee-saved use have a trivially empty optimal placement).
        let accounted: usize = summary
            .exact
            .iter()
            .map(|t| t.stats.jump.solved + t.stats.jump.bounded + t.stats.jump.skipped)
            .sum();
        assert_eq!(accounted, summary.placed_functions);
        let solved: usize = summary.exact.iter().map(|t| t.stats.jump.solved).sum();
        assert!(solved > 0, "exact oracle certified nothing");
        // The JSON report names every target.
        let json = summary.gap_report_json().to_compact();
        for spec in spillopt_targets::registry() {
            assert!(json.contains(spec.name), "missing {} in {json}", spec.name);
        }
    }
}
