//! A small work-stealing thread pool for per-function module work.
//!
//! The driver's unit of work is one function's full placement pipeline
//! (allocate → analyses → four techniques), whose cost varies wildly
//! across functions — SPEC-like modules mix two-block leaves with
//! thousand-instruction bodies. A static partition would leave workers
//! idle behind the largest function, so each worker owns a deque seeded
//! round-robin and steals from the *front* of a victim's deque when its
//! own runs dry (owner pops from the back: stealers and owner contend
//! only when a deque is nearly empty).
//!
//! Determinism: results are returned in item order, independent of
//! thread count and steal interleaving — [`run_indexed`] with 8 threads
//! is bit-identical to a serial run. The pool uses only `std` and has no
//! global state. Worker panics are *caught* ([`try_run_indexed`]), so a
//! panicking item can never poison the deque or result mutexes and
//! resurface on another thread as an opaque `PoisonError`; callers
//! receive the first panicking item's index and payload instead
//! ([`run_indexed`] re-raises it on the calling thread).

use spillopt_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use spillopt_sync::{thread, Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Instant;

/// A panic raised by one work item, caught by the pool.
pub struct ItemPanic {
    /// Index of the panicking item (the smallest observed; with aborts in
    /// flight later items may not have run).
    pub index: usize,
    /// The original panic payload, re-raisable with
    /// [`std::panic::resume_unwind`].
    pub payload: Box<dyn std::any::Any + Send>,
}

impl ItemPanic {
    /// The panic message: strings verbatim, the fault layer's typed
    /// payloads via their `Display` forms.
    pub fn message(&self) -> String {
        payload_message(&*self.payload)
    }
}

/// Renders a caught panic payload: strings verbatim, the typed payloads
/// of the fault layer (`spillopt_obs::fault`) via their `Display`
/// forms. (Deliberately a local twin of `spillopt_stress::panic_message`
/// for the string cases: the pool keeps no dependency on the fuzzing
/// crate.)
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(b) = payload.downcast_ref::<spillopt_obs::fault::BudgetExceeded>() {
        b.to_string()
    } else if let Some(i) = payload.downcast_ref::<spillopt_obs::fault::InjectedFault>() {
        i.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

impl std::fmt::Debug for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ItemPanic")
            .field("index", &self.index)
            .field("message", &self.message())
            .finish()
    }
}

/// Runs `work(i, item)` for every item, on `threads` workers, returning
/// the results in item order regardless of scheduling.
///
/// `threads == 0` selects the available CPU parallelism; `threads == 1`
/// runs inline with no thread machinery at all (the reference serial
/// schedule the parallel runs must match).
///
/// # Panics
///
/// Re-raises the first caught item panic on the calling thread (see
/// [`try_run_indexed`] for the non-panicking form).
pub fn run_indexed<I, T, F>(items: Vec<I>, threads: usize, work: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    try_run_indexed(items, threads, work).unwrap_or_else(|p| resume_unwind(p.payload))
}

/// As [`run_indexed`], but a panicking item aborts the run and is
/// returned as an [`ItemPanic`] instead of unwinding through the pool.
///
/// Catching inside the worker keeps the deque and result mutexes
/// unpoisoned and lets the driver attach context (which function's
/// pipeline died) before surfacing the failure. When items panic
/// concurrently the smallest observed index is reported; remaining items
/// may be skipped.
///
/// # Errors
///
/// Returns the first caught [`ItemPanic`].
pub fn try_run_indexed<I, T, F>(items: Vec<I>, threads: usize, work: F) -> Result<Vec<T>, ItemPanic>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return serial_run(items, &work);
    }

    // Seed the deques round-robin so every worker starts with a share of
    // the (typically size-correlated) item sequence.
    let mut deques: Vec<Mutex<VecDeque<(usize, I)>>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        deques.push(Mutex::new(VecDeque::new()));
    }
    for (i, item) in items.into_iter().enumerate() {
        deques[i % threads].get_mut().unwrap().push_back((i, item));
    }
    let remaining = AtomicUsize::new(deques.iter_mut().map(|d| d.get_mut().unwrap().len()).sum());
    let abort = AtomicBool::new(false);
    let panicked: Mutex<Option<ItemPanic>> = Mutex::new(None);

    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(remaining.load(Ordering::Relaxed), || None);
    let slots = Mutex::new(&mut results);

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for me in 0..threads {
            let deques = &deques;
            let remaining = &remaining;
            let abort = &abort;
            let panicked = &panicked;
            let slots = &slots;
            let work = &work;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                while remaining.load(Ordering::Acquire) > 0 && !abort.load(Ordering::Acquire) {
                    let next = pop_own(&deques[me]).or_else(|| steal(deques, me));
                    match next {
                        Some((i, item)) => {
                            match catch_unwind(AssertUnwindSafe(|| work(i, item))) {
                                Ok(out) => local.push((i, out)),
                                Err(payload) => {
                                    // Keep the smallest panicking index
                                    // (deterministic for the serial
                                    // schedule, best-effort otherwise).
                                    let mut slot = panicked.lock().unwrap();
                                    if slot.as_ref().is_none_or(|p| i < p.index) {
                                        *slot = Some(ItemPanic { index: i, payload });
                                    }
                                    abort.store(true, Ordering::Release);
                                }
                            }
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        None => {
                            // Deques are empty but another worker still
                            // holds an in-flight item; a short sleep
                            // bounds the CPU burned waiting for it.
                            thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                }
                // Publish results under one short lock per worker.
                let mut slots = slots.lock().unwrap();
                for (i, out) in local {
                    slots[i] = Some(out);
                }
            }));
        }
        for h in handles {
            h.join().expect("pool workers never unwind");
        }
    });

    if let Some(p) = panicked.into_inner().unwrap() {
        return Err(p);
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every item completed"))
        .collect())
}

/// A **persistent** work pool: workers are spawned once (when a
/// [`crate::Session`] is built) and reused by every batch, so the
/// warm-server shape — many `optimize` calls against one configured
/// session — pays thread spin-up once instead of per module.
///
/// Batches keep the free functions' contract: results in item order,
/// panics caught per item and reported as [`ItemPanic`] (mutexes never
/// poisoned), and output that is a pure function of the items — the
/// worker count only changes wall-clock, never bytes.
pub struct Pool {
    /// `None` when the pool is serial (1 effective worker): batches run
    /// inline on the calling thread with no thread machinery at all.
    shared: Option<Arc<Shared>>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("persistent", &self.shared.is_some())
            .finish()
    }
}

/// The queue the persistent workers serve. Jobs are lifetime-erased
/// closures; the submitting batch blocks until every one of its jobs has
/// retired, which is what makes the erasure sound (see `run_batch`).
struct Shared {
    state: Mutex<Queue>,
    work_ready: Condvar,
    /// Per-worker lifetime accounting, indexed by worker id.
    worker_stats: Vec<WorkerCounters>,
}

/// Relaxed per-worker accumulators (a few clock reads per job — each job
/// is a whole function pipeline, so the accounting is noise).
#[derive(Default)]
struct WorkerCounters {
    /// Jobs this worker dequeued and began executing.
    started: AtomicU64,
    /// Jobs this worker finished (`items` in [`PoolWorkerStats`]).
    items: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

/// A snapshot of one persistent worker's lifetime activity, from
/// [`Pool::worker_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolWorkerStats {
    /// Jobs this worker executed (or skipped after a batch abort).
    pub items: u64,
    /// Nanoseconds spent running jobs.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting for work.
    pub idle_ns: u64,
}

struct Queue {
    jobs: VecDeque<Box<dyn FnOnce() + Send>>,
    shutdown: bool,
}

/// One in-flight batch: result slots, completion accounting, and the
/// first caught panic. Lives on the submitting thread's stack; jobs hold
/// (erased) references into it.
struct Batch<T> {
    slots: Mutex<Vec<Option<T>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    abort: AtomicBool,
    panicked: Mutex<Option<ItemPanic>>,
}

impl<T> Batch<T> {
    fn execute<I, F>(&self, work: &F, i: usize, item: I)
    where
        F: Fn(usize, I) -> T,
    {
        if !self.abort.load(Ordering::Acquire) {
            match catch_unwind(AssertUnwindSafe(|| work(i, item))) {
                Ok(out) => self.slots.lock().unwrap()[i] = Some(out),
                Err(payload) => {
                    let mut slot = self.panicked.lock().unwrap();
                    if slot.as_ref().is_none_or(|p| i < p.index) {
                        *slot = Some(ItemPanic { index: i, payload });
                    }
                    self.abort.store(true, Ordering::Release);
                }
            }
        }
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

impl Pool {
    /// Spawns a pool of `threads` persistent workers (`0` = available
    /// parallelism). One effective worker means a serial pool: no
    /// threads at all, batches run inline — the deterministic reference
    /// schedule.
    pub fn new(threads: usize) -> Pool {
        let threads = effective_threads(threads, usize::MAX);
        if threads <= 1 {
            return Pool {
                shared: None,
                workers: Vec::new(),
                threads: 1,
            };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            worker_stats: (0..threads).map(|_| WorkerCounters::default()).collect(),
        });
        let workers = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared, me))
            })
            .collect();
        Pool {
            shared: Some(shared),
            workers,
            threads,
        }
    }

    /// The worker count the pool was built with (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lifetime activity of each persistent worker (items executed, busy
    /// and idle nanoseconds), indexed by worker id. Empty for a serial
    /// pool — inline batches have no workers to account.
    pub fn worker_stats(&self) -> Vec<PoolWorkerStats> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        shared
            .worker_stats
            .iter()
            .map(|w| PoolWorkerStats {
                items: w.items.load(Ordering::Relaxed),
                busy_ns: w.busy_ns.load(Ordering::Relaxed),
                idle_ns: w.idle_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Runs `work(i, item)` for every item on the persistent workers,
    /// returning results in item order. Semantics match
    /// [`try_run_indexed`]: a panicking item aborts the batch and is
    /// returned as an [`ItemPanic`].
    ///
    /// # Errors
    ///
    /// Returns the first caught [`ItemPanic`].
    pub fn run_batch<I, T, F>(&self, items: Vec<I>, work: F) -> Result<Vec<T>, ItemPanic>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let Some(shared) = &self.shared else {
            return serial_run(items, &work);
        };
        if items.len() <= 1 {
            return serial_run(items, &work);
        }

        let n = items.len();
        let batch: Batch<T> = Batch {
            slots: Mutex::new(Vec::new()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            abort: AtomicBool::new(false),
            panicked: Mutex::new(None),
        };
        batch.slots.lock().unwrap().resize_with(n, || None);

        // SAFETY: each job borrows `batch` and `work` from this stack
        // frame through a lifetime-erased `Box<dyn FnOnce>`. The erasure
        // is sound because this function does not return (and the frame
        // does not unwind) until `batch.remaining` hits zero — every job
        // has run (or been skipped via `abort`) and dropped its borrows.
        // Between enqueue and the wait below there is no panicking
        // operation on this thread: the queue mutex cannot be poisoned
        // (workers never run user code while holding it).
        let jobs: Vec<Box<dyn FnOnce() + Send>> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let batch = &batch;
                let work = &work;
                let job: Box<dyn FnOnce() + Send + '_> =
                    Box::new(move || batch.execute(work, i, item));
                unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(
                        job,
                    )
                }
            })
            .collect();
        let depth = {
            let mut state = shared.state.lock().unwrap();
            state.jobs.extend(jobs);
            state.jobs.len() as u64
        };
        shared.work_ready.notify_all();
        // Queue depth at enqueue: how much work this batch stacked up
        // behind whatever was already queued.
        spillopt_obs::sample("pool_queue_depth", depth);

        let mut remaining = batch.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).unwrap();
        }
        drop(remaining);

        if let Some(p) = batch.panicked.into_inner().unwrap() {
            return Err(p);
        }
        Ok(batch
            .slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every item completed"))
            .collect())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.state.lock().unwrap().shutdown = true;
            shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Shutdown balance check: with every worker joined, each one
        // must have finished every job it started — a worker that
        // vanished mid-job (or double-counted) indicates a broken
        // drain/shutdown protocol. Debug builds only: release pools
        // skip the scan.
        #[cfg(debug_assertions)]
        if let Some(shared) = &self.shared {
            for (i, w) in shared.worker_stats.iter().enumerate() {
                let started = w.started.load(Ordering::Relaxed);
                let finished = w.items.load(Ordering::Relaxed);
                debug_assert_eq!(
                    started, finished,
                    "pool worker {i} left busy at shutdown: \
                     started {started} jobs, finished {finished}"
                );
            }
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let stats = &shared.worker_stats[me];
    loop {
        let wait_start = Instant::now();
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work_ready.wait(state).unwrap();
            }
        };
        stats
            .idle_ns
            .fetch_add(wait_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match job {
            // Jobs never unwind: `Batch::execute` catches item panics.
            Some(job) => {
                stats.started.fetch_add(1, Ordering::Relaxed);
                let busy_start = Instant::now();
                {
                    // The outermost span on this worker: closing it also
                    // flushes the worker's event buffer, so a recording
                    // that finishes after the batch joins sees everything.
                    let _s = spillopt_obs::span("pool_job");
                    spillopt_obs::count("pool_jobs", 1);
                    job();
                }
                stats.items.fetch_add(1, Ordering::Relaxed);
                stats
                    .busy_ns
                    .fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            None => return,
        }
    }
}

/// The inline (no-thread) schedule shared by serial pools and
/// single-item batches.
fn serial_run<I, T, F>(items: Vec<I>, work: &F) -> Result<Vec<T>, ItemPanic>
where
    F: Fn(usize, I) -> T,
{
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.into_iter().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| work(i, item))) {
            Ok(t) => out.push(t),
            Err(payload) => return Err(ItemPanic { index: i, payload }),
        }
    }
    Ok(out)
}

/// The worker count actually used for `requested` over `n_items`.
pub fn effective_threads(requested: usize, n_items: usize) -> usize {
    let hw = thread::available_parallelism().map_or(1, |n| n.get());
    let t = if requested == 0 { hw } else { requested };
    t.min(n_items.max(1))
}

fn pop_own<I>(deque: &Mutex<VecDeque<(usize, I)>>) -> Option<(usize, I)> {
    deque.lock().unwrap().pop_back()
}

fn steal<I>(deques: &[Mutex<VecDeque<(usize, I)>>], me: usize) -> Option<(usize, I)> {
    let n = deques.len();
    for k in 1..n {
        let victim = (me + k) % n;
        if let Some(stolen) = deques[victim].lock().unwrap().pop_front() {
            return Some(stolen);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = run_indexed(items.clone(), 1, |i, x| (i as u64) * 1000 + x * x);
        let parallel = run_indexed(items, 7, |i, x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One huge item up front; the rest tiny. All must complete.
        let items: Vec<u64> = (0..64).map(|i| if i == 0 { 1 << 14 } else { 1 }).collect();
        let out = run_indexed(items, 4, |_, n| (0..n).map(|x| x ^ (x >> 3)).sum::<u64>());
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn zero_threads_means_auto() {
        let out = run_indexed(vec![1, 2, 3], 0, |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_indexed(Vec::<i32>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        run_indexed(vec![0usize; 16], 4, |i, _| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn persistent_pool_matches_serial_across_batches() {
        let pool = Pool::new(4);
        assert!(pool.threads() >= 1);
        let items: Vec<u64> = (0..257).collect();
        let serial = run_indexed(items.clone(), 1, |i, x| (i as u64) * 1000 + x * x);
        // The same pool serves several batches (the warm-session shape).
        for _ in 0..3 {
            let batch = pool
                .run_batch(items.clone(), |i, x| (i as u64) * 1000 + x * x)
                .expect("no panics");
            assert_eq!(serial, batch);
        }
    }

    #[test]
    fn persistent_pool_catches_panics_and_stays_usable() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let err = pool
            .run_batch(items.clone(), |i, x| {
                if i == 13 {
                    panic!("boom at {i}");
                }
                x * 2
            })
            .expect_err("item 13 panics");
        assert!(err.message().contains("boom"));
        // Nothing was poisoned; the same workers serve the next batch.
        let ok = pool.run_batch(items, |_, x| x + 1).expect("no panics");
        assert_eq!(ok.len(), 64);
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.run_batch(vec![1, 2, 3], |_, x| x * 2).expect("serial");
        assert_eq!(out, vec![2, 4, 6]);
        // No workers, no worker accounting.
        assert!(pool.worker_stats().is_empty());
    }

    #[test]
    fn worker_stats_account_for_every_item() {
        let pool = Pool::new(3);
        let items: Vec<u64> = (0..64).collect();
        pool.run_batch(items, |_, x| x * 2).expect("no panics");
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), pool.threads());
        let total: u64 = stats.iter().map(|w| w.items).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn caught_panic_names_the_item_and_poisons_nothing() {
        let items: Vec<usize> = (0..64).collect();
        let err = try_run_indexed(items.clone(), 4, |i, x| {
            if i == 13 {
                panic!("boom at {i}");
            }
            x * 2
        })
        .expect_err("item 13 panics");
        assert!(err.message().contains("boom"));
        // Serial schedule reports the smallest panicking index exactly.
        let serial = try_run_indexed(items.clone(), 1, |i, x| {
            if i >= 13 {
                panic!("boom at {i}");
            }
            x * 2
        })
        .expect_err("item 13 panics");
        assert_eq!(serial.index, 13);
        // The pool is reusable afterwards: nothing was poisoned.
        let ok = try_run_indexed(items, 4, |_, x| x + 1).expect("no panics");
        assert_eq!(ok.len(), 64);
    }
}

/// Model-checked suites: the pool's submit/drain/shutdown and panic
/// protocols explored over every interleaving reachable under the
/// preemption bound. Run with
/// `cargo test -p spillopt-driver --features model`.
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::*;
    use spillopt_sync::model::{check, ModelOptions};

    /// Small bounds keep each scenario's schedule tree enumerable while
    /// still covering worker/submitter preemptions at every lock,
    /// condvar, and non-relaxed atomic operation.
    fn opts() -> ModelOptions {
        ModelOptions::new().executions(50_000)
    }

    /// Submit/drain: a 2-worker pool runs a 3-item batch; results come
    /// back in item order under every schedule, and shutdown (the
    /// `Drop`) joins cleanly — including its debug-build check that
    /// every worker finished what it started.
    #[test]
    fn model_submit_drain_shutdown() {
        let report = check(opts(), || {
            let pool = Pool::new(2);
            let out = pool
                .run_batch(vec![10u64, 20, 30], |i, x| x + i as u64)
                .expect("no panics");
            assert_eq!(out, vec![10, 21, 32]);
            drop(pool);
        });
        eprintln!(
            "model_submit_drain_shutdown: {} schedules",
            report.executions
        );
        assert!(
            report.executions > 1,
            "expected >1 interleaving, got {}",
            report.executions
        );
    }

    /// Shutdown with an empty queue: both workers are (possibly) parked
    /// on `work_ready` when the `Drop` broadcasts shutdown; no schedule
    /// may strand a worker (a lost shutdown notify would deadlock the
    /// join).
    #[test]
    fn model_idle_shutdown_wakes_all_workers() {
        let report = check(opts(), || {
            let pool = Pool::new(2);
            drop(pool);
        });
        eprintln!(
            "model_idle_shutdown_wakes_all_workers: {} schedules",
            report.executions
        );
        assert!(report.executions > 1);
    }

    /// Panic path: one item panics; under every schedule the batch
    /// reports an `ItemPanic` (never a poisoned mutex, never a hang)
    /// and shutdown still balances. Pool *reuse* after a panic is
    /// covered by the normal-mode suite; modeling a second batch here
    /// squares the schedule tree for no new protocol coverage.
    #[test]
    fn model_item_panic_aborts_batch() {
        let report = check(opts(), || {
            let pool = Pool::new(2);
            let err = pool
                .run_batch(vec![0u64, 1], |i, x| {
                    if i == 1 {
                        panic!("model boom");
                    }
                    x
                })
                .expect_err("item 1 panics");
            assert!(err.message().contains("model boom"));
            drop(pool);
        });
        eprintln!(
            "model_item_panic_aborts_batch: {} schedules",
            report.executions
        );
        assert!(report.executions > 1);
    }

    /// The scoped (non-persistent) path: `try_run_indexed` with its
    /// work-stealing deques, model-checked end to end.
    #[test]
    fn model_scoped_run_indexed() {
        let report = check(opts(), || {
            let out = try_run_indexed(vec![1u64, 2, 3], 2, |_, x| x * 10).expect("no panics");
            assert_eq!(out, vec![10, 20, 30]);
        });
        eprintln!("model_scoped_run_indexed: {} schedules", report.executions);
        assert!(report.executions > 1);
    }
}
