//! A small work-stealing thread pool for per-function module work.
//!
//! The driver's unit of work is one function's full placement pipeline
//! (allocate → analyses → four techniques), whose cost varies wildly
//! across functions — SPEC-like modules mix two-block leaves with
//! thousand-instruction bodies. A static partition would leave workers
//! idle behind the largest function, so each worker owns a deque seeded
//! round-robin and steals from the *front* of a victim's deque when its
//! own runs dry (owner pops from the back: stealers and owner contend
//! only when a deque is nearly empty).
//!
//! Determinism: results are returned in item order, independent of
//! thread count and steal interleaving — [`run_indexed`] with 8 threads
//! is bit-identical to a serial run. The pool uses only `std` and has no
//! global state. Worker panics are *caught* ([`try_run_indexed`]), so a
//! panicking item can never poison the deque or result mutexes and
//! resurface on another thread as an opaque `PoisonError`; callers
//! receive the first panicking item's index and payload instead
//! ([`run_indexed`] re-raises it on the calling thread).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A panic raised by one work item, caught by the pool.
pub struct ItemPanic {
    /// Index of the panicking item (the smallest observed; with aborts in
    /// flight later items may not have run).
    pub index: usize,
    /// The original panic payload, re-raisable with
    /// [`std::panic::resume_unwind`].
    pub payload: Box<dyn std::any::Any + Send>,
}

impl ItemPanic {
    /// The panic message, when the payload is a string. (Deliberately a
    /// local twin of `spillopt_stress::panic_message`: the pool is
    /// self-contained `std`-only infrastructure and keeps no dependency
    /// on the fuzzing crate.)
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }
}

impl std::fmt::Debug for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ItemPanic")
            .field("index", &self.index)
            .field("message", &self.message())
            .finish()
    }
}

/// Runs `work(i, item)` for every item, on `threads` workers, returning
/// the results in item order regardless of scheduling.
///
/// `threads == 0` selects the available CPU parallelism; `threads == 1`
/// runs inline with no thread machinery at all (the reference serial
/// schedule the parallel runs must match).
///
/// # Panics
///
/// Re-raises the first caught item panic on the calling thread (see
/// [`try_run_indexed`] for the non-panicking form).
pub fn run_indexed<I, T, F>(items: Vec<I>, threads: usize, work: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    try_run_indexed(items, threads, work).unwrap_or_else(|p| resume_unwind(p.payload))
}

/// As [`run_indexed`], but a panicking item aborts the run and is
/// returned as an [`ItemPanic`] instead of unwinding through the pool.
///
/// Catching inside the worker keeps the deque and result mutexes
/// unpoisoned and lets the driver attach context (which function's
/// pipeline died) before surfacing the failure. When items panic
/// concurrently the smallest observed index is reported; remaining items
/// may be skipped.
///
/// # Errors
///
/// Returns the first caught [`ItemPanic`].
pub fn try_run_indexed<I, T, F>(items: Vec<I>, threads: usize, work: F) -> Result<Vec<T>, ItemPanic>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.into_iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| work(i, item))) {
                Ok(t) => out.push(t),
                Err(payload) => return Err(ItemPanic { index: i, payload }),
            }
        }
        return Ok(out);
    }

    // Seed the deques round-robin so every worker starts with a share of
    // the (typically size-correlated) item sequence.
    let mut deques: Vec<Mutex<VecDeque<(usize, I)>>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        deques.push(Mutex::new(VecDeque::new()));
    }
    for (i, item) in items.into_iter().enumerate() {
        deques[i % threads].get_mut().unwrap().push_back((i, item));
    }
    let remaining = AtomicUsize::new(deques.iter_mut().map(|d| d.get_mut().unwrap().len()).sum());
    let abort = AtomicBool::new(false);
    let panicked: Mutex<Option<ItemPanic>> = Mutex::new(None);

    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(remaining.load(Ordering::Relaxed), || None);
    let slots = Mutex::new(&mut results);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for me in 0..threads {
            let deques = &deques;
            let remaining = &remaining;
            let abort = &abort;
            let panicked = &panicked;
            let slots = &slots;
            let work = &work;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                while remaining.load(Ordering::Acquire) > 0 && !abort.load(Ordering::Acquire) {
                    let next = pop_own(&deques[me]).or_else(|| steal(deques, me));
                    match next {
                        Some((i, item)) => {
                            match catch_unwind(AssertUnwindSafe(|| work(i, item))) {
                                Ok(out) => local.push((i, out)),
                                Err(payload) => {
                                    // Keep the smallest panicking index
                                    // (deterministic for the serial
                                    // schedule, best-effort otherwise).
                                    let mut slot = panicked.lock().unwrap();
                                    if slot.as_ref().is_none_or(|p| i < p.index) {
                                        *slot = Some(ItemPanic { index: i, payload });
                                    }
                                    abort.store(true, Ordering::Release);
                                }
                            }
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        None => {
                            // Deques are empty but another worker still
                            // holds an in-flight item; a short sleep
                            // bounds the CPU burned waiting for it.
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                }
                // Publish results under one short lock per worker.
                let mut slots = slots.lock().unwrap();
                for (i, out) in local {
                    slots[i] = Some(out);
                }
            }));
        }
        for h in handles {
            h.join().expect("pool workers never unwind");
        }
    });

    if let Some(p) = panicked.into_inner().unwrap() {
        return Err(p);
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every item completed"))
        .collect())
}

/// The worker count actually used for `requested` over `n_items`.
pub fn effective_threads(requested: usize, n_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t = if requested == 0 { hw } else { requested };
    t.min(n_items.max(1))
}

fn pop_own<I>(deque: &Mutex<VecDeque<(usize, I)>>) -> Option<(usize, I)> {
    deque.lock().unwrap().pop_back()
}

fn steal<I>(deques: &[Mutex<VecDeque<(usize, I)>>], me: usize) -> Option<(usize, I)> {
    let n = deques.len();
    for k in 1..n {
        let victim = (me + k) % n;
        if let Some(stolen) = deques[victim].lock().unwrap().pop_front() {
            return Some(stolen);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = run_indexed(items.clone(), 1, |i, x| (i as u64) * 1000 + x * x);
        let parallel = run_indexed(items, 7, |i, x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One huge item up front; the rest tiny. All must complete.
        let items: Vec<u64> = (0..64).map(|i| if i == 0 { 1 << 14 } else { 1 }).collect();
        let out = run_indexed(items, 4, |_, n| (0..n).map(|x| x ^ (x >> 3)).sum::<u64>());
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn zero_threads_means_auto() {
        let out = run_indexed(vec![1, 2, 3], 0, |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_indexed(Vec::<i32>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        run_indexed(vec![0usize; 16], 4, |i, _| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn caught_panic_names_the_item_and_poisons_nothing() {
        let items: Vec<usize> = (0..64).collect();
        let err = try_run_indexed(items.clone(), 4, |i, x| {
            if i == 13 {
                panic!("boom at {i}");
            }
            x * 2
        })
        .expect_err("item 13 panics");
        assert!(err.message().contains("boom"));
        // Serial schedule reports the smallest panicking index exactly.
        let serial = try_run_indexed(items.clone(), 1, |i, x| {
            if i >= 13 {
                panic!("boom at {i}");
            }
            x * 2
        })
        .expect_err("item 13 panics");
        assert_eq!(serial.index, 13);
        // The pool is reusable afterwards: nothing was poisoned.
        let ok = try_run_indexed(items, 4, |_, x| x + 1).expect("no panics");
        assert_eq!(ok.len(), 64);
    }
}
