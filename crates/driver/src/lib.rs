//! # spillopt-driver
//!
//! Module-scale optimization driver for the *spillopt* reproduction of
//! Lupo & Wilken, "Post Register Allocation Spill Code Optimization"
//! (CGO 2006) — the layer that turns the per-procedure algorithms of
//! `spillopt-core` into a whole-module pipeline:
//!
//! * [`AnalysisCache`] — every CFG-derived analysis a function's
//!   placement needs (CFG, dominators, loops, liveness, SCCs, PST,
//!   profile, callee-saved usage), computed **once** and shared by all
//!   four techniques through the borrowed-analysis entry points
//!   ([`spillopt_core::run_suite_with`]);
//! * [`pool`] — a `std`-only work-stealing thread pool that fans
//!   functions out across cores and returns results in deterministic
//!   function order;
//! * [`optimize_module`] — profile (training workload or synthetic
//!   random walks) → Chaitin/Briggs allocation → cached analyses → all
//!   four placements per function, folded into a [`ModuleReport`] whose
//!   JSON bytes are identical for every thread count;
//! * [`optimize_module_for`] / [`cross_target_runs`] — the same
//!   pipeline against a registered backend target
//!   ([`spillopt_targets::TargetSpec`]) or fanned out across all of
//!   them, with every decision priced by the target's spill cost model;
//! * [`bench`] / [`refimpl`] — the perf-trajectory harness: the frozen
//!   pre-rewrite pipeline kept executable, timed against the current
//!   one over a seeded stress corpus with byte-identical reports
//!   required (`spillopt bench --json`, `BENCH_*.json` records);
//! * [`stress`] — fan-out of the differential stress subsystem
//!   (`spillopt-stress`: random-CFG modules × interpreter oracles) over
//!   `(target, seed)` pairs on the same pool;
//! * [`cli`] — the `spillopt` binary: `optimize`, `compare`, `report`,
//!   `stress`, `list-targets`.
//!
//! # Examples
//!
//! ```
//! use spillopt_driver::{optimize_module, DriverConfig, ProfileSource, Strategy};
//! use spillopt_benchgen::{benchmark_by_name, build_bench};
//! use spillopt_ir::Target;
//!
//! // Optimize a generated SPEC stand-in on 2 threads.
//! let target = Target::default();
//! let bench = build_bench(&benchmark_by_name("mcf").unwrap(), &target);
//! let config = DriverConfig {
//!     threads: 2,
//!     profile: ProfileSource::Workload(bench.train_runs.clone()),
//! };
//! let run = optimize_module(&bench.module, &target, &config).unwrap();
//!
//! // The report is deterministic: a serial run produces the same bytes.
//! let serial = optimize_module(&bench.module, &target, &DriverConfig {
//!     threads: 1,
//!     profile: ProfileSource::Workload(bench.train_runs),
//! }).unwrap();
//! assert_eq!(run.report.to_json().to_compact(),
//!            serial.report.to_json().to_compact());
//!
//! // The paper's guarantee survives aggregation: hierarchical placement
//! // under the jump-edge model never loses to the entry/exit baseline.
//! assert!(run.report.total_cost(Strategy::HierJump)
//!     <= run.report.total_cost(Strategy::Baseline));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod cache;
pub mod cli;
pub mod driver;
pub mod json;
pub mod pool;
pub mod refimpl;
pub mod report;
pub mod stress;

pub use bench::{run_bench, BenchConfig, BenchOutcome};
pub use cache::AnalysisCache;
pub use driver::{
    cross_target_runs, optimize_module, optimize_module_for, DriverConfig, DriverError, ModuleRun,
    ProfileSource, Strategy,
};
pub use json::Json;
pub use report::{CrossTargetReport, FunctionReport, ModuleReport, StrategyReport};
pub use stress::{run_stress, StressConfig, StressSummary};
