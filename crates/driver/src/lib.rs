//! # spillopt-driver
//!
//! Module-scale optimization driver for the *spillopt* reproduction of
//! Lupo & Wilken, "Post Register Allocation Spill Code Optimization"
//! (CGO 2006) — the layer that turns the per-procedure algorithms of
//! `spillopt-core` into a whole-module pipeline behind **one**
//! session-based API:
//!
//! * [`OptimizerBuilder`] / [`Session`] — the only supported entry
//!   point: configure target (preset [`spillopt_ir::Target`], registered
//!   [`spillopt_targets::TargetSpec`] name, or all of them), cost-model
//!   override, [`ProfileSource`], thread count, and a typed
//!   [`TechniqueSet`]; `build()` validates once and returns a warm
//!   session that owns the persistent work pool and a per-session
//!   analysis arena. [`Session::optimize`], [`Session::optimize_many`],
//!   and [`Session::cross_target`] all return [`ModuleRun`]s and accept
//!   an optional streaming [`Observer`];
//! * [`AnalysisCache`] — every CFG-derived analysis a function's
//!   placement needs (CFG, dominators, loops, liveness, SCCs, PST,
//!   profile, callee-saved usage), computed **once** per function and
//!   shared by all selected techniques through
//!   [`spillopt_core::run_suite`]'s borrowed-analysis inputs;
//! * [`pool`] — the `std`-only work pool: persistent workers for
//!   sessions ([`pool::Pool`]), scoped per-call scheduling for the
//!   deprecated free functions, deterministic item-order results either
//!   way;
//! * [`mod@bench`] / [`refimpl`] — the perf-trajectory harness: the frozen
//!   pre-rewrite pipeline kept executable, timed against the current
//!   one over a seeded stress corpus with byte-identical reports
//!   required (`spillopt bench --json`, `BENCH_*.json` records);
//! * [`stress`] — fan-out of the differential stress subsystem
//!   (`spillopt-stress`: random-CFG modules × interpreter oracles) over
//!   `(target, seed)` pairs;
//! * [`drift`] — the profile-drift fuzzer (`spillopt stress --drift`):
//!   seeded profile-mutation sequences replayed through a warm
//!   incremental session against a fresh cold pipeline, byte-identical
//!   [`ModuleReport`]s required after every step;
//! * [`faults`] — the fault-injection fuzzer (`spillopt stress
//!   --faults`): one seeded fault (panic / error / budget trip) armed
//!   at a named probe site per case, with containment, ledger
//!   exactness, blast radius, and session recovery all asserted
//!   against a fault-free oracle. Sessions opt into containment with
//!   [`OptimizerBuilder::on_fault`] ([`FailurePolicy`]) and
//!   cooperative deadlines with [`OptimizerBuilder::budget`]
//!   ([`Budget`]); contained failures land in [`ModuleRun::faults`]
//!   as [`FunctionFault`] entries;
//! * [`cli`] — the `spillopt` binary: `optimize`, `compare`, `report`,
//!   `stress`, `bench`, `list-benches`, `list-targets`.
//!
//! The pre-session free functions (`optimize_module`,
//! `optimize_module_for`, `cross_target_runs`) are kept as
//! `#[deprecated]` shims over the same engine for one release.
//!
//! # Examples
//!
//! ```
//! use spillopt_driver::{OptimizerBuilder, ProfileSource, Strategy};
//! use spillopt_benchgen::{benchmark_by_name, build_bench};
//! use spillopt_ir::Target;
//!
//! // One warm session, built once, reused for every module.
//! let target = Target::default();
//! let bench = build_bench(&benchmark_by_name("mcf").unwrap(), &target);
//! let session = OptimizerBuilder::new()
//!     .target(target)
//!     .profile(ProfileSource::Workload(bench.train_runs.clone()))
//!     .threads(2)
//!     .build()
//!     .unwrap();
//! let run = session.optimize(&bench.module).unwrap();
//!
//! // The report is deterministic: a serial session produces the same
//! // bytes.
//! let serial = OptimizerBuilder::new()
//!     .target(Target::default())
//!     .profile(ProfileSource::Workload(bench.train_runs))
//!     .threads(1)
//!     .build()
//!     .unwrap()
//!     .optimize(&bench.module)
//!     .unwrap();
//! assert_eq!(run.report.to_json().to_compact(),
//!            serial.report.to_json().to_compact());
//!
//! // Warm reuse: the second optimize of the same module is served from
//! // the session's analysis arena — and is still byte-identical.
//! let again = session.optimize(&bench.module).unwrap();
//! assert!(session.arena_stats().hits > 0);
//! assert_eq!(run.report.to_json().to_compact(),
//!            again.report.to_json().to_compact());
//!
//! // The paper's guarantee survives aggregation: hierarchical placement
//! // under the jump-edge model never loses to the entry/exit baseline.
//! assert!(run.report.total_cost(Strategy::HierJump)
//!     <= run.report.total_cost(Strategy::Baseline));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod cache;
pub mod cli;
pub mod drift;
pub mod driver;
pub mod faults;
pub mod json;
pub mod pool;
pub mod refimpl;
pub mod report;
pub mod session;
pub mod stress;

pub use bench::{run_bench, BenchConfig, BenchOutcome};
pub use cache::AnalysisCache;
pub use drift::{run_drift, DriftConfig, DriftFailure, DriftSummary, DEFAULT_DRIFT_STEPS};
#[allow(deprecated)]
pub use driver::{cross_target_runs, optimize_module, optimize_module_for};
pub use driver::{
    DriverConfig, DriverError, FaultAction, FaultKind, FunctionFault, ModuleRun, ProfileSource,
    Strategy,
};
pub use faults::{run_faults, FaultConfig, FaultFailure, FaultSummary, FAULT_SITES};
pub use json::Json;
pub use pool::PoolWorkerStats;
pub use report::{
    CrossTargetReport, FunctionReport, ModuleReport, StrategyReport, REPORT_SCHEMA_VERSION,
};
pub use session::{
    ArenaStats, Budget, FailurePolicy, Observer, OptimizerBuilder, Provenance, Session,
    SessionStats, TechniqueSet,
};
pub use stress::{run_stress, StressConfig, StressSummary};
