//! The session-based optimizer facade: [`OptimizerBuilder`] → [`Session`].
//!
//! Four PRs of growth left the public surface as a ladder of free
//! functions — `optimize_module` / `optimize_module_for` /
//! `cross_target_runs` here, `run_suite` × four variants in
//! `spillopt-core` — where every new capability forced another variant
//! and a sweep of call sites. This module collapses the ladder into the
//! one shape every future subsystem (serving, sharding, incremental
//! reoptimization) plugs into:
//!
//! * [`OptimizerBuilder`] — declare *what* to optimize for: a target (a
//!   preset [`Target`], a registered [`TargetSpec`] name, or all of
//!   them), a [`SpillCostModel`] override, a [`ProfileSource`], a thread
//!   count, and a typed [`TechniqueSet`]. `build()` validates the whole
//!   configuration **once**.
//! * [`Session`] — the warm, reusable pipeline object. It owns the
//!   persistent work pool ([`crate::pool::Pool`]) and a per-session
//!   analysis arena, so repeated [`Session::optimize`] calls amortize
//!   thread spin-up and per-function analysis work across modules — the
//!   warm-server shape. [`Session::optimize_many`] fans whole batches of
//!   modules out on the same pool; [`Session::cross_target`] fans the
//!   registry out the way `spillopt compare --target all` needs.
//! * [`Observer`] — an optional streaming callback: per-function
//!   [`FunctionReport`]s are delivered **as functions retire** from the
//!   pool (progress for the CLI today, the backpressure hook for a
//!   future server).
//!
//! Reports stay deterministic: everything in a [`ModuleRun`] — including
//! its JSON bytes — is a pure function of the inputs and the session's
//! configuration, independent of thread count, arena warmth, and
//! observer presence (observers see completion order, which is *not*
//! deterministic; the returned reports are).

use crate::cache::AnalysisCache;
use crate::driver::{
    DriverError, FaultAction, FaultKind, FunctionFault, ModuleRun, ProfileSource, Strategy,
};
use crate::pool::{payload_message, try_run_indexed, ItemPanic, Pool, PoolWorkerStats};
use crate::report::{CrossTargetReport, FunctionReport, ModuleReport, StrategyReport};
use spillopt_core::{
    run_suite, run_suite_incremental, run_suite_memoized, run_technique, Placement, PlacementMemo,
    PlacementSuite, RefoldStats, SpillCostModel, SuiteError, SuiteInputs, SuiteOptions, Technique,
};
use spillopt_ir::{FuncId, Function, Module, Target};
use spillopt_obs::fault::{BudgetScope, BudgetSpec};
use spillopt_profile::{random_walk_profile, EdgeProfile, Machine, ProfileDelta};
use spillopt_regalloc::allocate;
use spillopt_sync::atomic::{AtomicU64, Ordering};
use spillopt_sync::{Arc, Mutex};
use spillopt_targets::{registry, spec_by_name, TargetSpec};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A typed set of placement techniques — the facade's replacement for
/// stringly-typed strategy selection. Defaults to [`TechniqueSet::ALL`]
/// (the paper's four-technique comparison).
///
/// The set selects which techniques are **reported and applicable**
/// ([`crate::ModuleRun::apply`]); internally the suite still computes
/// all four — the hierarchical variants' never-worse guarantee is
/// closed against the entry/exit and Chow baselines, so those are
/// needed regardless, and the placements are near-linear next to the
/// shared analyses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TechniqueSet(u8);

impl TechniqueSet {
    /// No techniques (rejected by [`OptimizerBuilder::build`]).
    pub const EMPTY: TechniqueSet = TechniqueSet(0);
    /// Entry/exit baseline only.
    pub const BASELINE: TechniqueSet = TechniqueSet(1 << 0);
    /// Chow's shrink-wrapping only.
    pub const SHRINKWRAP: TechniqueSet = TechniqueSet(1 << 1);
    /// Hierarchical placement, execution-count model, only.
    pub const HIER_EXEC: TechniqueSet = TechniqueSet(1 << 2);
    /// Hierarchical placement, jump-edge model, only.
    pub const HIER_JUMP: TechniqueSet = TechniqueSet(1 << 3);
    /// All four techniques — the paper's comparison and the default.
    pub const ALL: TechniqueSet = TechniqueSet(0b1111);

    fn bit(strategy: Strategy) -> u8 {
        match strategy {
            Strategy::Baseline => 1 << 0,
            Strategy::Shrinkwrap => 1 << 1,
            Strategy::HierExec => 1 << 2,
            Strategy::HierJump => 1 << 3,
        }
    }

    /// The set containing exactly `strategies`.
    pub fn of(strategies: &[Strategy]) -> TechniqueSet {
        strategies
            .iter()
            .fold(TechniqueSet::EMPTY, |set, s| set.with(*s))
    }

    /// This set plus `strategy`.
    #[must_use]
    pub fn with(self, strategy: Strategy) -> TechniqueSet {
        TechniqueSet(self.0 | TechniqueSet::bit(strategy))
    }

    /// Whether `strategy` is selected.
    pub fn contains(self, strategy: Strategy) -> bool {
        self.0 & TechniqueSet::bit(strategy) != 0
    }

    /// Number of selected techniques.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no technique is selected.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Selected strategies, in reporting order.
    pub fn iter(self) -> impl Iterator<Item = Strategy> {
        Strategy::all()
            .into_iter()
            .filter(move |s| self.contains(*s))
    }

    /// Parses `"all"` or a comma-separated list of strategy names
    /// (`baseline`, `shrinkwrap`, `hier-exec`, `hier-jump`).
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<TechniqueSet, String> {
        if s == "all" {
            return Ok(TechniqueSet::ALL);
        }
        let mut set = TechniqueSet::EMPTY;
        for name in s.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            let strategy = Strategy::parse(name).ok_or_else(|| {
                format!(
                    "unknown technique `{name}` (accepted: all, or a comma-separated list of {})",
                    Strategy::all().map(Strategy::name).join(", ")
                )
            })?;
            set = set.with(strategy);
        }
        if set.is_empty() {
            return Err("technique set is empty".to_string());
        }
        Ok(set)
    }

    /// The selected strategy names, comma-separated (parseable by
    /// [`TechniqueSet::parse`]).
    pub fn names(self) -> String {
        self.iter()
            .map(Strategy::name)
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl Default for TechniqueSet {
    fn default() -> Self {
        TechniqueSet::ALL
    }
}

/// Displays as the comma-separated strategy names — the exact syntax
/// [`TechniqueSet::parse`] accepts, so `parse(set.to_string())`
/// round-trips for every non-empty set.
impl std::fmt::Display for TechniqueSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.names())
    }
}

/// What a session does when one function's pipeline fails — a panic, an
/// invalid placement, or a blown [`Budget`]. Set via
/// [`OptimizerBuilder::on_fault`]; the default reproduces today's
/// all-or-nothing behavior exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// The failure surfaces as the run's error (the historical
    /// behavior): one poisoned function fails the whole
    /// `optimize`/`optimize_many` call.
    #[default]
    Fail,
    /// The failed function falls down the guarantee chain — hier-jump →
    /// Chow → entry/exit → unoptimized passthrough — retiring with the
    /// first rung that succeeds ([`Provenance::Degraded`]); the original
    /// error is preserved in the run's fault ledger
    /// ([`crate::ModuleRun::faults`]) and the rest of the module is
    /// unaffected.
    Degrade,
    /// The failed function passes through unoptimized immediately (no
    /// fallback attempts), recorded in the fault ledger.
    Skip,
}

impl FailurePolicy {
    /// Stable lowercase identifier (the CLI's `--on-fault` values).
    pub fn name(self) -> &'static str {
        match self {
            FailurePolicy::Fail => "fail",
            FailurePolicy::Degrade => "degrade",
            FailurePolicy::Skip => "skip",
        }
    }

    /// Parses a stable identifier.
    pub fn parse(s: &str) -> Option<FailurePolicy> {
        [
            FailurePolicy::Fail,
            FailurePolicy::Degrade,
            FailurePolicy::Skip,
        ]
        .into_iter()
        .find(|p| p.name() == s)
    }
}

/// A cooperative per-function deadline, checked at the obs probe seams
/// in core's fixpoint solver and the exact solver's branch-and-bound.
/// Trips surface as [`DriverError::BudgetExceeded`] under
/// [`FailurePolicy::Fail`], and are caught by the degradation ladder
/// otherwise. Default: no caps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    wall_ms: Option<u64>,
    solver_iters: Option<u64>,
}

impl Budget {
    /// No caps (the default): nothing is armed, nothing is checked.
    pub fn none() -> Budget {
        Budget::default()
    }

    /// Caps one function's pipeline wall-clock time, in milliseconds.
    /// Each fallback attempt of the degradation ladder shares the
    /// function's single deadline.
    #[must_use]
    pub fn wall_ms(mut self, ms: u64) -> Budget {
        self.wall_ms = Some(ms);
        self
    }

    /// Caps the cumulative solver iterations (fixpoint rounds,
    /// branch-and-bound nodes) of one pipeline attempt.
    #[must_use]
    pub fn solver_iters(mut self, iters: u64) -> Budget {
        self.solver_iters = Some(iters);
        self
    }

    /// Whether any cap is set.
    pub fn is_some(&self) -> bool {
        self.wall_ms.is_some() || self.solver_iters.is_some()
    }

    /// The absolute deadline a pipeline starting now must meet.
    fn deadline_from_now(&self) -> Option<Instant> {
        self.wall_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms))
    }

    fn iter_cap(&self) -> Option<u64> {
        self.solver_iters
    }
}

/// How one function's retired pipeline products were obtained — the
/// reuse provenance the session surfaces through [`Observer`] and the
/// `--progress` summary. The reports themselves are byte-identical on
/// every path (the incremental re-fold provably re-establishes the cold
/// fixpoint); provenance only says how much work the path cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Full pipeline: allocation, analyses, every placement fold.
    Cold,
    /// Exact arena hit — the (function, profile) pair was seen before
    /// and the retired products were returned wholesale.
    Warm,
    /// The function's structure was known but its profile drifted: the
    /// allocation and analyses were reused and only the PST regions the
    /// profile delta dirtied were re-folded.
    Incremental,
    /// The full pipeline failed and the function retired through the
    /// [`FailurePolicy::Degrade`]/[`FailurePolicy::Skip`] containment
    /// path: a single fallback technique, or an unoptimized passthrough.
    /// The original error is in the run's fault ledger.
    Degraded,
}

impl Provenance {
    /// Stable lowercase identifier (used on `--progress` lines).
    pub fn name(self) -> &'static str {
        match self {
            Provenance::Cold => "cold",
            Provenance::Warm => "warm",
            Provenance::Incremental => "incremental",
            Provenance::Degraded => "degraded",
        }
    }
}

/// Streaming callback for session runs: called from worker threads as
/// each function's pipeline retires (completion order — *not* function
/// order). The session's returned reports stay deterministic regardless.
pub trait Observer: Sync {
    /// One function's pipeline finished (all selected techniques run,
    /// placements validated). `target` names the backend — a
    /// [`Session::cross_target`] run shares one observer across every
    /// target's concurrent fan-out, so the lines are only attributable
    /// with it. `provenance` says whether the products were recomputed
    /// cold, served warm from the arena, or incrementally re-folded.
    fn function_retired(
        &self,
        target: &str,
        module: &str,
        report: &FunctionReport,
        provenance: Provenance,
    );

    /// One module's full report was assembled (the report itself names
    /// its target).
    fn module_done(&self, report: &ModuleReport) {
        let _ = report;
    }

    /// A short name for error attribution: when a callback panics, the
    /// session reports [`DriverError::ObserverPanicked`] naming this
    /// observer instead of blaming the function whose report it was
    /// handling.
    fn name(&self) -> &str {
        "observer"
    }
}

/// Any `Fn(&target_name, &module_name, &report, provenance)` closure is
/// an observer.
impl<F: Fn(&str, &str, &FunctionReport, Provenance) + Sync> Observer for F {
    fn function_retired(
        &self,
        target: &str,
        module: &str,
        report: &FunctionReport,
        provenance: Provenance,
    ) {
        self(target, module, report, provenance)
    }
}

/// A point-in-time snapshot of a session's own instrumentation: arena
/// effectiveness and persistent-pool worker activity (see
/// [`Session::stats`]). This is the session-owned complement to the
/// process-wide recorder (`spillopt-obs`): it is always on — the
/// counters are relaxed atomics the hot path updates anyway — and needs
/// no recording to be active.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Analysis-arena entries/hits/misses; all-zero when the session was
    /// built with [`OptimizerBuilder::reuse_analyses`]`(false)`.
    pub arena: ArenaStats,
    /// Per-worker items/busy/idle of the persistent pool; empty for a
    /// serial session (inline batches have no workers).
    pub pool_workers: Vec<PoolWorkerStats>,
}

/// Arena statistics (see [`Session::arena_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Cached function structures (distinct pre-allocation texts).
    pub entries: usize,
    /// Lookups served wholesale — the exact (function, profile) pair
    /// was retired before ([`Provenance::Warm`]).
    pub hits: u64,
    /// Lookups that ran the full cold pipeline ([`Provenance::Cold`]):
    /// unseen functions, plus profile drifts that changed the
    /// allocation.
    pub misses: u64,
    /// Lookups served by delta-driven re-folding
    /// ([`Provenance::Incremental`]): the function's structure was
    /// cached and the drifted profile left its allocation unchanged.
    pub incremental: u64,
    /// Function structures evicted to honor
    /// [`OptimizerBuilder::arena_capacity`].
    pub evictions: u64,
    /// Dirty-region ledger: PST regions actually re-folded, summed over
    /// every incremental call.
    pub regions_refolded: u64,
    /// Dirty-region ledger: total PST regions of the functions those
    /// incremental calls touched — the work a cold re-fold would have
    /// done. `regions_refolded < regions_total` is the incremental win.
    pub regions_total: u64,
    /// Calls answered by the quarantine negative-cache without an
    /// attempt: repeat-offender functions sitting out their backoff
    /// window under [`FailurePolicy::Degrade`]/[`FailurePolicy::Skip`].
    pub quarantined: u64,
}

/// A keyed, LRU-bounded, quarantine-aware cache of shared per-key
/// states — the concurrency skeleton of the analysis arena, generic
/// over the per-key payload `S` so the model-checked suites can
/// exercise the exact production lock/atomic protocol with a trivial
/// payload (see `model_tests`). All bookkeeping (LRU stamps, counters,
/// the negative cache) lives here; payloads sit behind `Arc<Mutex<S>>`
/// so lookups clone a pointer under the map lock and per-key work
/// happens outside it.
pub(crate) struct Arena<S> {
    /// Key → (LRU stamp, shared state). The stamps live *here*, so
    /// eviction scans never take a state's own lock.
    entries: Mutex<HashMap<String, ArenaEntry<S>>>,
    /// Maximum cached entries (`0` = unbounded).
    capacity: usize,
    /// LRU clock, bumped on every touch.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    incremental: AtomicU64,
    evictions: AtomicU64,
    regions_refolded: AtomicU64,
    regions_total: AtomicU64,
    /// Negative cache: keys whose pipeline has failed, with their
    /// failure count and remaining skip window. Only consulted under
    /// [`FailurePolicy::Degrade`]/[`FailurePolicy::Skip`]; the `Fail`
    /// hot path never takes this lock.
    quarantine: Mutex<HashMap<String, Quarantine>>,
    quarantined: AtomicU64,
}

/// The per-session analysis arena, keyed in **two levels** matching the
/// two levels of input change a re-optimizing service sees:
///
/// 1. **Structure** — the pre-allocation function text. One
///    [`StructState`] per distinct function holds everything the text
///    alone determines once an allocation exists: the allocated
///    function, its [`AnalysisCache`] (CFG, liveness, usage, SCCs, PST,
///    derived tables), and the [`PlacementMemo`] of per-region folded
///    products.
/// 2. **Placement** — the exact edge profile. Each structure keeps its
///    retired `(report, placements)` outcomes per profile.
///
/// A repeated call with a seen profile is a wholesale hit
/// ([`Provenance::Warm`]). A call with a *drifted* profile reuses the
/// whole structure level when the drift leaves the allocation unchanged
/// — the allocator's only profile input is its per-block weight vector,
/// so equal weights prove an identical allocation, and unequal weights
/// re-allocate once and compare — and then re-folds only the PST
/// regions the [`ProfileDelta`] dirties ([`Provenance::Incremental`]).
/// Only a drift that changes the allocation itself re-runs the full
/// cold pipeline.
///
/// By default the arena grows without bound (entries are exact, never
/// invalidated); [`OptimizerBuilder::arena_capacity`] bounds the number
/// of cached structures with least-recently-used eviction. Build with
/// [`OptimizerBuilder::reuse_analyses`]`(false)` for one-shot or
/// benchmarking sessions that must re-run the pipeline every time.
///
/// Structure level keys are the pre-allocation function text; the
/// shared concurrency skeleton is [`Arena`].
pub(crate) type AnalysisArena = Arena<StructState>;

/// One function's entry in the arena's negative cache.
struct Quarantine {
    /// Total failed attempts recorded for this function.
    failures: u32,
    /// Calls left to skip before the next retry (exponential backoff
    /// from the second failure on).
    skip_remaining: u32,
}

/// Everything the pre-allocation function text determines for the
/// session's fixed (target, cost model): the allocation, the analyses,
/// and the per-region fold memo — plus the per-profile outcomes retired
/// against that structure.
pub(crate) struct StructState {
    /// The allocated (physical, pre-placement) function.
    func: Function,
    /// `func.to_string()`, kept to compare re-allocations cheaply.
    func_text: String,
    spilled_vregs: usize,
    /// The allocator's per-block weight vector for the profile the
    /// structure was last allocated under — its *only* profile input,
    /// so an equal vector proves the allocation is bit-identical.
    weights: Vec<u64>,
    /// Analyses of `func`; `cache.profile` is the memo's base profile.
    cache: AnalysisCache,
    /// Per-region folded products; `None` when the function needs no
    /// placement (no callee-saved use).
    memo: Option<PlacementMemo>,
    /// Retired outcomes per exact profile `(entry_count, edge_counts)`.
    /// Every entry was produced against the *current* `func` (a cold
    /// replace clears the map), so a hit clones `func` next to it.
    outcomes: HashMap<ProfileKey, (FunctionReport, Vec<(Strategy, Placement)>)>,
}

/// An LRU stamp paired with the shared per-key state it guards.
type ArenaEntry<S> = (u64, Arc<Mutex<S>>);

/// The exact-profile key of a [`StructState`] outcome:
/// `(entry_count, edge_counts)`.
type ProfileKey = (u64, Vec<u64>);

/// An allocated (physical, pre-placement) function paired with its
/// selected placements.
type AllocatedFunction = (Function, Vec<(Strategy, Placement)>);

/// One function's pipeline product: the report, the allocated function
/// with its placements, and the fault-ledger entry when the function was
/// contained under [`FailurePolicy::Degrade`]/[`FailurePolicy::Skip`].
type FunctionOutcome = (FunctionReport, AllocatedFunction, Option<FunctionFault>);

/// A cross-target module loader.
type Loader<'l> = dyn Fn(&TargetSpec) -> Result<(Module, ProfileSource), DriverError> + Sync + 'l;

/// The exact-profile key of a [`StructState`] outcome.
fn profile_key(profile: &EdgeProfile) -> ProfileKey {
    (profile.entry_count(), profile.edge_counts().to_vec())
}

impl<S> Arena<S> {
    fn new(capacity: usize) -> Self {
        Arena {
            entries: Mutex::new(HashMap::new()),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            incremental: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            regions_refolded: AtomicU64::new(0),
            regions_total: AtomicU64::new(0),
            quarantine: Mutex::new(HashMap::new()),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The cached state for a key, touching its LRU stamp.
    fn structure(&self, text: &str) -> Option<Arc<Mutex<S>>> {
        let mut map = self.entries.lock().unwrap();
        match map.get_mut(text) {
            Some((stamp, state)) => {
                *stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(state))
            }
            None => None,
        }
    }

    /// Caches a freshly computed state, evicting the least recently
    /// used one when over capacity.
    fn insert_structure(&self, text: String, state: S) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.entries.lock().unwrap();
        map.insert(text.clone(), (stamp, Arc::new(Mutex::new(state))));
        while self.capacity > 0 && map.len() > self.capacity {
            let victim = map
                .iter()
                .filter(|(k, _)| **k != text)
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    spillopt_obs::count("arena_evictions", 1);
                }
                // Capacity 1 entry is the one just inserted.
                None => break,
            }
        }
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        spillopt_obs::count("arena_hit", 1);
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        spillopt_obs::count("arena_miss", 1);
    }

    fn record_incremental(&self, refolds: RefoldStats) {
        self.incremental.fetch_add(1, Ordering::Relaxed);
        spillopt_obs::count("arena_incremental", 1);
        self.regions_refolded
            .fetch_add(refolds.regions_refolded as u64, Ordering::Relaxed);
        self.regions_total
            .fetch_add(refolds.regions_total as u64, Ordering::Relaxed);
    }

    /// Drops any cached structure for `text`. Called whenever the
    /// function's pipeline failed: a partially updated (or
    /// poisoned-mutex) `StructState` must never be served to a later
    /// call.
    fn purge(&self, text: &str) {
        self.entries.lock().unwrap().remove(text);
    }

    /// Records a failed attempt for `text`: purges its cached structure
    /// and, from the second failure on, opens an exponential-backoff
    /// skip window so a flapping input can't monopolize warm throughput.
    fn record_failure(&self, text: &str) {
        self.purge(text);
        let mut quarantine = self.quarantine.lock().unwrap();
        let entry = quarantine.entry(text.to_string()).or_insert(Quarantine {
            failures: 0,
            skip_remaining: 0,
        });
        entry.failures += 1;
        if entry.failures >= 2 {
            entry.skip_remaining = 1u32 << (entry.failures - 1).min(6);
        }
    }

    /// Consumes one call of an active quarantine window; `true` means
    /// the caller should skip this function without an attempt.
    fn quarantine_skip(&self, text: &str) -> bool {
        let mut quarantine = self.quarantine.lock().unwrap();
        match quarantine.get_mut(text) {
            Some(entry) if entry.skip_remaining > 0 => {
                entry.skip_remaining -= 1;
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                spillopt_obs::count("fault_quarantined", 1);
                true
            }
            _ => false,
        }
    }

    /// Clears the failure history of `text` after a successful attempt.
    fn record_success(&self, text: &str) {
        let mut quarantine = self.quarantine.lock().unwrap();
        if !quarantine.is_empty() {
            quarantine.remove(text);
        }
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            entries: self.entries.lock().unwrap().len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            incremental: self.incremental.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            regions_refolded: self.regions_refolded.load(Ordering::Relaxed),
            regions_total: self.regions_total.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

impl<S> std::fmt::Debug for Arena<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisArena")
            .field("stats", &self.stats())
            .finish()
    }
}

/// One resolved target of a session.
#[derive(Clone, Debug)]
struct SessionTarget {
    /// The registered spec, when the target came from the registry
    /// (needed for cross-target reports).
    spec: Option<TargetSpec>,
    target: Target,
    costs: SpillCostModel,
}

/// The builder's target choice.
#[derive(Clone, Debug)]
enum BuildTarget {
    /// A preset [`Target`] convention (priced [`SpillCostModel::UNIT`]
    /// unless overridden).
    Preset(Target),
    /// A registered spec.
    Spec(TargetSpec),
    /// A registry name, resolved (and validated) at `build()`.
    Named(String),
    /// Every registered target (for [`Session::cross_target`]).
    All,
}

/// Configures and validates a [`Session`] — the only supported way to
/// run the module-scale optimizer.
///
/// ```
/// use spillopt_driver::{OptimizerBuilder, Strategy};
/// use spillopt_benchgen::{benchmark_by_name, build_bench};
/// use spillopt_ir::Target;
///
/// let target = Target::default();
/// let bench = build_bench(&benchmark_by_name("mcf").unwrap(), &target);
/// let session = OptimizerBuilder::new()
///     .target(target)
///     .threads(2)
///     .build()
///     .unwrap();
/// let run = session.optimize(&bench.module).unwrap();
/// assert!(run.report.total_cost(Strategy::HierJump)
///     <= run.report.total_cost(Strategy::Baseline));
/// ```
#[derive(Clone, Debug)]
pub struct OptimizerBuilder {
    target: BuildTarget,
    costs: Option<SpillCostModel>,
    profile: ProfileSource,
    threads: usize,
    techniques: TechniqueSet,
    reuse_analyses: bool,
    arena_capacity: usize,
    failure_policy: FailurePolicy,
    budget: Budget,
}

impl Default for OptimizerBuilder {
    fn default() -> Self {
        OptimizerBuilder::new()
    }
}

impl OptimizerBuilder {
    /// A builder with the defaults: the paper's PA-RISC-like target,
    /// synthetic profiles, all cores, all four techniques, analysis
    /// reuse on.
    pub fn new() -> Self {
        OptimizerBuilder {
            target: BuildTarget::Spec(spillopt_targets::pa_risc_like()),
            costs: None,
            profile: ProfileSource::default(),
            threads: 0,
            techniques: TechniqueSet::ALL,
            reuse_analyses: true,
            arena_capacity: 0,
            failure_policy: FailurePolicy::Fail,
            budget: Budget::none(),
        }
    }

    /// Optimize for a preset [`Target`] convention (priced
    /// [`SpillCostModel::UNIT`] unless [`OptimizerBuilder::cost_model`]
    /// overrides it).
    #[must_use]
    pub fn target(mut self, target: Target) -> Self {
        self.target = BuildTarget::Preset(target);
        self
    }

    /// Optimize for a registered backend spec.
    #[must_use]
    pub fn target_spec(mut self, spec: TargetSpec) -> Self {
        self.target = BuildTarget::Spec(spec);
        self
    }

    /// Optimize for a registry name (`spillopt list-targets`); resolved
    /// and validated by [`OptimizerBuilder::build`].
    #[must_use]
    pub fn target_named(mut self, name: impl Into<String>) -> Self {
        self.target = BuildTarget::Named(name.into());
        self
    }

    /// Optimize across **every** registered target
    /// ([`Session::cross_target`]).
    #[must_use]
    pub fn all_targets(mut self) -> Self {
        self.target = BuildTarget::All;
        self
    }

    /// Overrides the spill-cost model (otherwise the spec's own model,
    /// or [`SpillCostModel::UNIT`] for preset targets).
    #[must_use]
    pub fn cost_model(mut self, costs: SpillCostModel) -> Self {
        self.costs = Some(costs);
        self
    }

    /// Where per-function edge profiles come from (default: synthetic
    /// random walks).
    #[must_use]
    pub fn profile(mut self, profile: ProfileSource) -> Self {
        self.profile = profile;
        self
    }

    /// Worker threads; `0` = available parallelism, `1` = the serial
    /// reference schedule. The pool is spawned once, at `build()`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Which techniques to report and make applicable (default:
    /// [`TechniqueSet::ALL`]; see [`TechniqueSet`] for what is still
    /// computed internally).
    #[must_use]
    pub fn techniques(mut self, techniques: TechniqueSet) -> Self {
        self.techniques = techniques;
        self
    }

    /// Whether the session keeps its analysis arena (default `true`).
    /// Disable for benchmarking sessions that must re-run the full
    /// pipeline on every call.
    #[must_use]
    pub fn reuse_analyses(mut self, reuse: bool) -> Self {
        self.reuse_analyses = reuse;
        self
    }

    /// Bounds the arena to `capacity` cached function structures,
    /// evicting least-recently-used entries beyond it (default `0` =
    /// unbounded). Evictions are counted in
    /// [`ArenaStats::evictions`]; an evicted function's next
    /// optimization runs cold again.
    #[must_use]
    pub fn arena_capacity(mut self, capacity: usize) -> Self {
        self.arena_capacity = capacity;
        self
    }

    /// What the session does when one function's pipeline fails
    /// (default [`FailurePolicy::Fail`]: the historical all-or-nothing
    /// behavior). `Degrade` and `Skip` contain the failure to that one
    /// function and record it in the run's fault ledger.
    #[must_use]
    pub fn on_fault(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// A cooperative per-function [`Budget`] (wall-clock and/or solver
    /// iteration caps; default: none). Trips surface as
    /// [`DriverError::BudgetExceeded`] under [`FailurePolicy::Fail`]
    /// and degrade like any other fault otherwise.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Validates the configuration and builds the [`Session`] (spawning
    /// its worker pool).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Config`] for an unknown target name, a
    /// malformed target convention, or an empty technique set.
    pub fn build(self) -> Result<Session, DriverError> {
        if self.techniques.is_empty() {
            return Err(DriverError::Config(
                "technique set is empty; select at least one technique".to_string(),
            ));
        }
        let resolve = |spec: TargetSpec| -> Result<SessionTarget, DriverError> {
            let target = spec.try_to_target().map_err(|e| {
                DriverError::Config(format!("target `{}` is malformed: {e}", spec.name))
            })?;
            Ok(SessionTarget {
                costs: self.costs.unwrap_or(spec.costs),
                spec: Some(spec),
                target,
            })
        };
        let targets = match self.target {
            BuildTarget::Preset(target) => vec![SessionTarget {
                spec: None,
                target,
                costs: self.costs.unwrap_or(SpillCostModel::UNIT),
            }],
            BuildTarget::Spec(spec) => vec![resolve(spec)?],
            BuildTarget::Named(name) => {
                let spec = spec_by_name(&name).ok_or_else(|| {
                    DriverError::Config(format!(
                        "unknown target `{name}` (registered: {})",
                        registry()
                            .iter()
                            .map(|s| s.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?;
                vec![resolve(spec)?]
            }
            BuildTarget::All => registry()
                .into_iter()
                .map(resolve)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(Session {
            targets,
            profile: self.profile,
            techniques: self.techniques,
            pool: Pool::new(self.threads),
            arena: self
                .reuse_analyses
                .then(|| AnalysisArena::new(self.arena_capacity)),
            failure_policy: self.failure_policy,
            budget: self.budget,
        })
    }
}

/// A configured, warm, reusable optimizer: the validated targets, the
/// persistent worker pool, and the per-session analysis arena. Built by
/// [`OptimizerBuilder::build`]; every module-scale entry point of this
/// workspace goes through one of its methods.
#[derive(Debug)]
pub struct Session {
    targets: Vec<SessionTarget>,
    profile: ProfileSource,
    techniques: TechniqueSet,
    pool: Pool,
    arena: Option<AnalysisArena>,
    failure_policy: FailurePolicy,
    budget: Budget,
}

impl Session {
    /// The names of the session's resolved targets, in registry order.
    pub fn targets(&self) -> Vec<&str> {
        self.targets.iter().map(|t| t.target.name()).collect()
    }

    /// The selected techniques.
    pub fn techniques(&self) -> TechniqueSet {
        self.techniques
    }

    /// The pool's worker count (1 = serial).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Arena statistics; all-zero for sessions built with
    /// [`OptimizerBuilder::reuse_analyses`]`(false)`.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena
            .as_ref()
            .map_or(ArenaStats::default(), AnalysisArena::stats)
    }

    /// Everything the session instruments about itself: arena hit/miss
    /// counters plus the persistent pool's per-worker activity.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            arena: self.arena_stats(),
            pool_workers: self.pool.worker_stats(),
        }
    }

    fn single_target(&self) -> Result<&SessionTarget, DriverError> {
        match self.targets.as_slice() {
            [one] => Ok(one),
            many => Err(DriverError::Config(format!(
                "this session optimizes across {} targets; use `cross_target` \
                 (or build the session with one target)",
                many.len()
            ))),
        }
    }

    fn engine<'e>(
        &'e self,
        st: &'e SessionTarget,
        observer: Option<&'e dyn Observer>,
    ) -> Engine<'e> {
        self.engine_with(st, &self.profile, observer)
    }

    /// As [`Session::engine`], with a per-call profile source override
    /// (the [`Session::optimize_profiled`] path).
    fn engine_with<'e>(
        &'e self,
        st: &'e SessionTarget,
        source: &'e ProfileSource,
        observer: Option<&'e dyn Observer>,
    ) -> Engine<'e> {
        Engine {
            target: &st.target,
            costs: &st.costs,
            profile_source: source,
            techniques: self.techniques,
            exec: Exec::Pool(&self.pool),
            arena: self.arena.as_ref(),
            observer,
            policy: self.failure_policy,
            budget: self.budget,
        }
    }

    /// Optimizes one module on the session pool.
    ///
    /// # Errors
    ///
    /// Returns the first driver failure: a failing training workload, an
    /// invalid placement ([`DriverError::InvalidPlacement`]), or a
    /// panicking pipeline.
    pub fn optimize(&self, module: &Module) -> Result<ModuleRun, DriverError> {
        self.optimize_inner(module, None)
    }

    /// As [`Session::optimize`], streaming per-function reports to
    /// `observer` as they retire.
    ///
    /// # Errors
    ///
    /// As [`Session::optimize`].
    pub fn optimize_observed(
        &self,
        module: &Module,
        observer: &dyn Observer,
    ) -> Result<ModuleRun, DriverError> {
        self.optimize_inner(module, Some(observer))
    }

    fn optimize_inner(
        &self,
        module: &Module,
        observer: Option<&dyn Observer>,
    ) -> Result<ModuleRun, DriverError> {
        let st = self.single_target()?;
        run_module(module, &self.engine(st, observer))
    }

    /// Optimizes one module under explicit measured per-function edge
    /// profiles, overriding the session's [`ProfileSource`] for this
    /// call — the re-profiling entry point. `profiles` is indexed by
    /// function index and must cover every function of `module` with an
    /// edge vector matching that function's CFG.
    ///
    /// On a session with analysis reuse, repeated calls over drifting
    /// profiles are where the two-level arena earns its keep: a profile
    /// seen before returns wholesale ([`Provenance::Warm`]), and a
    /// drifted profile that leaves a function's allocation unchanged
    /// re-folds only the PST regions its [`ProfileDelta`] dirties
    /// ([`Provenance::Incremental`]). The returned report is
    /// byte-identical to a cold run on the same profiles regardless.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Config`] when the profiles don't match the
    /// module's shape, or the first driver failure.
    pub fn optimize_profiled(
        &self,
        module: &Module,
        profiles: &[EdgeProfile],
    ) -> Result<ModuleRun, DriverError> {
        self.optimize_profiled_inner(module, profiles, None)
    }

    /// As [`Session::optimize_profiled`], streaming per-function
    /// reports (with their reuse provenance) to `observer`.
    ///
    /// # Errors
    ///
    /// As [`Session::optimize_profiled`].
    pub fn optimize_profiled_observed(
        &self,
        module: &Module,
        profiles: &[EdgeProfile],
        observer: &dyn Observer,
    ) -> Result<ModuleRun, DriverError> {
        self.optimize_profiled_inner(module, profiles, Some(observer))
    }

    fn optimize_profiled_inner(
        &self,
        module: &Module,
        profiles: &[EdgeProfile],
        observer: Option<&dyn Observer>,
    ) -> Result<ModuleRun, DriverError> {
        let st = self.single_target()?;
        let source = ProfileSource::Profiles(profiles.to_vec());
        run_module(module, &self.engine_with(st, &source, observer))
    }

    /// Materializes the per-function edge profiles the session's
    /// [`ProfileSource`] yields for `module` — the base profiles a
    /// drift harness mutates before re-optimizing with
    /// [`Session::optimize_profiled`]. Synthetic sources synthesize
    /// exactly what [`Session::optimize`] would; workload sources run
    /// the training workload once.
    ///
    /// # Errors
    ///
    /// Returns the same configuration/workload failures
    /// [`Session::optimize`] would.
    pub fn resolve_profiles(&self, module: &Module) -> Result<Vec<EdgeProfile>, DriverError> {
        let st = self.single_target()?;
        let profiles = module_profiles(module, &st.target, &self.profile)?;
        Ok(module
            .func_ids()
            .zip(profiles)
            .map(|(fid, p)| {
                p.unwrap_or_else(|| synth_profile(module.func(fid), fid, &self.profile))
            })
            .collect())
    }

    /// Optimizes a batch of modules, fanning **all** their functions out
    /// on the session pool at once (a small module no longer serializes
    /// behind a big one). Results are in input order and byte-identical
    /// to independent [`Session::optimize`] calls.
    ///
    /// # Errors
    ///
    /// Returns the first driver failure across the batch.
    pub fn optimize_many(&self, modules: &[Module]) -> Result<Vec<ModuleRun>, DriverError> {
        self.optimize_many_inner(modules, None)
    }

    /// As [`Session::optimize_many`], streaming per-function reports.
    ///
    /// # Errors
    ///
    /// As [`Session::optimize_many`].
    pub fn optimize_many_observed(
        &self,
        modules: &[Module],
        observer: &dyn Observer,
    ) -> Result<Vec<ModuleRun>, DriverError> {
        self.optimize_many_inner(modules, Some(observer))
    }

    fn optimize_many_inner(
        &self,
        modules: &[Module],
        observer: Option<&dyn Observer>,
    ) -> Result<Vec<ModuleRun>, DriverError> {
        let st = self.single_target()?;
        if modules.len() > 1
            && matches!(
                self.profile,
                ProfileSource::Workload(_) | ProfileSource::Profiles(_)
            )
        {
            return Err(DriverError::Config(
                "a training workload (or an explicit profile vector) names one specific \
                 module's functions and cannot drive a multi-module batch; use synthetic \
                 profiles, or one `optimize` call per module with its own profile session"
                    .to_string(),
            ));
        }
        let engine = self.engine(st, observer);

        // Stage 1 (serial): per-module training profiles.
        let mut items: Vec<(usize, FuncId, Option<EdgeProfile>)> = Vec::new();
        for (mi, module) in modules.iter().enumerate() {
            let profiles = module_profiles(module, engine.target, engine.profile_source)?;
            items.extend(module.func_ids().zip(profiles).map(|(fid, p)| (mi, fid, p)));
        }
        let coords: Vec<(usize, FuncId)> = items.iter().map(|(mi, fid, _)| (*mi, *fid)).collect();

        // Stage 2 (parallel): every function of every module, one batch.
        let outcomes = engine
            .exec
            .run(items, |_, (mi, fid, profile)| {
                run_function(&modules[mi], fid, profile, &engine)
            })
            .map_err(|p| {
                let (mi, fid) = coords[p.index];
                DriverError::Panicked {
                    unit: format!("{}::{}", modules[mi].name(), modules[mi].func(fid).name()),
                    message: p.message(),
                }
            })?;

        // Regroup per module, in input order.
        type PerModule = (
            Vec<FunctionReport>,
            Vec<AllocatedFunction>,
            Vec<FunctionFault>,
        );
        let mut per_module: Vec<PerModule> = (0..modules.len())
            .map(|_| (Vec::new(), Vec::new(), Vec::new()))
            .collect();
        for ((mi, _), outcome) in coords.into_iter().zip(outcomes) {
            let (report, allocated, fault) = match outcome {
                Ok(o) => o,
                // Contained failures name the function; batch callers
                // get the module prefixed (matching the panic path).
                Err(DriverError::Panicked { unit, message }) => {
                    return Err(DriverError::Panicked {
                        unit: format!("{}::{unit}", modules[mi].name()),
                        message,
                    })
                }
                Err(e) => return Err(e),
            };
            per_module[mi].0.push(report);
            per_module[mi].1.push(allocated);
            per_module[mi].2.extend(fault);
        }
        let mut runs = Vec::with_capacity(modules.len());
        for (module, (reports, allocated, faults)) in modules.iter().zip(per_module) {
            let run = ModuleRun::from_parts(
                ModuleReport::new(
                    module.name().to_string(),
                    engine.target.name().to_string(),
                    reports,
                ),
                allocated,
                faults,
            );
            notify_module_done(&engine, &run.report)?;
            runs.push(run);
        }
        Ok(runs)
    }

    /// Runs the whole pipeline across every session target and collects
    /// the per-target reports into one [`CrossTargetReport`].
    ///
    /// `load` builds the module *and its profile source* for a target —
    /// generated benchmarks lower against the target's convention, so
    /// each target gets its own build. Targets fan out on the session
    /// pool; each target's module is then processed serially within its
    /// worker, which keeps total parallelism bounded and the report a
    /// pure function of the inputs — byte-identical for every thread
    /// count. The analysis arena is bypassed here (its keys assume the
    /// session's single target).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Config`] if any session target is a preset
    /// [`Target`] (cross-target reports need registered specs), or the
    /// first per-target driver failure.
    pub fn cross_target(
        &self,
        load: impl Fn(&TargetSpec) -> Result<(Module, ProfileSource), DriverError> + Sync,
    ) -> Result<CrossTargetReport, DriverError> {
        self.cross_target_inner(&load, None)
    }

    /// As [`Session::cross_target`], streaming per-function reports.
    ///
    /// # Errors
    ///
    /// As [`Session::cross_target`].
    pub fn cross_target_observed(
        &self,
        load: impl Fn(&TargetSpec) -> Result<(Module, ProfileSource), DriverError> + Sync,
        observer: &dyn Observer,
    ) -> Result<CrossTargetReport, DriverError> {
        self.cross_target_inner(&load, Some(observer))
    }

    fn cross_target_inner(
        &self,
        load: &Loader<'_>,
        observer: Option<&dyn Observer>,
    ) -> Result<CrossTargetReport, DriverError> {
        for st in &self.targets {
            if st.spec.is_none() {
                return Err(DriverError::Config(format!(
                    "cross-target runs need registered targets; `{}` is a preset convention",
                    st.target.name()
                )));
            }
        }
        let items: Vec<&SessionTarget> = self.targets.iter().collect();
        let outcomes = self
            .pool
            .run_batch(items, |_, st| {
                let spec = st.spec.as_ref().expect("checked above");
                let (module, profile) = load(spec)?;
                let engine = Engine {
                    target: &st.target,
                    costs: &st.costs,
                    profile_source: &profile,
                    techniques: self.techniques,
                    // Serial within the worker: the target fan-out is
                    // the parallelism.
                    exec: Exec::Transient(1),
                    arena: None,
                    observer,
                    policy: self.failure_policy,
                    budget: self.budget,
                };
                run_module(&module, &engine).map(|run| (spec.clone(), run.report))
            })
            .map_err(|p| DriverError::Panicked {
                unit: self.targets[p.index].target.name().to_string(),
                message: p.message(),
            })?;
        let mut targets = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            targets.push(outcome?);
        }
        Ok(CrossTargetReport::new(targets))
    }
}

/// How a module run schedules its per-function work.
pub(crate) enum Exec<'e> {
    /// Scoped threads spawned for this call (`0` = auto, `1` = inline) —
    /// the deprecated free functions' schedule.
    Transient(usize),
    /// The session's persistent pool.
    Pool(&'e Pool),
}

impl Exec<'_> {
    fn run<I, T, F>(&self, items: Vec<I>, work: F) -> Result<Vec<T>, ItemPanic>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        match self {
            Exec::Transient(threads) => try_run_indexed(items, *threads, work),
            Exec::Pool(pool) => pool.run_batch(items, work),
        }
    }
}

/// One module run's full configuration — the session's and the
/// deprecated free functions' shared engine. Everything downstream of
/// this struct is identical on both paths, which is what keeps the
/// facade byte-compatible with the entry points it replaces.
pub(crate) struct Engine<'e> {
    pub target: &'e Target,
    pub costs: &'e SpillCostModel,
    pub profile_source: &'e ProfileSource,
    pub techniques: TechniqueSet,
    pub exec: Exec<'e>,
    pub arena: Option<&'e AnalysisArena>,
    pub observer: Option<&'e dyn Observer>,
    pub policy: FailurePolicy,
    pub budget: Budget,
}

/// Stage 1 (serial): training profiles, if a workload is given.
fn module_profiles(
    module: &Module,
    target: &Target,
    source: &ProfileSource,
) -> Result<Vec<Option<EdgeProfile>>, DriverError> {
    match source {
        ProfileSource::Workload(runs) => {
            // A workload's `FuncId`s name one specific module's
            // functions; a session-level workload replayed against a
            // different module would train on the wrong code. Out-of-
            // range ids are certainly that mistake — reject them
            // up front (same-arity mismatches are undetectable here).
            if let Some((fid, _)) = runs.iter().find(|(f, _)| f.index() >= module.num_funcs()) {
                return Err(DriverError::Config(format!(
                    "training workload names function #{} but module `{}` has {} function(s); \
                     workload profiles are per-module — build the session's ProfileSource for \
                     the module being optimized",
                    fid.index(),
                    module.name(),
                    module.num_funcs()
                )));
            }
            let mut vm = Machine::new(module, target);
            vm.set_fuel(1 << 30);
            for (f, args) in runs {
                vm.call(*f, args).map_err(DriverError::Workload)?;
            }
            Ok(module
                .func_ids()
                .map(|f| Some(vm.edge_profile(f)))
                .collect())
        }
        ProfileSource::Synthetic { .. } => Ok(module.func_ids().map(|_| None).collect()),
        ProfileSource::Profiles(profiles) => {
            // Explicit profiles are positional over one specific
            // module's functions; shape mismatches are certainly the
            // wrong-module mistake — reject them up front, per-module.
            if profiles.len() != module.num_funcs() {
                return Err(DriverError::Config(format!(
                    "explicit profile vector has {} profile(s) but module `{}` has {} \
                     function(s); profiles are per-module — build the vector for the module \
                     being optimized",
                    profiles.len(),
                    module.name(),
                    module.num_funcs()
                )));
            }
            for (fid, p) in module.func_ids().zip(profiles) {
                let func = module.func(fid);
                let edges = spillopt_ir::Cfg::compute(func).num_edges();
                if p.edge_counts().len() != edges {
                    return Err(DriverError::Config(format!(
                        "profile for function #{} (`{}`) has {} edge count(s) but its CFG has \
                         {} edge(s); per-module profiles must be measured on the module being \
                         optimized",
                        fid.index(),
                        func.name(),
                        p.edge_counts().len(),
                        edges
                    )));
                }
            }
            Ok(profiles.iter().cloned().map(Some).collect())
        }
    }
}

/// The deterministic synthetic profile [`ProfileSource::Synthetic`]
/// yields for one function (shared by the engine's lazy per-function
/// path and [`Session::resolve_profiles`]).
fn synth_profile(func: &Function, fid: FuncId, source: &ProfileSource) -> EdgeProfile {
    let _s = spillopt_obs::span("profile_synth");
    let ProfileSource::Synthetic {
        walks,
        max_steps,
        seed,
    } = source
    else {
        unreachable!("workload and explicit profiles are precomputed")
    };
    let cfg = spillopt_ir::Cfg::compute(func);
    random_walk_profile(
        &cfg,
        *walks,
        *max_steps,
        seed ^ (fid.index() as u64).wrapping_mul(0x9e37_79b9),
    )
}

/// Runs one module through the engine: profile → allocate → analyses →
/// selected techniques, per function on the engine's executor.
pub(crate) fn run_module(module: &Module, engine: &Engine<'_>) -> Result<ModuleRun, DriverError> {
    let profiles = module_profiles(module, engine.target, engine.profile_source)?;
    let items: Vec<(FuncId, Option<EdgeProfile>)> = module.func_ids().zip(profiles).collect();
    let outcomes = engine
        .exec
        .run(items, |_, (fid, profile)| {
            run_function(module, fid, profile, engine)
        })
        .map_err(|p| DriverError::Panicked {
            unit: module.func(FuncId::from_index(p.index)).name().to_string(),
            message: p.message(),
        })?;

    let mut reports = Vec::with_capacity(outcomes.len());
    let mut allocated = Vec::with_capacity(outcomes.len());
    let mut faults = Vec::new();
    for outcome in outcomes {
        let (report, alloc, fault) = outcome?;
        reports.push(report);
        allocated.push(alloc);
        faults.extend(fault);
    }
    let run = ModuleRun::from_parts(
        ModuleReport::new(
            module.name().to_string(),
            engine.target.name().to_string(),
            reports,
        ),
        allocated,
        faults,
    );
    notify_module_done(engine, &run.report)?;
    Ok(run)
}

/// One function's pipeline, inside a containment boundary: the attempt
/// (arena-aware, exactly the historical pipeline) runs under
/// `catch_unwind` with the session's [`Budget`] armed; panics, invalid
/// placements, and budget trips are classified into structured errors
/// and the arena is purged of any partial state. The engine's
/// [`FailurePolicy`] then decides whether the failure surfaces (`Fail`,
/// the historical behavior), walks the degradation ladder (`Degrade`),
/// or skips the function (`Skip`) — the latter two recording the
/// original error in the run's fault ledger.
fn run_function(
    module: &Module,
    fid: FuncId,
    profile: Option<EdgeProfile>,
    engine: &Engine<'_>,
) -> Result<FunctionOutcome, DriverError> {
    // Outermost per-function span: on transient/serial executors this is
    // the flush boundary (on the persistent pool, `pool_job` wraps it).
    let _fn_span = spillopt_obs::span("function");
    let source_func = module.func(fid);
    let profile = profile.unwrap_or_else(|| synth_profile(source_func, fid, engine.profile_source));
    let text = engine.arena.map(|_| source_func.to_string());
    // One wall-clock deadline per function, shared by every attempt
    // (ladder rungs included); iteration caps are per attempt.
    let deadline = engine.budget.deadline_from_now();

    // Quarantined repeat offenders sit out their backoff window without
    // an attempt (Degrade/Skip only; `Fail` never quarantines).
    if engine.policy != FailurePolicy::Fail {
        if let (Some(arena), Some(text)) = (engine.arena, text.as_deref()) {
            if arena.quarantine_skip(text) {
                let (report, alloc) = passthrough(fid, source_func);
                let fault = FunctionFault {
                    function: source_func.name().to_string(),
                    index: fid.index(),
                    kind: FaultKind::Quarantined,
                    error: "in quarantine backoff after repeated failures".to_string(),
                    action: FaultAction::Skipped,
                };
                notify_retired(engine, module, &report, Provenance::Degraded)?;
                return Ok((report, alloc, Some(fault)));
            }
        }
    }

    let error = match attempt_full(module, fid, &profile, engine, text.as_deref(), deadline) {
        Ok((report, alloc, provenance)) => {
            if engine.policy != FailurePolicy::Fail {
                if let (Some(arena), Some(text)) = (engine.arena, text.as_deref()) {
                    arena.record_success(text);
                }
            }
            notify_retired(engine, module, &report, provenance)?;
            return Ok((report, alloc, None));
        }
        Err(error) => error,
    };

    // The attempt failed. Never keep (possibly partial) cached state
    // for a failed function; under Degrade/Skip also advance its
    // quarantine entry.
    if let (Some(arena), Some(text)) = (engine.arena, text.as_deref()) {
        if engine.policy == FailurePolicy::Fail {
            arena.purge(text);
        } else {
            arena.record_failure(text);
        }
    }
    if engine.policy == FailurePolicy::Fail {
        return Err(error);
    }
    spillopt_obs::count("fault_contained", 1);
    let kind = match &error {
        DriverError::BudgetExceeded { .. } => FaultKind::BudgetExceeded,
        DriverError::InvalidPlacement { .. } => FaultKind::InvalidPlacement,
        _ => FaultKind::Panic,
    };
    let fault_entry = |action: FaultAction| FunctionFault {
        function: source_func.name().to_string(),
        index: fid.index(),
        kind,
        error: error.to_string(),
        action,
    };

    // Degrade: walk the guarantee chain — hier-jump → hier-exec → Chow
    // → entry/exit, within the session's technique set — with fresh
    // arena-free single-technique attempts. The first rung that
    // succeeds retires the function.
    if engine.policy == FailurePolicy::Degrade {
        for strategy in [
            Strategy::HierJump,
            Strategy::HierExec,
            Strategy::Shrinkwrap,
            Strategy::Baseline,
        ] {
            if !engine.techniques.contains(strategy) {
                continue;
            }
            if let Ok((report, alloc)) =
                attempt_single(module, fid, &profile, engine, strategy, deadline)
            {
                spillopt_obs::count("fault_degraded", 1);
                let fault = fault_entry(FaultAction::Degraded { to: strategy });
                notify_retired(engine, module, &report, Provenance::Degraded)?;
                return Ok((report, alloc, Some(fault)));
            }
        }
    }

    // Skip policy, or a fully exhausted ladder: unoptimized passthrough.
    spillopt_obs::count("fault_skipped", 1);
    let (report, alloc) = passthrough(fid, source_func);
    let fault = fault_entry(FaultAction::Skipped);
    notify_retired(engine, module, &report, Provenance::Degraded)?;
    Ok((report, alloc, Some(fault)))
}

/// The full pipeline attempt, inside the containment boundary: arms the
/// budget, catches panics (typed budget and injection payloads
/// included), and classifies any failure into a structured error.
fn attempt_full(
    module: &Module,
    fid: FuncId,
    profile: &EdgeProfile,
    engine: &Engine<'_>,
    text: Option<&str>,
    deadline: Option<Instant>,
) -> Result<(FunctionReport, AllocatedFunction, Provenance), DriverError> {
    let function = module.func(fid).name();
    catch_unwind(AssertUnwindSafe(|| {
        let _budget = arm_budget(engine, deadline);
        attempt_full_inner(module, fid, profile.clone(), engine, text)
    }))
    .unwrap_or_else(|payload| Err(classify_panic(function, payload)))
}

/// The historical pipeline body: resolve against the two-level arena
/// and run as little of the pipeline as the cached structure allows —
/// warm wholesale, incremental re-fold on drift, cold only for unseen
/// functions or allocation-changing drifts.
fn attempt_full_inner(
    module: &Module,
    fid: FuncId,
    profile: EdgeProfile,
    engine: &Engine<'_>,
    text: Option<&str>,
) -> Result<(FunctionReport, AllocatedFunction, Provenance), DriverError> {
    let source_func = module.func(fid);
    let (Some(arena), Some(text)) = (engine.arena, text) else {
        // No arena: the frozen whole-pipeline cold path — also the
        // differential oracle the drift fuzzer compares every
        // incremental result against.
        let mut func = source_func.clone();
        let alloc = {
            let _s = spillopt_obs::span("allocate");
            allocate(&mut func, engine.target, Some(&profile))
        };
        let cache = AnalysisCache::compute(&func, engine.target, profile);
        let mut report = report_shell(fid, &func, &cache, alloc.spilled_vregs);
        let placements = if cache.needs_placement() {
            let inputs = suite_inputs(&cache);
            let suite = run_suite(&cache.cfg, &inputs, &SuiteOptions::priced(*engine.costs))
                .map_err(|e| suite_error(&func, e))?;
            fill_report(&mut report, suite, engine.techniques)
        } else {
            Vec::new()
        };
        return Ok((report, (func, placements), Provenance::Cold));
    };

    let pkey = profile_key(&profile);
    if let Some(state) = arena.structure(text) {
        let mut guard = state.lock().unwrap();
        let st = &mut *guard;
        if let Some((report, placements)) = st.outcomes.get(&pkey) {
            arena.record_hit();
            let mut report = report.clone();
            report.index = fid.index();
            return Ok((
                report,
                (st.func.clone(), placements.clone()),
                Provenance::Warm,
            ));
        }
        // The profile drifted. The allocator's only profile input is
        // its per-block weight vector, so equal weights prove the
        // cached allocation — and every analysis over it — is still
        // exact; unequal weights re-allocate once and compare.
        let weights = allocation_weights(source_func, &profile);
        let allocation_unchanged = weights == st.weights || {
            let mut func = source_func.clone();
            let _s = spillopt_obs::span("allocate");
            let alloc = allocate(&mut func, engine.target, Some(&profile));
            alloc.spilled_vregs == st.spilled_vregs && func.to_string() == st.func_text
        };
        if allocation_unchanged {
            // Rebase the weight gate so repeated drifts to this weight
            // vector take the fast equality path.
            st.weights = weights;
            let (report, allocated) = refold_incremental(fid, st, engine, profile, arena)?;
            st.outcomes
                .insert(pkey, (report.clone(), allocated.1.clone()));
            return Ok((report, allocated, Provenance::Incremental));
        }
        // The drift changed the allocation itself: rebuild the whole
        // structure cold (the old outcomes priced a different
        // function, so they are cleared with it).
        arena.record_miss();
        let (new_state, (report, allocated)) = cold_structure(fid, source_func, engine, profile)?;
        *st = new_state;
        st.outcomes
            .insert(pkey, (report.clone(), allocated.1.clone()));
        return Ok((report, allocated, Provenance::Cold));
    }

    // Unseen function: full cold pipeline, then cache the structure.
    arena.record_miss();
    let (mut state, (report, allocated)) = cold_structure(fid, source_func, engine, profile)?;
    state
        .outcomes
        .insert(pkey, (report.clone(), allocated.1.clone()));
    arena.insert_structure(text.to_string(), state);
    Ok((report, allocated, Provenance::Cold))
}

/// One rung of the degradation ladder: a fresh, arena-free,
/// single-technique pipeline attempt inside its own containment
/// boundary, sharing the function's wall-clock deadline. Degraded
/// products are never cached — a later clean call runs cold and is
/// byte-identical to a fresh session.
fn attempt_single(
    module: &Module,
    fid: FuncId,
    profile: &EdgeProfile,
    engine: &Engine<'_>,
    strategy: Strategy,
    deadline: Option<Instant>,
) -> Result<(FunctionReport, AllocatedFunction), DriverError> {
    let function = module.func(fid).name();
    catch_unwind(AssertUnwindSafe(|| {
        let _budget = arm_budget(engine, deadline);
        let mut func = module.func(fid).clone();
        let alloc = {
            let _s = spillopt_obs::span("allocate");
            allocate(&mut func, engine.target, Some(profile))
        };
        let cache = AnalysisCache::compute(&func, engine.target, profile.clone());
        let mut report = report_shell(fid, &func, &cache, alloc.spilled_vregs);
        let placements = if cache.needs_placement() {
            let technique = match strategy {
                Strategy::Baseline => Technique::EntryExit,
                Strategy::Shrinkwrap => Technique::Chow,
                Strategy::HierExec => Technique::HierExec,
                Strategy::HierJump => Technique::HierJump,
            };
            let inputs = suite_inputs(&cache);
            let (placement, cost) = run_technique(
                &cache.cfg,
                &inputs,
                &SuiteOptions::priced(*engine.costs),
                technique,
            )
            .map_err(|e| suite_error(&func, e))?;
            report.strategies.push(StrategyReport {
                strategy,
                cost,
                static_count: placement.static_count(),
                placement: placement.clone(),
            });
            report.best = Some(strategy);
            vec![(strategy, placement)]
        } else {
            Vec::new()
        };
        Ok((report, (func, placements)))
    }))
    .unwrap_or_else(|payload| Err(classify_panic(function, payload)))
}

/// The ladder's last rung: the source function passes through
/// unoptimized (still pre-allocation). [`crate::ModuleRun::apply`]
/// emits it as-is, guided by the fault ledger.
fn passthrough(fid: FuncId, source_func: &Function) -> (FunctionReport, AllocatedFunction) {
    let insts = source_func
        .block_ids()
        .map(|b| source_func.block(b).insts.len())
        .sum();
    let report = FunctionReport {
        index: fid.index(),
        name: source_func.name().to_string(),
        blocks: source_func.num_blocks(),
        insts,
        spilled_vregs: 0,
        callee_saved: 0,
        strategies: Vec::new(),
        best: None,
    };
    (report, (source_func.clone(), Vec::new()))
}

/// Classifies a caught panic payload into a structured driver error:
/// typed budget trips and injected errors keep their structure;
/// everything else is a genuine pipeline panic.
fn classify_panic(function: &str, payload: Box<dyn std::any::Any + Send>) -> DriverError {
    if let Some(trip) = payload.downcast_ref::<spillopt_obs::fault::BudgetExceeded>() {
        return DriverError::BudgetExceeded {
            function: function.to_string(),
            phase: trip.phase,
        };
    }
    if let Some(fault) = payload.downcast_ref::<spillopt_obs::fault::InjectedFault>() {
        if fault.kind == spillopt_obs::fault::InjectionKind::Error {
            return DriverError::InvalidPlacement {
                function: function.to_string(),
                technique: "injected",
                detail: fault.to_string(),
            };
        }
    }
    DriverError::Panicked {
        unit: function.to_string(),
        message: payload_message(&*payload),
    }
}

/// Arms the engine's cooperative budget for one attempt on the current
/// thread; `None` (nothing armed, nothing checked) when the session has
/// no caps.
fn arm_budget(engine: &Engine<'_>, deadline: Option<Instant>) -> Option<BudgetScope> {
    (deadline.is_some() || engine.budget.iter_cap().is_some()).then(|| {
        BudgetScope::arm(BudgetSpec {
            deadline,
            max_iters: engine.budget.iter_cap(),
        })
    })
}

/// Delivers `function_retired` inside its own containment boundary: an
/// observer panic is the observer's fault, surfaced as
/// [`DriverError::ObserverPanicked`] — never degraded, never attributed
/// to the function whose report it was handling.
fn notify_retired(
    engine: &Engine<'_>,
    module: &Module,
    report: &FunctionReport,
    provenance: Provenance,
) -> Result<(), DriverError> {
    let Some(obs) = engine.observer else {
        return Ok(());
    };
    catch_unwind(AssertUnwindSafe(|| {
        obs.function_retired(engine.target.name(), module.name(), report, provenance)
    }))
    .map_err(|payload| DriverError::ObserverPanicked {
        observer: obs.name().to_string(),
        callback: "function_retired",
        message: payload_message(&*payload),
    })
}

/// As [`notify_retired`], for `module_done`.
fn notify_module_done(engine: &Engine<'_>, report: &ModuleReport) -> Result<(), DriverError> {
    let Some(obs) = engine.observer else {
        return Ok(());
    };
    catch_unwind(AssertUnwindSafe(|| obs.module_done(report))).map_err(|payload| {
        DriverError::ObserverPanicked {
            observer: obs.name().to_string(),
            callback: "module_done",
            message: payload_message(&*payload),
        }
    })
}

/// The allocator's per-block weight vector — [`allocate`]'s only
/// profile input (see `spillopt-regalloc`): equal vectors prove
/// bit-identical allocations, which is what gates the arena's
/// incremental path.
fn allocation_weights(func: &Function, profile: &EdgeProfile) -> Vec<u64> {
    func.block_ids()
        .map(|b| profile.block_count(b).max(1))
        .collect()
}

/// A retired (report, allocated) pair, before the fault-ledger column
/// of a [`FunctionOutcome`] is attached.
type Retired = (FunctionReport, AllocatedFunction);

/// Runs the full cold pipeline for one function and packages the result
/// as an arena [`StructState`] (with its [`PlacementMemo`]) plus the
/// retired outcome.
fn cold_structure(
    fid: FuncId,
    source_func: &Function,
    engine: &Engine<'_>,
    profile: EdgeProfile,
) -> Result<(StructState, Retired), DriverError> {
    let weights = allocation_weights(source_func, &profile);
    let mut func = source_func.clone();
    let alloc = {
        let _s = spillopt_obs::span("allocate");
        allocate(&mut func, engine.target, Some(&profile))
    };
    let cache = AnalysisCache::compute(&func, engine.target, profile);
    let mut report = report_shell(fid, &func, &cache, alloc.spilled_vregs);
    let (memo, placements) = if cache.needs_placement() {
        let inputs = suite_inputs(&cache);
        let (suite, memo) =
            run_suite_memoized(&cache.cfg, &inputs, &SuiteOptions::priced(*engine.costs))
                .map_err(|e| suite_error(&func, e))?;
        let placements = fill_report(&mut report, suite, engine.techniques);
        (Some(memo), placements)
    } else {
        (None, Vec::new())
    };
    let state = StructState {
        func_text: func.to_string(),
        func: func.clone(),
        spilled_vregs: alloc.spilled_vregs,
        weights,
        cache,
        memo,
        outcomes: HashMap::new(),
    };
    Ok((state, (report, (func, placements))))
}

/// Re-establishes one function's placement after a profile drift that
/// left its allocation unchanged: computes the [`ProfileDelta`] from
/// the structure's base profile, re-folds only the dirtied PST regions,
/// and rebases the structure on the new profile.
fn refold_incremental(
    fid: FuncId,
    st: &mut StructState,
    engine: &Engine<'_>,
    profile: EdgeProfile,
    arena: &AnalysisArena,
) -> Result<Retired, DriverError> {
    let delta = ProfileDelta::between(&st.cache.profile, &profile);
    let mut report = report_shell(fid, &st.func, &st.cache, st.spilled_vregs);
    let placements = match st.memo.as_mut() {
        Some(memo) => {
            let inputs = SuiteInputs::analyzed(
                &st.cache.usage,
                &profile,
                st.cache.cyclic(),
                st.cache.pst(),
                st.cache.derived(),
            );
            let (suite, refolds) = run_suite_incremental(
                &st.cache.cfg,
                &inputs,
                &SuiteOptions::priced(*engine.costs),
                memo,
                &delta,
            )
            .map_err(|e| suite_error(&st.func, e))?;
            arena.record_incremental(refolds);
            fill_report(&mut report, suite, engine.techniques)
        }
        // No callee-saved use: the report is profile-independent and
        // there is nothing to re-fold.
        None => {
            arena.record_incremental(RefoldStats::default());
            Vec::new()
        }
    };
    st.cache.profile = profile;
    Ok((report, (st.func.clone(), placements)))
}

/// Maps a core suite technique label to the reporting strategy name.
fn technique_name(label: &'static str) -> &'static str {
    match label {
        "entry_exit" => Strategy::Baseline.name(),
        "chow" => Strategy::Shrinkwrap.name(),
        "hierarchical_exec" => Strategy::HierExec.name(),
        "hierarchical_jump" => Strategy::HierJump.name(),
        other => other,
    }
}

/// The profile-independent frame of one function's report: identity,
/// size, and allocation facts. Strategies are filled by
/// [`fill_report`] (and stay empty for functions that need no
/// placement).
fn report_shell(
    fid: FuncId,
    func: &Function,
    cache: &AnalysisCache,
    spilled_vregs: usize,
) -> FunctionReport {
    let insts = func.block_ids().map(|b| func.block(b).insts.len()).sum();
    FunctionReport {
        index: fid.index(),
        name: func.name().to_string(),
        blocks: func.num_blocks(),
        insts,
        spilled_vregs,
        callee_saved: cache.usage.num_regs(),
        strategies: Vec::new(),
        best: None,
    }
}

/// The suite inputs borrowed from one [`AnalysisCache`] (lazy analyses
/// materialize here; functions that need no placement never call this).
fn suite_inputs(cache: &AnalysisCache) -> SuiteInputs<'_> {
    SuiteInputs::analyzed(
        &cache.usage,
        &cache.profile,
        cache.cyclic(),
        cache.pst(),
        cache.derived(),
    )
}

/// Distills a computed [`PlacementSuite`] into the report's selected
/// strategies (and the per-strategy placements an applied module run
/// needs), picking the best by predicted cost.
fn fill_report(
    report: &mut FunctionReport,
    suite: PlacementSuite,
    techniques: TechniqueSet,
) -> Vec<(Strategy, Placement)> {
    let entries = [
        (Strategy::Baseline, suite.entry_exit),
        (Strategy::Shrinkwrap, suite.chow),
        (Strategy::HierExec, suite.hierarchical_exec.placement),
        (Strategy::HierJump, suite.hierarchical_jump.placement),
    ];
    let mut placements = Vec::new();
    for ((strategy, placement), cost) in entries.into_iter().zip(suite.predicted) {
        if !techniques.contains(strategy) {
            continue;
        }
        report.strategies.push(StrategyReport {
            strategy,
            cost,
            static_count: placement.static_count(),
            placement: placement.clone(),
        });
        placements.push((strategy, placement));
    }
    report.best = report
        .strategies
        .iter()
        .min_by_key(|s| s.cost)
        .map(|s| s.strategy);
    placements
}

/// Converts a placement-validity failure into the driver's structured
/// error.
fn suite_error(func: &Function, e: SuiteError) -> DriverError {
    DriverError::InvalidPlacement {
        function: func.name().to_string(),
        technique: technique_name(e.technique),
        detail: e
            .errors
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_benchgen::{benchmark_by_name, build_bench};
    use spillopt_sync::atomic::AtomicUsize;

    fn mcf() -> (Module, Vec<(FuncId, Vec<i64>)>, Target) {
        let target = Target::default();
        let spec = benchmark_by_name("mcf").expect("known benchmark");
        let bench = build_bench(&spec, &target);
        (bench.module, bench.train_runs, target)
    }

    #[test]
    fn builder_validates_once() {
        assert!(matches!(
            OptimizerBuilder::new().target_named("pdp11").build(),
            Err(DriverError::Config(_))
        ));
        assert!(matches!(
            OptimizerBuilder::new()
                .techniques(TechniqueSet::EMPTY)
                .build(),
            Err(DriverError::Config(_))
        ));
        let session = OptimizerBuilder::new()
            .target_named("aarch64-aapcs64")
            .threads(1)
            .build()
            .expect("valid");
        assert_eq!(session.targets(), vec!["aarch64-aapcs64"]);
        assert_eq!(session.threads(), 1);
    }

    #[test]
    fn all_targets_session_rejects_single_module_optimize() {
        let (module, _, _) = mcf();
        let session = OptimizerBuilder::new()
            .all_targets()
            .threads(1)
            .build()
            .expect("valid");
        assert!(matches!(
            session.optimize(&module),
            Err(DriverError::Config(_))
        ));
    }

    #[test]
    fn warm_session_reuses_the_arena_and_keeps_bytes_identical() {
        let (module, runs, target) = mcf();
        let session = OptimizerBuilder::new()
            .target(target)
            .profile(ProfileSource::Workload(runs))
            .threads(2)
            .build()
            .expect("valid");
        let cold = session.optimize(&module).expect("first run");
        assert_eq!(session.arena_stats().hits, 0);
        let warm = session.optimize(&module).expect("second run");
        let stats = session.arena_stats();
        assert!(stats.hits > 0, "second run never hit the arena: {stats:?}");
        assert_eq!(
            cold.report.to_json().to_compact(),
            warm.report.to_json().to_compact(),
            "warm run changed report bytes"
        );
    }

    #[test]
    fn technique_subset_reports_only_selected_strategies() {
        let (module, runs, target) = mcf();
        let session = OptimizerBuilder::new()
            .target(target)
            .profile(ProfileSource::Workload(runs))
            .techniques(TechniqueSet::BASELINE.with(Strategy::HierJump))
            .threads(1)
            .build()
            .expect("valid");
        let run = session.optimize(&module).expect("optimize");
        let mut placed = 0;
        for f in &run.report.functions {
            for s in &f.strategies {
                assert!(
                    matches!(s.strategy, Strategy::Baseline | Strategy::HierJump),
                    "unselected strategy {} reported",
                    s.strategy.name()
                );
            }
            placed += f.strategies.len();
        }
        assert!(placed > 0, "no strategies reported at all");
    }

    #[test]
    fn observer_streams_every_placed_function() {
        let (module, runs, target) = mcf();
        let session = OptimizerBuilder::new()
            .target(target)
            .profile(ProfileSource::Workload(runs))
            .threads(2)
            .build()
            .expect("valid");
        let seen = AtomicUsize::new(0);
        let observer = |_t: &str, _m: &str, _r: &FunctionReport, _p: Provenance| {
            seen.fetch_add(1, Ordering::Relaxed);
        };
        let run = session.optimize_observed(&module, &observer).expect("run");
        assert_eq!(seen.load(Ordering::Relaxed), run.report.functions.len());
    }

    #[test]
    #[should_panic(expected = "was not computed")]
    fn apply_rejects_a_strategy_outside_the_technique_set() {
        let (module, runs, target) = mcf();
        let run = OptimizerBuilder::new()
            .target(target)
            .profile(ProfileSource::Workload(runs))
            .techniques(TechniqueSet::BASELINE)
            .threads(1)
            .build()
            .expect("valid")
            .optimize(&module)
            .expect("optimize");
        // hier-jump was never computed; silently emitting the module
        // without saves would violate the calling convention.
        let _ = run.apply(Some(Strategy::HierJump));
    }

    #[test]
    fn workload_naming_missing_functions_is_rejected() {
        let (module, _, target) = mcf();
        let bogus = vec![(FuncId::from_index(module.num_funcs() + 3), vec![1])];
        let err = OptimizerBuilder::new()
            .target(target)
            .profile(ProfileSource::Workload(bogus))
            .threads(1)
            .build()
            .expect("valid")
            .optimize(&module)
            .expect_err("workload names a function the module lacks");
        assert!(matches!(err, DriverError::Config(_)), "{err}");
        assert!(err.to_string().contains("per-module"), "{err}");
    }

    #[test]
    fn optimize_many_rejects_workload_sessions_for_batches() {
        let (module, runs, target) = mcf();
        let session = OptimizerBuilder::new()
            .target(target)
            .profile(ProfileSource::Workload(runs))
            .threads(1)
            .build()
            .expect("valid");
        let batch = vec![module.clone(), module];
        let err = session
            .optimize_many(&batch)
            .expect_err("one workload cannot train two modules");
        assert!(matches!(err, DriverError::Config(_)), "{err}");
    }

    #[test]
    fn technique_set_parses_and_renders() {
        assert_eq!(TechniqueSet::parse("all").unwrap(), TechniqueSet::ALL);
        let set = TechniqueSet::parse("baseline, hier-jump").unwrap();
        assert!(set.contains(Strategy::Baseline));
        assert!(set.contains(Strategy::HierJump));
        assert!(!set.contains(Strategy::Shrinkwrap));
        assert_eq!(set.len(), 2);
        assert_eq!(set.names(), "baseline,hier-jump");
        assert_eq!(TechniqueSet::parse(&set.names()).unwrap(), set);
        let err = TechniqueSet::parse("bogus").unwrap_err();
        assert!(err.contains("hier-jump"), "{err}");
        assert!(TechniqueSet::parse("").is_err());
    }

    /// Display ↔ parse round-trip, exhaustively over the whole (16-set)
    /// space: every non-empty subset renders to a string `parse`
    /// reproduces bit-for-bit, and the empty set both renders empty and
    /// is rejected on the way back in.
    #[test]
    fn technique_set_display_parse_round_trips_exhaustively() {
        let all = Strategy::all();
        for mask in 0u32..(1 << all.len()) {
            let members: Vec<Strategy> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, s)| *s)
                .collect();
            let set = TechniqueSet::of(&members);
            let rendered = set.to_string();
            assert_eq!(rendered, set.names(), "Display must match names()");
            if members.is_empty() {
                assert_eq!(rendered, "");
                let err = TechniqueSet::parse(&rendered).unwrap_err();
                assert!(err.contains("empty"), "{err}");
            } else {
                assert_eq!(
                    TechniqueSet::parse(&rendered).unwrap(),
                    set,
                    "`{rendered}` did not round-trip"
                );
            }
        }
        // Whitespace and separators do not defeat the empty-set check.
        for s in [" ", ",", " , "] {
            assert!(TechniqueSet::parse(s).is_err(), "`{s}` accepted");
        }
        // A duplicate name is idempotent, not an error.
        assert_eq!(
            TechniqueSet::parse("baseline,baseline").unwrap(),
            TechniqueSet::BASELINE
        );
    }
}

/// Model-checked suites for the arena's concurrency skeleton: the
/// warm-hit/insert, LRU-evict, and quarantine protocols explored over
/// every interleaving reachable under the preemption bound, on an
/// `Arena<u32>` (the production lock/atomic structure with a trivial
/// payload). Run with `cargo test -p spillopt-driver --features model`.
#[cfg(all(test, feature = "model"))]
mod arena_model_tests {
    use super::{Arc, Arena};
    use spillopt_sync::model::{check, ModelOptions};
    use spillopt_sync::thread;

    /// Warm-hit vs. insert race: two threads look up the same key and
    /// insert on miss. Under every schedule the arena ends with exactly
    /// one entry, every lookup-after-insert hits, and the hit/miss
    /// accounting matches what the threads actually observed.
    #[test]
    fn model_warm_hit_insert_race() {
        let report = check(ModelOptions::new(), || {
            let arena: Arc<Arena<u32>> = Arc::new(Arena::new(0));
            let worker = {
                let arena = Arc::clone(&arena);
                thread::spawn(move || match arena.structure("f") {
                    Some(state) => {
                        arena.record_hit();
                        *state.lock().unwrap()
                    }
                    None => {
                        arena.record_miss();
                        arena.insert_structure("f".into(), 7);
                        7
                    }
                })
            };
            match arena.structure("f") {
                Some(state) => {
                    arena.record_hit();
                    assert_eq!(*state.lock().unwrap(), 7);
                }
                None => {
                    arena.record_miss();
                    arena.insert_structure("f".into(), 7);
                }
            }
            assert_eq!(worker.join().unwrap(), 7);
            let stats = arena.stats();
            assert_eq!(stats.entries, 1, "duplicate inserts must coalesce");
            assert_eq!(stats.hits + stats.misses, 2);
            assert!(stats.misses >= 1, "someone had to populate the entry");
        });
        eprintln!(
            "model_warm_hit_insert_race: {} schedules",
            report.executions
        );
        assert!(report.executions > 1);
    }

    /// Concurrent inserts against capacity 1: under every schedule
    /// exactly one entry survives and exactly one eviction is counted —
    /// the evict scan must never see (or double-evict) a map it doesn't
    /// hold the lock for.
    #[test]
    fn model_capacity_evict_race() {
        let report = check(ModelOptions::new(), || {
            let arena: Arc<Arena<u32>> = Arc::new(Arena::new(1));
            let worker = {
                let arena = Arc::clone(&arena);
                thread::spawn(move || arena.insert_structure("a".into(), 1))
            };
            arena.insert_structure("b".into(), 2);
            worker.join().unwrap();
            let stats = arena.stats();
            assert_eq!(stats.entries, 1, "capacity 1 must hold");
            assert_eq!(stats.evictions, 1, "exactly one insert loses");
            // The survivor is intact and servable.
            let survivor = ["a", "b"].iter().filter_map(|k| arena.structure(k)).count();
            assert_eq!(survivor, 1);
        });
        eprintln!("model_capacity_evict_race: {} schedules", report.executions);
        assert!(report.executions > 1);
    }

    /// Quarantine under contention: one thread records two failures
    /// (opening a backoff window of 2 skips); another probes
    /// `quarantine_skip` concurrently. Whatever the interleaving, the
    /// window is conserved — skips granted during the race plus skips
    /// left afterwards equal the window the failures opened, and a
    /// subsequent success clears it.
    #[test]
    fn model_quarantine_window_is_conserved() {
        let report = check(ModelOptions::new(), || {
            let arena: Arc<Arena<u32>> = Arc::new(Arena::new(0));
            let prober = {
                let arena = Arc::clone(&arena);
                thread::spawn(move || arena.quarantine_skip("f") as u32)
            };
            arena.record_failure("f");
            arena.record_failure("f");
            let raced = prober.join().unwrap();
            let mut drained = 0u32;
            while arena.quarantine_skip("f") {
                drained += 1;
            }
            assert_eq!(
                raced + drained,
                2,
                "two failures open a window of exactly 2 skips"
            );
            arena.record_success("f");
            assert!(!arena.quarantine_skip("f"), "success clears the window");
        });
        eprintln!(
            "model_quarantine_window_is_conserved: {} schedules",
            report.executions
        );
        assert!(report.executions > 1);
    }

    /// A purged key no longer serves its old state, while a hit taken
    /// *before* the purge keeps its `Arc` alive and coherent — the
    /// lookup-clones-pointer design must tolerate purge racing a use.
    #[test]
    fn model_purge_races_active_use() {
        let report = check(ModelOptions::new(), || {
            let arena: Arc<Arena<u32>> = Arc::new(Arena::new(0));
            arena.insert_structure("f".into(), 1);
            let user = {
                let arena = Arc::clone(&arena);
                thread::spawn(move || {
                    arena.structure("f").map(|state| {
                        let mut v = state.lock().unwrap();
                        *v += 10;
                        *v
                    })
                })
            };
            arena.record_failure("f"); // purges "f"
            let seen = user.join().unwrap();
            assert!(
                seen.is_none() || seen == Some(11),
                "a racing user sees the entry fully or not at all: {seen:?}"
            );
            assert!(
                arena.structure("f").is_none(),
                "the purge must win against later lookups"
            );
        });
        eprintln!(
            "model_purge_races_active_use: {} schedules",
            report.executions
        );
        assert!(report.executions > 1);
    }
}
