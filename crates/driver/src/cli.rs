//! The `spillopt` command-line interface.
//!
//! ```text
//! spillopt optimize (--bench NAME | --input FILE) [--target T] [--threads N] [--strategy S] [--techniques LIST] [--on-fault P] [--budget-ms N] [--budget-iters N] [--progress] [--trace FILE] [--out FILE]
//! spillopt compare  (--bench NAME | --input FILE) [--target T|all] [--threads N] [--techniques LIST] [--on-fault P] [--budget-ms N] [--budget-iters N] [--progress] [--trace FILE] [--json]
//! spillopt report   (--bench NAME | --input FILE) [--target T|all] [--threads N] [--techniques LIST] [--on-fault P] [--budget-ms N] [--budget-iters N] [--progress] [--trace FILE] [--compact] [--out FILE]
//! spillopt stats    (--bench NAME | --input FILE) [--target T] [--threads N] [--techniques LIST] [--trace FILE] [--json] [--out FILE]
//! spillopt stress   --seeds N [--start S] [--target T|all] [--threads N] [--exact] [--gap PCT] [--drift] [--faults] [--trace FILE]
//! spillopt gap      --seeds N [--start S] [--target T|all] [--threads N] [--gap PCT] [--json] [--out FILE]
//! spillopt bench    --json [--out FILE] [--smoke] [--functions N] [--reps N] [--threads N] [--trace FILE]
//! spillopt list-benches
//! spillopt list-targets
//! ```
//!
//! Exit codes are distinct by failure class: `0` success, `1` internal
//! or pipeline failure, `2` usage / configuration error, `3` degraded
//! success (`--on-fault degrade|skip` completed and produced its
//! primary output, but the fault ledger is non-empty).
//!
//! * `optimize` emits the optimized module as IR text: every function
//!   register-allocated, save/restore code inserted under the chosen
//!   strategy (default: the per-function best).
//! * `compare` prints the four strategies side by side per function;
//!   `--target all` compares every registered backend target instead.
//! * `report` emits the full deterministic JSON report; `--target all`
//!   adds the cross-target comparison section.
//! * `stats` runs the pipeline under the [`spillopt_obs`] recorder
//!   (three times — cold, warm through the analysis arena, and under a
//!   weights-preserving profile drift that exercises the incremental
//!   re-fold) and prints the aggregated per-phase timing table (count /
//!   total / p50 / p95 / max), the counter totals, the dirty-region
//!   ledger, and the session's arena and pool-worker statistics;
//!   `--json` emits the machine-readable form.
//! * `stress` runs the differential stress subsystem: seeded random
//!   modules through all four placements on the chosen target(s),
//!   checked by the interpreter oracles, with minimized counterexample
//!   reporting. `--exact` adds the fourth (optimality-gap) oracle: a
//!   branch-and-bound solver certifies each function's minimum
//!   placement cost and hier-jump must land within `--gap` percent.
//!   `--drift` switches to the profile-drift differential instead: each
//!   seed's module is re-optimized through a warm incremental session
//!   under `--drift-steps` seeded profile mutations, and the report
//!   bytes must match a fresh cold pipeline after every step.
//!   `--faults` switches to the fault-injection fuzzer: one seeded
//!   fault (panic / error / budget trip) is armed at a named probe site
//!   per case, and containment, ledger exactness, blast radius, and
//!   session recovery are all checked against a fault-free oracle.
//! * `gap` measures the optimality gap across the stress corpus and
//!   emits the per-target gap histogram (`--json` for the machine
//!   record the nightly CI job archives).
//! * `bench` times module-scale `optimize` — current versus the frozen
//!   pre-rewrite reference pipeline — over a seeded stress corpus on
//!   every registered target, asserts the reports are byte-identical,
//!   and emits the perf-trajectory JSON record (`BENCH_*.json`).
//!
//! Every pipeline subcommand accepts `--trace FILE`: the run executes
//! under an active [`spillopt_obs`] recording and the collected trace
//! is written as Chrome Trace Event JSON, loadable directly in Perfetto
//! or `chrome://tracing`. (`bench` writes the trace of its dedicated
//! profiling pass, never of the timed arms.)
//!
//! Inputs are either a generated SPEC stand-in (`--bench`, profiled on
//! its training workload) or an IR text file (`--input`, profiled
//! synthetically). Argument parsing is hand-rolled: the surface is a
//! handful of subcommands and flags, not worth a dependency the offline
//! build would have to shim.

use crate::bench::{run_bench, BenchConfig};
use crate::drift::{run_drift, DriftConfig};
use crate::driver::{DriverError, ModuleRun, ProfileSource, Strategy};
use crate::faults::{run_faults, FaultConfig};
use crate::json::Json;
use crate::report::{CrossTargetReport, FunctionReport};
use crate::session::{Budget, FailurePolicy, OptimizerBuilder, Provenance, TechniqueSet};
use crate::stress::{run_stress, StressConfig};
use spillopt_ir::{display, parse_module_traced, Module};
use spillopt_targets::{registry, spec_by_name, TargetSpec};
use std::io::Write;
use std::time::Instant;

/// Entry point for the binary: parses `std::env::args`, runs, maps
/// errors to stderr + their [`CliError::exit_code`] (1 internal, 2
/// usage, 3 degraded success).
pub fn run_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match run(&args, &mut stdout) {
        Ok(()) => 0,
        Err(e @ CliError::Usage(_)) => {
            eprintln!("{e}\n\n{USAGE}");
            e.exit_code()
        }
        Err(e) => {
            eprintln!("spillopt: {e}");
            e.exit_code()
        }
    }
}

const USAGE: &str = "\
usage:
  spillopt optimize (--bench NAME | --input FILE) [--target T] [--threads N] [--strategy S] [--techniques LIST] [--on-fault P] [--budget-ms N] [--budget-iters N] [--progress] [--trace FILE] [--out FILE]
  spillopt compare  (--bench NAME | --input FILE) [--target T|all] [--threads N] [--techniques LIST] [--on-fault P] [--budget-ms N] [--budget-iters N] [--progress] [--trace FILE] [--json]
  spillopt report   (--bench NAME | --input FILE) [--target T|all] [--threads N] [--techniques LIST] [--on-fault P] [--budget-ms N] [--budget-iters N] [--progress] [--trace FILE] [--compact] [--out FILE]
  spillopt stats    (--bench NAME | --input FILE) [--target T] [--threads N] [--techniques LIST] [--trace FILE] [--json] [--out FILE]
  spillopt stress   --seeds N [--start S] [--target T|all] [--threads N] [--exact] [--gap PCT] [--drift] [--drift-steps N] [--faults] [--trace FILE]
  spillopt gap      --seeds N [--start S] [--target T|all] [--threads N] [--gap PCT] [--json] [--out FILE]
  spillopt bench    --json [--out FILE] [--smoke] [--functions N] [--reps N] [--threads N] [--trace FILE]
  spillopt list-benches
  spillopt list-targets

strategies: baseline | shrinkwrap | hier-exec | hier-jump | best (default)
--techniques selects which placement techniques the session reports
(and `optimize` may apply): `all` (default) or a comma-separated list
of strategy names.
--progress streams one stderr line per function as it retires from the
worker pool, plus a final summary line (functions retired, warm arena
hits, elapsed wall-clock) once the module is done.
--trace FILE records the run with the spillopt-obs recorder and writes
a Chrome Trace Event JSON file (open in Perfetto or chrome://tracing);
`bench` traces its dedicated profiling pass, never the timed arms.
--target names a registered backend (see list-targets; default pa-risc-like);
`--target all` fans compare/report out across every registered target.
--threads 0 uses all cores (default); --threads 1 is the serial reference.
`stats` runs the pipeline three times (cold, warm through the analysis
arena, then under a weights-preserving profile drift that takes the
incremental re-fold path) under the recorder and prints the per-phase
timing table (count/total/p50/p95/max), counter totals, the dirty-region
ledger, and arena/pool statistics; --json emits the machine-readable
form.
--on-fault sets the session failure policy: `fail` (default) surfaces
the first pipeline failure as an error; `degrade` retries a failing
function down the technique ladder (hier-jump, hier-exec, shrinkwrap,
baseline) and `skip` passes it through unoptimized — both record the
original error in the run's fault ledger and keep the rest of the
module. --budget-ms / --budget-iters cap each function's wall-clock and
solver iterations; an exceeded budget is a failure the policy handles
like any other.
`stress --drift` switches to the profile-drift differential: each seed's
module is re-optimized through a warm incremental session under a seeded
sequence of profile mutations (--drift-steps, default 8) and the report
bytes must match a fresh cold pipeline after every step.
`stress --faults` switches to the fault-injection fuzzer: one seeded
fault (panic / error / budget trip) is armed at a named probe site per
case, and containment, ledger exactness, blast radius, and session
recovery are all checked against a fault-free oracle; violations are
minimized and printed.
`stress` fuzzes seeded random modules through all four placements on the
chosen target(s) (default all), checking the interpreter-backed oracles;
failures are minimized and printed. --exact adds the optimality-gap
oracle (certified-minimum placement cost per function; hier-jump must
land within --gap percent of it, default 50 — the measured corpus
worst case).
`gap` runs the stress corpus under the exact oracle and reports the
per-target optimality-gap histogram.
`bench` measures the perf trajectory: wall-clock of module optimize,
current vs the frozen pre-rewrite reference, byte-identical reports
required; --smoke runs the small CI slice.

exit codes: 0 success; 1 internal or pipeline failure; 2 usage or
configuration error; 3 degraded success (--on-fault degrade|skip
completed and produced its primary output, but one or more functions
were degraded or skipped — the fault ledger is printed to stderr).";

/// The accepted `--strategy` values, for error messages.
const STRATEGIES: &str = "baseline, shrinkwrap, hier-exec, hier-jump, best";

/// A CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments (exit code 2, usage printed).
    Usage(String),
    /// Pipeline failure (exit code 1).
    Run(String),
    /// Degraded success (exit code 3): the run completed and produced
    /// its primary output, but `--on-fault degrade|skip` contained one
    /// or more function failures.
    Degraded(String),
}

impl CliError {
    /// The process exit code this failure class maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Run(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Degraded(_) => 3,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Run(msg) | CliError::Degraded(msg) => {
                write!(f, "{msg}")
            }
        }
    }
}

/// Runs the CLI against `args`, writing primary output to `out`.
/// Factored from [`run_main`] so tests can drive it in-process.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut args = args.iter().map(String::as_str);
    let sub = args.next().ok_or_else(|| usage("missing subcommand"))?;
    let rest: Vec<&str> = args.collect();
    match sub {
        "optimize" => optimize(&parse_opts("optimize", &rest)?, out),
        "compare" => compare(&parse_opts("compare", &rest)?, out),
        "report" => report(&parse_opts("report", &rest)?, out),
        "stats" => stats(&parse_opts("stats", &rest)?, out),
        "stress" => stress(&rest, out),
        "gap" => gap(&rest, out),
        "bench" => bench(&rest, out),
        "list-benches" => {
            for spec in spillopt_benchgen::all_benchmarks() {
                writeln!(out, "{}", spec.name).map_err(io_err)?;
            }
            Ok(())
        }
        "list-targets" => {
            for spec in registry() {
                writeln!(
                    out,
                    "{:<18} {:>2} callee-saved / {:>2} regs, pair {}, align {:>2}  {}",
                    spec.name,
                    spec.callee_saved.len(),
                    spec.callee_saved.len() + spec.caller_saved.len(),
                    spec.costs.pair_size,
                    spec.stack_align,
                    spec.description
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        other => Err(usage(&format!("unknown subcommand `{other}`"))),
    }
}

fn usage(msg: &str) -> CliError {
    CliError::Usage(msg.to_string())
}

/// Resolves a concrete `--target` value, listing the registry on error
/// (shared by the module subcommands and `stress`).
fn parse_target(name: &str) -> Result<TargetSpec, CliError> {
    spec_by_name(name).ok_or_else(|| {
        usage(&format!(
            "unknown target `{name}` (registered: {})",
            registry()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })
}

fn io_err(e: std::io::Error) -> CliError {
    CliError::Run(format!("write failed: {e}"))
}

/// Parsed flags shared by the three module subcommands.
struct Opts {
    bench: Option<String>,
    input: Option<String>,
    target: TargetChoice,
    threads: usize,
    strategy: Option<Strategy>,
    techniques: TechniqueSet,
    on_fault: FailurePolicy,
    budget: Budget,
    progress: bool,
    trace: Option<String>,
    out: Option<String>,
    json: bool,
    compact: bool,
}

/// The `--target` flag: one registered target or all of them.
enum TargetChoice {
    One(TargetSpec),
    All,
}

/// The flags each subcommand accepts; anything else is rejected rather
/// than silently ignored.
fn allowed_flags(sub: &str) -> &'static [&'static str] {
    match sub {
        "optimize" => &[
            "--bench",
            "--input",
            "--target",
            "--threads",
            "--strategy",
            "--techniques",
            "--on-fault",
            "--budget-ms",
            "--budget-iters",
            "--progress",
            "--trace",
            "--out",
        ],
        "compare" => &[
            "--bench",
            "--input",
            "--target",
            "--threads",
            "--techniques",
            "--on-fault",
            "--budget-ms",
            "--budget-iters",
            "--progress",
            "--trace",
            "--json",
        ],
        "report" => &[
            "--bench",
            "--input",
            "--target",
            "--threads",
            "--techniques",
            "--on-fault",
            "--budget-ms",
            "--budget-iters",
            "--progress",
            "--trace",
            "--compact",
            "--out",
        ],
        "stats" => &[
            "--bench",
            "--input",
            "--target",
            "--threads",
            "--techniques",
            "--trace",
            "--json",
            "--out",
        ],
        _ => &[],
    }
}

fn parse_opts(sub: &str, rest: &[&str]) -> Result<Opts, CliError> {
    let mut opts = Opts {
        bench: None,
        input: None,
        target: TargetChoice::One(spillopt_targets::pa_risc_like()),
        threads: 0,
        strategy: None,
        techniques: TechniqueSet::ALL,
        on_fault: FailurePolicy::Fail,
        budget: Budget::none(),
        progress: false,
        trace: None,
        out: None,
        json: false,
        compact: false,
    };
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        if !allowed_flags(sub).contains(&flag) {
            return Err(usage(&format!(
                "`{sub}` does not accept `{flag}` (accepted: {})",
                allowed_flags(sub).join(", ")
            )));
        }
        let mut value = || {
            it.next()
                .copied()
                .ok_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag {
            "--bench" => opts.bench = Some(value()?.to_string()),
            "--input" => opts.input = Some(value()?.to_string()),
            "--target" => {
                let v = value()?;
                opts.target = match v {
                    "all" if sub == "optimize" || sub == "stats" => {
                        return Err(usage(&format!(
                            "`{sub}` needs one concrete target (`--target all` only \
                             applies to compare/report)",
                        )))
                    }
                    "all" => TargetChoice::All,
                    name => TargetChoice::One(parse_target(name)?),
                }
            }
            "--threads" => {
                opts.threads = value()?
                    .parse()
                    .map_err(|_| usage("--threads needs a number"))?
            }
            "--strategy" => {
                let v = value()?;
                opts.strategy = match v {
                    "best" => None,
                    s => Some(Strategy::parse(s).ok_or_else(|| {
                        usage(&format!("unknown strategy `{s}` (accepted: {STRATEGIES})"))
                    })?),
                }
            }
            "--techniques" => {
                opts.techniques = TechniqueSet::parse(value()?).map_err(|e| usage(&e))?;
            }
            "--on-fault" => {
                let v = value()?;
                opts.on_fault = FailurePolicy::parse(v).ok_or_else(|| {
                    usage(&format!(
                        "unknown failure policy `{v}` (accepted: fail, degrade, skip)"
                    ))
                })?;
            }
            "--budget-ms" => {
                let ms = value()?
                    .parse()
                    .map_err(|_| usage("--budget-ms needs a number of milliseconds"))?;
                opts.budget = opts.budget.wall_ms(ms);
            }
            "--budget-iters" => {
                let iters = value()?
                    .parse()
                    .map_err(|_| usage("--budget-iters needs a number"))?;
                opts.budget = opts.budget.solver_iters(iters);
            }
            "--progress" => opts.progress = true,
            "--trace" => opts.trace = Some(value()?.to_string()),
            "--out" => opts.out = Some(value()?.to_string()),
            "--json" => opts.json = true,
            "--compact" => opts.compact = true,
            other => return Err(usage(&format!("unknown flag `{other}`"))),
        }
    }
    if opts.bench.is_some() == opts.input.is_some() {
        return Err(usage("exactly one of --bench or --input is required"));
    }
    if let Some(strategy) = opts.strategy {
        if !opts.techniques.contains(strategy) {
            return Err(usage(&format!(
                "--strategy {} is not in --techniques {}",
                strategy.name(),
                opts.techniques.names()
            )));
        }
    }
    if matches!(opts.target, TargetChoice::All)
        && (opts.on_fault != FailurePolicy::Fail || opts.budget.is_some())
    {
        // The cross-target report aggregates ModuleReports and has no
        // per-target fault ledger to surface; keep the degraded exit
        // code honest by requiring one concrete target.
        return Err(usage(
            "--on-fault / --budget-* need one concrete target (not `--target all`)",
        ));
    }
    Ok(opts)
}

/// Loads the module and its profile source for one target.
fn load(opts: &Opts, spec: &TargetSpec) -> Result<(Module, ProfileSource), CliError> {
    let target = spec
        .try_to_target()
        .map_err(|e| CliError::Run(format!("target `{}` is malformed: {e}", spec.name)))?;
    if let Some(name) = &opts.bench {
        if target.arg_regs().len() < spillopt_benchgen::BENCH_NUM_PARAMS {
            return Err(CliError::Run(format!(
                "target `{}` has {} argument register(s) but generated benchmarks need {}; \
                 use --input with a hand-written module instead",
                spec.name,
                target.arg_regs().len(),
                spillopt_benchgen::BENCH_NUM_PARAMS
            )));
        }
        let bench_spec = spillopt_benchgen::benchmark_by_name(name).ok_or_else(|| {
            CliError::Run(format!("unknown benchmark `{name}` (see list-benches)"))
        })?;
        let bench = spillopt_benchgen::build_bench(&bench_spec, &target);
        Ok((bench.module, ProfileSource::Workload(bench.train_runs)))
    } else {
        let path = opts.input.as_deref().expect("validated by parse_opts");
        load_input(path)
    }
}

/// Reads, parses, and verifies an `--input` IR file. Target-independent:
/// `--target all` loads the file once and shares the module.
///
/// Parse errors surface with their source line; verifier errors are
/// listed one per line, each mapped back to the closest source line the
/// parser recorded.
fn load_input(path: &str) -> Result<(Module, ProfileSource), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Run(format!("cannot read `{path}`: {e}")))?;
    let (module, smap) = parse_module_traced(&text)
        .map_err(|e| CliError::Run(format!("parse error in `{path}`: {e}")))?;
    let errs = spillopt_ir::verify_module(&module, spillopt_ir::RegDiscipline::Virtual);
    if !errs.is_empty() {
        let rendered: Vec<String> = errs
            .iter()
            .map(|e| match smap.line_of(e) {
                Some(l) => format!("  line {l}: {e}"),
                None => format!("  {e}"),
            })
            .collect();
        return Err(CliError::Run(format!(
            "`{path}` does not verify (virtual register discipline):\n{}",
            rendered.join("\n")
        )));
    }
    Ok((module, ProfileSource::default()))
}

/// The `--progress` observer: one stderr line per retiring function,
/// streamed from the session as the pool finishes each one. The target
/// name disambiguates the interleaved `--target all` fan-out; the
/// provenance tag says whether the function ran cold, hit the arena
/// warm, or was incrementally re-folded after a profile drift.
fn progress_observer() -> impl Fn(&str, &str, &FunctionReport, Provenance) + Sync {
    |target: &str, module: &str, report: &FunctionReport, provenance: Provenance| {
        let best = report.best.map_or("(no callee-saved use)", |b| b.name());
        eprintln!(
            "  [{target}] {module}::{} placed: {best} [{}]",
            report.name,
            provenance.name()
        );
    }
}

/// The `--progress` final summary: one stderr line once the module (or
/// the whole cross-target fan-out) is done — it follows every streamed
/// `function_retired` line because the session only returns after its
/// `module_done` notification. Reuse provenance is summarized as warm
/// hits and incremental re-folds (both zero for arena-less runs).
fn progress_summary(
    label: &str,
    functions: usize,
    stats: &crate::session::SessionStats,
    started: Instant,
) {
    eprintln!(
        "  [{label}] done: {functions} function(s) retired, {} warm arena hit(s), \
         {} incremental re-fold(s), {:.1}ms",
        stats.arena.hits,
        stats.arena.incremental,
        started.elapsed().as_secs_f64() * 1e3
    );
}

/// Runs `f` under an active [`spillopt_obs`] recording when `path` is
/// set, writing the collected trace as Chrome Trace Event JSON. The
/// trace is only written when the run succeeds; the recording itself is
/// torn down either way.
fn with_trace<T>(
    path: Option<&str>,
    f: impl FnOnce() -> Result<T, CliError>,
) -> Result<T, CliError> {
    let Some(path) = path else { return f() };
    let recording = spillopt_obs::Recording::start();
    let result = f();
    let trace = recording.finish();
    if result.is_ok() {
        std::fs::write(path, trace.chrome_json())
            .map_err(|e| CliError::Run(format!("cannot write trace `{path}`: {e}")))?;
        eprintln!(
            "trace: {} span(s), {} counter(s) -> {path}",
            trace.spans.len(),
            trace.counters.len()
        );
    }
    result
}

fn drive(opts: &Opts, spec: &TargetSpec) -> Result<crate::driver::ModuleRun, CliError> {
    let (module, profile) = load(opts, spec)?;
    let session = OptimizerBuilder::new()
        .target_spec(spec.clone())
        .profile(profile)
        .threads(opts.threads)
        .techniques(opts.techniques)
        .on_fault(opts.on_fault)
        .budget(opts.budget)
        // One-shot process: an arena would cache results nothing reads.
        .reuse_analyses(false)
        .build()
        .map_err(|e| CliError::Run(e.to_string()))?;
    let started = Instant::now();
    let run = if opts.progress {
        session.optimize_observed(&module, &progress_observer())
    } else {
        session.optimize(&module)
    };
    let run = run.map_err(|e| CliError::Run(e.to_string()))?;
    if opts.progress {
        progress_summary(
            spec.name,
            run.report.functions.len(),
            &session.stats(),
            started,
        );
    }
    Ok(run)
}

/// Runs the pipeline on every registered target.
///
/// An `--input` module is target-independent: it is read, parsed, and
/// verified **once** here and cloned per target, instead of re-doing the
/// file I/O and parse for each of them. Generated benchmarks still build
/// per target — they lower against each target's calling convention.
fn drive_all(opts: &Opts) -> Result<CrossTargetReport, CliError> {
    let shared: Option<(Module, ProfileSource)> = match opts.input.as_deref() {
        Some(path) => Some(load_input(path)?),
        None => None,
    };
    let session = OptimizerBuilder::new()
        .all_targets()
        .threads(opts.threads)
        .techniques(opts.techniques)
        // One-shot process: an arena would cache results nothing reads.
        .reuse_analyses(false)
        .build()
        .map_err(|e| CliError::Run(e.to_string()))?;
    let load_for = |spec: &TargetSpec| match &shared {
        Some(pair) => Ok(pair.clone()),
        None => load(opts, spec).map_err(|e| match e {
            CliError::Run(msg) | CliError::Usage(msg) | CliError::Degraded(msg) => {
                DriverError::Load(format!("target {}: {msg}", spec.name))
            }
        }),
    };
    let started = Instant::now();
    let report = if opts.progress {
        session.cross_target_observed(load_for, &progress_observer())
    } else {
        session.cross_target(load_for)
    };
    let report = report.map_err(|e| CliError::Run(e.to_string()))?;
    if opts.progress {
        let functions: usize = report.targets.iter().map(|(_, r)| r.functions.len()).sum();
        progress_summary("all", functions, &session.stats(), started);
    }
    Ok(report)
}

/// Writes `text` to `--out` or the primary stream.
fn emit(opts: &Opts, out: &mut dyn Write, text: &str) -> Result<(), CliError> {
    match &opts.out {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| CliError::Run(format!("cannot write `{path}`: {e}"))),
        None => out.write_all(text.as_bytes()).map_err(io_err),
    }
}

/// Converts a non-empty fault ledger into the degraded-success exit
/// (code 3), after the primary output has been produced. Each contained
/// fault is printed to stderr.
fn degraded_check(run: &ModuleRun) -> Result<(), CliError> {
    if run.faults().is_empty() {
        return Ok(());
    }
    for fault in run.faults() {
        eprintln!("spillopt: contained fault: {fault}");
    }
    Err(CliError::Degraded(format!(
        "completed with {} contained fault(s); degraded functions listed above",
        run.faults().len()
    )))
}

fn optimize(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let TargetChoice::One(spec) = &opts.target else {
        unreachable!("rejected in parse_opts");
    };
    let run = with_trace(opts.trace.as_deref(), || drive(opts, spec))?;
    let optimized = run.apply(opts.strategy);
    eprintln!(
        "optimized {} for {}: {} functions, {} placed, speedup {}",
        run.report.module,
        run.report.target,
        run.report.functions.len(),
        run.report.placed_functions(),
        run.report
            .speedup()
            .map_or("n/a".to_string(), |x| format!("{x:.2}x"))
    );
    emit(opts, out, &display::module_to_string(&optimized))?;
    degraded_check(&run)
}

fn compare(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    match &opts.target {
        TargetChoice::One(spec) => {
            let run = with_trace(opts.trace.as_deref(), || drive(opts, spec))?;
            if opts.json {
                emit(opts, out, &(run.report.to_json().to_pretty() + "\n"))?;
            } else {
                emit(opts, out, &run.report.render_human())?;
            }
            degraded_check(&run)
        }
        TargetChoice::All => {
            let cross = with_trace(opts.trace.as_deref(), || drive_all(opts))?;
            if opts.json {
                emit(opts, out, &(cross.to_json().to_pretty() + "\n"))
            } else {
                emit(opts, out, &cross.render_human())
            }
        }
    }
}

/// Flags shared by `stress` and `gap`: the corpus and the exact-oracle
/// configuration.
struct StressFlags {
    seeds: u64,
    start: u64,
    threads: usize,
    targets: Vec<TargetSpec>,
    exact: bool,
    gap_percent: u64,
    drift: bool,
    drift_steps: u64,
    faults: bool,
    json: bool,
    trace: Option<String>,
    out: Option<String>,
}

/// Parses the `stress` / `gap` flag surface. `sub` selects which extras
/// are accepted (`--exact` only on stress, `--json`/`--out` only on
/// gap).
fn parse_stress_flags(sub: &str, rest: &[&str]) -> Result<StressFlags, CliError> {
    let mut flags = StressFlags {
        seeds: 0,
        start: 0,
        threads: 0,
        targets: registry(),
        exact: sub == "gap",
        gap_percent: spillopt_stress::DEFAULT_GAP_PERCENT,
        drift: false,
        drift_steps: crate::drift::DEFAULT_DRIFT_STEPS,
        faults: false,
        json: false,
        trace: None,
        out: None,
    };
    let mut seeds: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        let mut value = || {
            it.next()
                .copied()
                .ok_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag {
            "--seeds" => {
                seeds = Some(
                    value()?
                        .parse()
                        .map_err(|_| usage("--seeds needs a number"))?,
                )
            }
            "--start" => {
                flags.start = value()?
                    .parse()
                    .map_err(|_| usage("--start needs a number"))?
            }
            "--threads" => {
                flags.threads = value()?
                    .parse()
                    .map_err(|_| usage("--threads needs a number"))?
            }
            "--target" => {
                let v = value()?;
                // Last flag wins in both directions: `all` restores the
                // full registry after an earlier narrowing.
                flags.targets = if v == "all" {
                    registry()
                } else {
                    vec![parse_target(v)?]
                };
            }
            "--exact" if sub == "stress" => flags.exact = true,
            "--drift" if sub == "stress" => flags.drift = true,
            "--faults" if sub == "stress" => flags.faults = true,
            "--drift-steps" if sub == "stress" => {
                flags.drift_steps = value()?
                    .parse()
                    .map_err(|_| usage("--drift-steps needs a number"))?
            }
            "--gap" => {
                flags.gap_percent = value()?
                    .parse()
                    .map_err(|_| usage("--gap needs a percentage"))?
            }
            "--json" if sub == "gap" => flags.json = true,
            "--trace" if sub == "stress" => flags.trace = Some(value()?.to_string()),
            "--out" if sub == "gap" => flags.out = Some(value()?.to_string()),
            other => {
                let accepted = if sub == "stress" {
                    "--seeds, --start, --target, --threads, --exact, --gap, --drift, \
                     --drift-steps, --faults, --trace"
                } else {
                    "--seeds, --start, --target, --threads, --gap, --json, --out"
                };
                return Err(usage(&format!(
                    "`{sub}` does not accept `{other}` (accepted: {accepted})"
                )));
            }
        }
    }
    flags.seeds = seeds.ok_or_else(|| usage(&format!("`{sub}` requires --seeds N")))?;
    if !flags.exact && flags.gap_percent != spillopt_stress::DEFAULT_GAP_PERCENT {
        return Err(usage("--gap only applies with --exact"));
    }
    if (flags.drift as u8) + (flags.exact as u8) + (flags.faults as u8) > 1 {
        return Err(usage(
            "--drift, --exact, and --faults are separate oracles; pick one per run",
        ));
    }
    if !flags.drift && flags.drift_steps != crate::drift::DEFAULT_DRIFT_STEPS {
        return Err(usage("--drift-steps only applies with --drift"));
    }
    Ok(flags)
}

/// Builds the driver configuration for a parsed `stress` / `gap` run.
fn stress_config(flags: &StressFlags) -> StressConfig {
    StressConfig {
        start: flags.start,
        seeds: flags.seeds,
        targets: flags.targets.clone(),
        threads: flags.threads,
        exact: flags.exact.then(|| spillopt_stress::ExactOptions {
            gap_percent: flags.gap_percent,
            ..spillopt_stress::ExactOptions::default()
        }),
    }
}

/// Writes the counterexamples and converts a failed run into the
/// subcommand's error.
fn stress_failures(
    summary: &crate::stress::StressSummary,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if summary.passed() {
        return Ok(());
    }
    for f in &summary.failures {
        writeln!(out, "\n=== counterexample ===\n{f}").map_err(io_err)?;
    }
    Err(CliError::Run(format!(
        "{} of {} stress cases failed an oracle (minimized counterexamples above)",
        summary.failures.len(),
        summary.cases
    )))
}

/// The `stress` subcommand: differential fuzzing of all four placements
/// against the interpreter oracles (semantic equivalence, model
/// fidelity, never-worse — and, with `--exact`, the optimality gap).
/// See `spillopt-stress` for the machinery.
fn stress(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = parse_stress_flags("stress", rest)?;
    if flags.drift {
        return drift(&flags, out);
    }
    if flags.faults {
        return faults(&flags, out);
    }
    let summary = with_trace(flags.trace.as_deref(), || {
        Ok(run_stress(&stress_config(&flags)))
    })?;
    writeln!(
        out,
        "stress: {} cases (seeds {}..{} x {} target(s)): {} functions, {} placed, \
         {} placements checked, {} failure(s)",
        summary.cases,
        flags.start,
        flags.start.saturating_add(flags.seeds),
        flags.targets.len(),
        summary.functions,
        summary.placed_functions,
        summary.placements_checked,
        summary.failures.len()
    )
    .map_err(io_err)?;
    for t in &summary.exact {
        let j = &t.stats.jump;
        writeln!(
            out,
            "  exact [{}]: {} certified, {} budget-bounded, {} skipped, \
             max hier-jump gap {:.1}%",
            t.target,
            j.solved,
            j.bounded,
            j.skipped,
            j.hist.max_permille as f64 / 10.0
        )
        .map_err(io_err)?;
    }
    stress_failures(&summary, out)
}

/// The `stress --drift` arm: the profile-drift differential (warm
/// incremental session vs fresh cold pipeline, byte-identical reports
/// after every drift step). See [`crate::drift`] for the machinery.
fn drift(flags: &StressFlags, out: &mut dyn Write) -> Result<(), CliError> {
    let summary = with_trace(flags.trace.as_deref(), || {
        Ok(run_drift(&DriftConfig {
            start: flags.start,
            seeds: flags.seeds,
            steps: flags.drift_steps,
            targets: flags.targets.clone(),
            threads: flags.threads,
        }))
    })?;
    writeln!(
        out,
        "drift: {} cases (seeds {}..{} x {} target(s), {} step(s)): {} checks, \
         {} functions, {} warm hit(s), {} incremental re-fold(s), \
         {}/{} regions re-folded, {} failure(s)",
        summary.cases,
        flags.start,
        flags.start.saturating_add(flags.seeds),
        flags.targets.len(),
        flags.drift_steps,
        summary.steps_checked,
        summary.functions,
        summary.warm_hits,
        summary.incremental,
        summary.regions_refolded,
        summary.regions_total,
        summary.failures.len()
    )
    .map_err(io_err)?;
    if summary.passed() {
        return Ok(());
    }
    for f in &summary.failures {
        writeln!(out, "\n=== counterexample ===\n{f}").map_err(io_err)?;
    }
    Err(CliError::Run(format!(
        "{} of {} drift cases diverged from the cold oracle (minimized counterexamples above)",
        summary.failures.len(),
        summary.cases
    )))
}

/// The `stress --faults` arm: the fault-injection fuzzer (one seeded
/// fault per case, containment / ledger / blast-radius / recovery
/// invariants against a fault-free oracle). See [`crate::faults`] for
/// the machinery.
fn faults(flags: &StressFlags, out: &mut dyn Write) -> Result<(), CliError> {
    let summary = with_trace(flags.trace.as_deref(), || {
        Ok(run_faults(&FaultConfig {
            start: flags.start,
            seeds: flags.seeds,
            targets: flags.targets.clone(),
            threads: flags.threads,
        }))
    })?;
    writeln!(
        out,
        "faults: {} cases (seeds {}..{} x {} target(s)): {} functions, {} fault(s) fired, \
         {} degraded, {} skipped, {} violation(s)",
        summary.cases,
        flags.start,
        flags.start.saturating_add(flags.seeds),
        flags.targets.len(),
        summary.functions,
        summary.fired,
        summary.degraded,
        summary.skipped,
        summary.failures.len()
    )
    .map_err(io_err)?;
    if summary.passed() {
        return Ok(());
    }
    for f in &summary.failures {
        writeln!(out, "\n=== counterexample ===\n{f}").map_err(io_err)?;
    }
    Err(CliError::Run(format!(
        "{} of {} fault cases violated a containment invariant (minimized counterexamples above)",
        summary.failures.len(),
        summary.cases
    )))
}

/// The `gap` subcommand: the stress corpus under the exact oracle,
/// reported as a per-target optimality-gap histogram.
fn gap(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = parse_stress_flags("gap", rest)?;
    let summary = run_stress(&stress_config(&flags));
    let json = Json::obj()
        .with("report", Json::str("optimality_gap"))
        .with("schema_version", Json::UInt(1))
        .with("start", Json::UInt(flags.start))
        .with("seeds", Json::UInt(flags.seeds))
        .with("gap_percent", Json::UInt(flags.gap_percent))
        .with("cases", Json::UInt(summary.cases as u64))
        .with("functions", Json::UInt(summary.functions as u64))
        .with("failures", Json::UInt(summary.failures.len() as u64))
        .with("targets", summary.gap_report_json());
    let text = if flags.json {
        json.to_pretty() + "\n"
    } else {
        let mut t = format!(
            "{:<18} {:>9} {:>8} {:>8} {:>9} {:>11}\n",
            "target", "certified", "bounded", "skipped", "zero-gap", "max-gap"
        );
        for target in &summary.exact {
            let j = &target.stats.jump;
            t.push_str(&format!(
                "{:<18} {:>9} {:>8} {:>8} {:>9} {:>10.1}%\n",
                target.target,
                j.solved,
                j.bounded,
                j.skipped,
                j.hist.zero,
                j.hist.max_permille as f64 / 10.0
            ));
        }
        t
    };
    match &flags.out {
        Some(path) => std::fs::write(path, &text)
            .map_err(|e| CliError::Run(format!("cannot write `{path}`: {e}")))?,
        None => out.write_all(text.as_bytes()).map_err(io_err)?,
    }
    stress_failures(&summary, out)
}

/// The `bench` subcommand: the reproducible perf-trajectory harness.
/// See [`crate::bench`].
fn bench(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    // `--smoke` selects the base configuration; explicit flags override
    // it regardless of their position relative to `--smoke`.
    let mut config = if rest.contains(&"--smoke") {
        BenchConfig::smoke()
    } else {
        BenchConfig::default()
    };
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        let mut value = || {
            it.next()
                .copied()
                .ok_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag {
            "--json" => json = true,
            "--smoke" => {}
            "--functions" => {
                config.functions = value()?
                    .parse()
                    .map_err(|_| usage("--functions needs a number"))?
            }
            "--scale" => {
                config.scale = value()?
                    .parse()
                    .map_err(|_| usage("--scale needs a number"))?
            }
            "--reps" => {
                config.reps = value()?
                    .parse()
                    .map_err(|_| usage("--reps needs a number"))?
            }
            "--seed-start" => {
                config.seed_start = value()?
                    .parse()
                    .map_err(|_| usage("--seed-start needs a number"))?
            }
            "--threads" => {
                config.threads = value()?
                    .parse()
                    .map_err(|_| usage("--threads needs a number"))?
            }
            "--out" => out_path = Some(value()?.to_string()),
            "--trace" => trace_path = Some(value()?.to_string()),
            other => {
                return Err(usage(&format!(
                    "`bench` does not accept `{other}` (accepted: --json, --out, --smoke, \
                     --functions, --scale, --reps, --seed-start, --threads, --trace)"
                )))
            }
        }
    }

    let outcome = run_bench(&config).map_err(|e| CliError::Run(e.to_string()))?;
    // The bench's trace comes from its dedicated instrumented profiling
    // pass (see [`crate::bench`]) — the timed arms always run with the
    // recorder disabled, so `--trace` can never perturb the numbers.
    if let Some(path) = &trace_path {
        std::fs::write(path, outcome.trace.chrome_json())
            .map_err(|e| CliError::Run(format!("cannot write trace `{path}`: {e}")))?;
    }
    eprintln!(
        "bench: {} functions x {} targets, {} rep(s): optimize {:.1}ms vs reference {:.1}ms          -> {:.2}x speedup, reports identical: {}",
        outcome.functions,
        outcome.targets.len(),
        config.reps,
        outcome.total_current_ns() as f64 / 1e6,
        outcome.total_reference_ns() as f64 / 1e6,
        outcome.speedup(),
        outcome.reports_identical()
    );
    if !outcome.reports_identical() {
        return Err(CliError::Run(
            "current and reference pipelines produced different ModuleReports".to_string(),
        ));
    }
    let text = if json {
        outcome.to_json().to_pretty() + "\n"
    } else {
        let mut t = format!(
            "{:<18} {:>12} {:>14} {:>9}\n",
            "target", "optimize(ms)", "reference(ms)", "speedup"
        );
        for tb in &outcome.targets {
            t.push_str(&format!(
                "{:<18} {:>12.2} {:>14.2} {:>8.2}x\n",
                tb.target,
                tb.current_ns as f64 / 1e6,
                tb.reference_ns as f64 / 1e6,
                tb.reference_ns as f64 / tb.current_ns.max(1) as f64
            ));
        }
        t.push_str(&format!("overall speedup: {:.2}x\n", outcome.speedup()));
        t
    };
    match out_path {
        Some(path) => std::fs::write(&path, text)
            .map_err(|e| CliError::Run(format!("cannot write `{path}`: {e}"))),
        None => out.write_all(text.as_bytes()).map_err(io_err),
    }
}

fn report(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let (json, run) = with_trace(opts.trace.as_deref(), || match &opts.target {
        TargetChoice::One(spec) => {
            let run = drive(opts, spec)?;
            Ok((run.report.to_json(), Some(run)))
        }
        TargetChoice::All => Ok((drive_all(opts)?.to_json(), None)),
    })?;
    let text = if opts.compact {
        json.to_compact() + "\n"
    } else {
        json.to_pretty() + "\n"
    };
    emit(opts, out, &text)?;
    match &run {
        Some(run) => degraded_check(run),
        None => Ok(()),
    }
}

/// The `stats` subcommand: the pipeline under the recorder, reported as
/// an aggregated metrics snapshot instead of a timeline. The module
/// runs three times through an arena-*enabled* session — cold, warm,
/// then under a weights-preserving profile drift — so the arena
/// counters show every lookup outcome (miss, hit, incremental re-fold),
/// the dirty-region ledger has something to report, and the phase table
/// covers the cached and incremental paths too.
fn stats(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let TargetChoice::One(spec) = &opts.target else {
        unreachable!("rejected in parse_opts");
    };
    let (module, profile) = load(opts, spec)?;
    let session = OptimizerBuilder::new()
        .target_spec(spec.clone())
        .profile(profile)
        .threads(opts.threads)
        .techniques(opts.techniques)
        .reuse_analyses(true)
        .build()
        .map_err(|e| CliError::Run(e.to_string()))?;
    let recording = spillopt_obs::Recording::start();
    let started = Instant::now();
    let mut functions = 0;
    for _ in 0..2 {
        let run = session
            .optimize(&module)
            .map_err(|e| CliError::Run(e.to_string()))?;
        functions = run.report.functions.len();
    }
    // Third run: drift the profile without touching any block count, so
    // allocation is reusable and the placement re-fold goes through the
    // incremental path (functions with no suitable edge pair stay
    // warm hits).
    let mut profiles = session
        .resolve_profiles(&module)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let drifted_funcs = crate::drift::nudge_weight_preserving(&module, &mut profiles);
    session
        .optimize_profiled(&module, &profiles)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let trace = recording.finish();
    if let Some(path) = &opts.trace {
        std::fs::write(path, trace.chrome_json())
            .map_err(|e| CliError::Run(format!("cannot write trace `{path}`: {e}")))?;
    }
    let metrics = trace.metrics();
    let session_stats = session.stats();
    let ms = |ns: u64| ns as f64 / 1e6;
    let text = if opts.json {
        let mut phases = Vec::new();
        for p in &metrics.phases {
            phases.push(
                Json::obj()
                    .with("phase", Json::str(p.name))
                    .with("count", Json::UInt(p.count))
                    .with("total_ms", Json::Float(ms(p.total_ns)))
                    .with("p50_ms", Json::Float(ms(p.p50_ns)))
                    .with("p95_ms", Json::Float(ms(p.p95_ns)))
                    .with("max_ms", Json::Float(ms(p.max_ns))),
            );
        }
        let mut counters = Json::obj();
        for (name, total) in &metrics.counters {
            counters = counters.with(name, Json::UInt(*total));
        }
        let mut workers = Vec::new();
        for w in &session_stats.pool_workers {
            workers.push(
                Json::obj()
                    .with("items", Json::UInt(w.items))
                    .with("busy_ms", Json::Float(ms(w.busy_ns)))
                    .with("idle_ms", Json::Float(ms(w.idle_ns))),
            );
        }
        Json::obj()
            .with("report", Json::str("stats"))
            .with("schema_version", Json::UInt(1))
            .with("module", Json::str(module.name()))
            .with("target", Json::str(spec.name))
            .with("runs", Json::UInt(3))
            .with("functions", Json::UInt(functions as u64))
            .with("drifted_functions", Json::UInt(drifted_funcs as u64))
            .with("elapsed_ms", Json::Float(elapsed_ms))
            .with("phases", Json::Array(phases))
            .with("counters", counters)
            .with(
                "arena",
                Json::obj()
                    .with("hits", Json::UInt(session_stats.arena.hits))
                    .with("misses", Json::UInt(session_stats.arena.misses))
                    .with("incremental", Json::UInt(session_stats.arena.incremental))
                    .with("evictions", Json::UInt(session_stats.arena.evictions))
                    .with(
                        "regions_refolded",
                        Json::UInt(session_stats.arena.regions_refolded),
                    )
                    .with(
                        "regions_total",
                        Json::UInt(session_stats.arena.regions_total),
                    ),
            )
            .with("pool_workers", Json::Array(workers))
            .to_pretty()
            + "\n"
    } else {
        let mut t = format!(
            "stats: {} on {} — 3 runs (cold + warm + drifted), {} function(s), {:.1}ms\n\
             {:<22} {:>7} {:>11} {:>10} {:>10} {:>10}\n",
            module.name(),
            spec.name,
            functions,
            elapsed_ms,
            "phase",
            "count",
            "total(ms)",
            "p50(ms)",
            "p95(ms)",
            "max(ms)"
        );
        for p in &metrics.phases {
            t.push_str(&format!(
                "{:<22} {:>7} {:>11.3} {:>10.3} {:>10.3} {:>10.3}\n",
                p.name,
                p.count,
                ms(p.total_ns),
                ms(p.p50_ns),
                ms(p.p95_ns),
                ms(p.max_ns)
            ));
        }
        t.push_str("counters:\n");
        for (name, total) in &metrics.counters {
            t.push_str(&format!("  {name:<28} {total}\n"));
        }
        t.push_str(&format!(
            "arena: {} hit(s) / {} miss(es) / {} incremental / {} eviction(s)\n",
            session_stats.arena.hits,
            session_stats.arena.misses,
            session_stats.arena.incremental,
            session_stats.arena.evictions
        ));
        t.push_str(&format!(
            "dirty regions: {} re-folded of {} across the incremental run \
             ({drifted_funcs} function(s) drifted)\n",
            session_stats.arena.regions_refolded, session_stats.arena.regions_total
        ));
        if session_stats.pool_workers.is_empty() {
            t.push_str("pool: serial (no persistent workers)\n");
        } else {
            for (i, w) in session_stats.pool_workers.iter().enumerate() {
                t.push_str(&format!(
                    "pool: worker {i}: {} item(s), busy {:.1}ms, idle {:.1}ms\n",
                    w.items,
                    ms(w.busy_ns),
                    ms(w.idle_ns)
                ));
            }
        }
        t
    };
    emit(opts, out, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run_capture(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run_capture(&["compare"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_capture(&["compare", "--bench", "mcf", "--input", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["optimize", "--bench", "mcf", "--strategy", "bogus"]),
            Err(CliError::Usage(_))
        ));
        // Flags that don't apply to the subcommand are rejected, not
        // silently ignored.
        assert!(matches!(
            run_capture(&["report", "--bench", "mcf", "--strategy", "baseline"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["optimize", "--bench", "mcf", "--json"]),
            Err(CliError::Usage(_))
        ));
        // `optimize` needs one concrete target.
        assert!(matches!(
            run_capture(&["optimize", "--bench", "mcf", "--target", "all"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn strategy_errors_list_the_accepted_values() {
        let Err(CliError::Usage(msg)) =
            run_capture(&["optimize", "--bench", "mcf", "--strategy", "bogus"])
        else {
            panic!("expected usage error");
        };
        for s in ["baseline", "shrinkwrap", "hier-exec", "hier-jump", "best"] {
            assert!(msg.contains(s), "`{msg}` does not list `{s}`");
        }
    }

    #[test]
    fn techniques_flag_is_typed_and_lists_accepted_values() {
        let Err(CliError::Usage(msg)) =
            run_capture(&["compare", "--bench", "mcf", "--techniques", "bogus"])
        else {
            panic!("expected usage error");
        };
        for s in ["baseline", "shrinkwrap", "hier-exec", "hier-jump"] {
            assert!(msg.contains(s), "`{msg}` does not list `{s}`");
        }
        // A strategy outside the selected set is rejected up front.
        assert!(matches!(
            run_capture(&[
                "optimize",
                "--bench",
                "mcf",
                "--techniques",
                "baseline",
                "--strategy",
                "hier-jump",
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn techniques_rejects_empty_lists() {
        // An empty technique set cannot run anything — reject it at the
        // flag, in every spelling (bare, separators-only, whitespace).
        for bad in ["", ",", " ", " , "] {
            assert!(
                matches!(
                    run_capture(&["compare", "--bench", "mcf", "--techniques", bad]),
                    Err(CliError::Usage(_))
                ),
                "`--techniques {bad:?}` was accepted"
            );
        }
    }

    #[test]
    fn compare_with_a_technique_subset_runs() {
        let out = run_capture(&[
            "compare",
            "--bench",
            "mcf",
            "--techniques",
            "baseline,hier-jump",
            "--threads",
            "1",
        ])
        .expect("compare");
        assert!(out.contains("module mcf"), "{out}");
        assert!(out.contains("hier-jump"), "{out}");
    }

    #[test]
    fn target_errors_list_the_registry() {
        let Err(CliError::Usage(msg)) =
            run_capture(&["compare", "--bench", "mcf", "--target", "pdp11"])
        else {
            panic!("expected usage error");
        };
        assert!(msg.contains("unknown target `pdp11`"));
        for t in [
            "pa-risc-like",
            "x86-64-sysv",
            "aarch64-aapcs64",
            "riscv64-lp64",
        ] {
            assert!(msg.contains(t), "`{msg}` does not list `{t}`");
        }
    }

    #[test]
    fn tiny_target_with_bench_is_a_clean_error() {
        // `tiny` has one argument register; generated benchmarks need
        // two. This must surface as a CLI error, not a panic.
        let Err(CliError::Run(msg)) =
            run_capture(&["compare", "--bench", "mcf", "--target", "tiny"])
        else {
            panic!("expected run error");
        };
        assert!(msg.contains("argument register"), "unhelpful: {msg}");
    }

    #[test]
    fn list_benches_names_the_eleven() {
        let out = run_capture(&["list-benches"]).expect("list");
        assert!(out.lines().count() >= 11);
        assert!(out.contains("gzip") && out.contains("mcf"));
    }

    #[test]
    fn list_targets_names_the_backends() {
        let out = run_capture(&["list-targets"]).expect("list");
        assert!(out.lines().count() >= 4);
        for t in [
            "pa-risc-like",
            "x86-64-sysv",
            "aarch64-aapcs64",
            "riscv64-lp64",
        ] {
            assert!(out.contains(t), "missing target {t}");
        }
    }

    #[test]
    fn compare_renders_a_table() {
        let out = run_capture(&["compare", "--bench", "mcf", "--threads", "2"]).expect("compare");
        assert!(out.contains("module mcf"));
        assert!(out.contains("pa-risc-like"));
        assert!(out.contains("hier-jump"));
    }

    #[test]
    fn compare_accepts_a_concrete_target() {
        let out = run_capture(&[
            "compare",
            "--bench",
            "mcf",
            "--target",
            "x86-64-sysv",
            "--threads",
            "2",
        ])
        .expect("compare");
        assert!(out.contains("x86-64-sysv"));
    }

    #[test]
    fn report_is_json() {
        let out = run_capture(&["report", "--bench", "mcf", "--compact"]).expect("report");
        assert!(out.starts_with('{') && out.trim_end().ends_with('}'));
        assert!(out.contains(r#""module":"mcf""#));
        assert!(out.contains(r#""target":"pa-risc-like""#));
    }

    #[test]
    fn stress_usage_errors() {
        assert!(matches!(run_capture(&["stress"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_capture(&["stress", "--seeds", "abc"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["stress", "--seeds", "1", "--bench", "mcf"]),
            Err(CliError::Usage(_))
        ));
        let Err(CliError::Usage(msg)) =
            run_capture(&["stress", "--seeds", "1", "--target", "pdp11"])
        else {
            panic!("expected usage error");
        };
        assert!(msg.contains("unknown target `pdp11`"));
    }

    #[test]
    fn stress_smoke_runs_and_summarizes() {
        let out =
            run_capture(&["stress", "--seeds", "2", "--target", "pa-risc-like"]).expect("stress");
        assert!(out.contains("stress: 2 cases"), "{out}");
        assert!(out.contains("0 failure(s)"), "{out}");
        // Without --exact there is no gap line.
        assert!(!out.contains("exact ["), "{out}");
    }

    #[test]
    fn stress_exact_smoke_passes_the_gap_oracle() {
        let out = run_capture(&[
            "stress",
            "--seeds",
            "2",
            "--target",
            "pa-risc-like",
            "--exact",
        ])
        .expect("stress --exact");
        assert!(out.contains("0 failure(s)"), "{out}");
        assert!(out.contains("exact [pa-risc-like]"), "{out}");
        assert!(out.contains("certified"), "{out}");
    }

    #[test]
    fn stress_drift_smoke_runs_and_summarizes() {
        let out = run_capture(&[
            "stress",
            "--seeds",
            "2",
            "--target",
            "pa-risc-like",
            "--drift",
            "--drift-steps",
            "4",
        ])
        .expect("stress --drift");
        assert!(out.contains("drift: 2 cases"), "{out}");
        assert!(out.contains("4 step(s)"), "{out}");
        // base + 4 steps per case
        assert!(out.contains("10 checks"), "{out}");
        assert!(out.contains("0 failure(s)"), "{out}");
    }

    #[test]
    fn drift_usage_errors() {
        // --drift and --exact are mutually exclusive oracles.
        assert!(matches!(
            run_capture(&["stress", "--seeds", "1", "--drift", "--exact"]),
            Err(CliError::Usage(_))
        ));
        // --drift-steps needs --drift.
        assert!(matches!(
            run_capture(&["stress", "--seeds", "1", "--drift-steps", "4"]),
            Err(CliError::Usage(_))
        ));
        // gap never accepts the drift flags.
        assert!(matches!(
            run_capture(&["gap", "--seeds", "1", "--drift"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn exit_codes_are_distinct_by_failure_class() {
        assert_eq!(CliError::Run("x".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Degraded("x".into()).exit_code(), 3);
    }

    #[test]
    fn on_fault_and_budget_usage_errors() {
        // Unknown policy values are rejected with the accepted list.
        let Err(CliError::Usage(msg)) =
            run_capture(&["compare", "--bench", "mcf", "--on-fault", "retry"])
        else {
            panic!("expected usage error");
        };
        assert!(msg.contains("fail") && msg.contains("degrade") && msg.contains("skip"));
        // Budgets need numbers.
        assert!(matches!(
            run_capture(&["compare", "--bench", "mcf", "--budget-ms", "soon"]),
            Err(CliError::Usage(_))
        ));
        // The fault knobs need one concrete target: the cross-target
        // report has no ledger to keep the degraded exit honest.
        assert!(matches!(
            run_capture(&[
                "compare",
                "--bench",
                "mcf",
                "--target",
                "all",
                "--on-fault",
                "degrade",
            ]),
            Err(CliError::Usage(_))
        ));
        // `stats` keeps its frozen three-run protocol: no fault knobs.
        assert!(matches!(
            run_capture(&["stats", "--bench", "mcf", "--on-fault", "degrade"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn exhausted_budget_is_exit_one_under_fail_and_exit_three_under_degrade() {
        // A zero iteration cap trips in the Chow fixpoint. Under the
        // default `fail` policy that is a pipeline failure (exit 1)...
        let err = run_capture(&[
            "compare",
            "--bench",
            "mcf",
            "--threads",
            "1",
            "--budget-iters",
            "0",
        ])
        .expect_err("cap must trip");
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("budget exceeded"), "{err}");

        // ...and under `degrade` the run completes, emits its output,
        // and exits 3 with the ledger summarized.
        let err = run_capture(&[
            "compare",
            "--bench",
            "mcf",
            "--threads",
            "1",
            "--budget-iters",
            "0",
            "--on-fault",
            "degrade",
        ])
        .expect_err("degraded success is still a non-zero exit");
        let CliError::Degraded(msg) = &err else {
            panic!("expected degraded exit: {err}");
        };
        assert_eq!(err.exit_code(), 3);
        assert!(msg.contains("contained fault(s)"), "{msg}");
    }

    #[test]
    fn usage_documents_the_exit_codes() {
        let help = run_capture(&["--help"]).expect("help");
        assert!(help.contains("exit codes:"), "{help}");
        for needle in ["0 success", "3 degraded success", "--on-fault", "--faults"] {
            assert!(help.contains(needle), "help does not mention {needle}");
        }
    }

    #[test]
    fn stress_faults_smoke_runs_and_summarizes() {
        let out = run_capture(&[
            "stress",
            "--seeds",
            "6",
            "--target",
            "pa-risc-like",
            "--faults",
        ])
        .expect("stress --faults");
        assert!(out.contains("faults: 6 cases"), "{out}");
        assert!(out.contains("0 violation(s)"), "{out}");
    }

    #[test]
    fn faults_usage_errors() {
        // --faults is its own oracle, exclusive with --drift and --exact.
        assert!(matches!(
            run_capture(&["stress", "--seeds", "1", "--faults", "--drift"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["stress", "--seeds", "1", "--faults", "--exact"]),
            Err(CliError::Usage(_))
        ));
        // gap never accepts it.
        assert!(matches!(
            run_capture(&["gap", "--seeds", "1", "--faults"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn gap_flag_requires_exact_mode() {
        assert!(matches!(
            run_capture(&["stress", "--seeds", "1", "--gap", "10"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn gap_subcommand_usage_errors() {
        assert!(matches!(run_capture(&["gap"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_capture(&["gap", "--seeds", "1", "--exact"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn gap_subcommand_emits_the_per_target_report() {
        let out = run_capture(&["gap", "--seeds", "2", "--target", "pa-risc-like", "--json"])
            .expect("gap --json");
        for field in [
            "optimality_gap",
            "\"schema_version\"",
            "\"gap_percent\"",
            "pa-risc-like",
            "hier_jump_vs_jump_optimum",
            "max_gap_permille",
        ] {
            assert!(out.contains(field), "missing {field} in {out}");
        }
        // The human rendering is a table headed by the target column.
        let human = run_capture(&["gap", "--seeds", "1", "--target", "pa-risc-like"]).expect("gap");
        assert!(human.contains("certified"), "{human}");
        assert!(human.contains("pa-risc-like"), "{human}");
    }

    #[test]
    fn parse_errors_are_readable_with_line_numbers() {
        let dir = std::env::temp_dir().join("spillopt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-parse.ir");
        std::fs::write(
            &path,
            "module m\nfunc @f(0) {\nblock A:\n  v0 = frob v1, v2\n}\n",
        )
        .unwrap();
        let Err(CliError::Run(msg)) = run_capture(&["compare", "--input", path.to_str().unwrap()])
        else {
            panic!("expected run error");
        };
        // Display with the source line, not the Debug struct dump.
        assert!(msg.contains("line 4: unknown operation `frob`"), "{msg}");
        assert!(!msg.contains("ParseError"), "Debug-formatted: {msg}");
    }

    #[test]
    fn verify_errors_are_readable_with_line_numbers() {
        let dir = std::env::temp_dir().join("spillopt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-verify.ir");
        // Parses fine, but block B is unreachable.
        std::fs::write(
            &path,
            "module m\nfunc @f(0) {\nblock A:\n  ret\nblock B:\n  ret\n}\n",
        )
        .unwrap();
        let Err(CliError::Run(msg)) = run_capture(&["compare", "--input", path.to_str().unwrap()])
        else {
            panic!("expected run error");
        };
        assert!(msg.contains("does not verify"), "{msg}");
        assert!(msg.contains("line 5:"), "no line number: {msg}");
        assert!(msg.contains("unreachable from entry"), "{msg}");
        assert!(!msg.contains("Unreachable {"), "Debug-formatted: {msg}");
    }

    #[test]
    fn stats_renders_the_phase_table() {
        let out = run_capture(&["stats", "--bench", "mcf", "--threads", "1"]).expect("stats runs");
        assert!(out.contains("stats: mcf on pa-risc-like"), "{out}");
        for col in [
            "phase",
            "count",
            "total(ms)",
            "p50(ms)",
            "p95(ms)",
            "max(ms)",
        ] {
            assert!(out.contains(col), "missing column {col}: {out}");
        }
        assert!(out.contains("counters:"), "{out}");
        // The warm second run must have hit the session arena.
        assert!(!out.contains("arena: 0 hit(s)"), "no warm hits: {out}");
        // The third (drifted) run must have taken the incremental path
        // and reported its dirty-region ledger.
        assert!(!out.contains("/ 0 incremental /"), "no incremental: {out}");
        assert!(out.contains("dirty regions:"), "no ledger: {out}");
        assert!(
            !out.contains("dirty regions: 0 re-folded of 0"),
            "empty ledger: {out}"
        );
        assert!(
            out.contains("pool: serial (no persistent workers)"),
            "{out}"
        );
    }

    #[test]
    fn stats_usage_errors() {
        // One concrete target only, and no report-only flags.
        assert!(matches!(
            run_capture(&["stats", "--bench", "mcf", "--target", "all"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["stats", "--bench", "mcf", "--strategy", "baseline"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["stats", "--bench", "mcf", "--progress"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_flag_is_rejected_where_it_cannot_apply() {
        // `gap` emits its own JSON record; it has no --trace.
        assert!(matches!(
            run_capture(&["gap", "--seeds", "1", "--trace", "t.json"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn cross_target_report_has_comparison_section() {
        let out = run_capture(&[
            "report",
            "--bench",
            "mcf",
            "--target",
            "all",
            "--compact",
            "--threads",
            "2",
        ])
        .expect("report");
        assert!(out.contains(r#""cross_targets":"#));
        assert!(out.contains(r#""target":"aarch64-aapcs64""#));
        assert!(out.contains(r#""best_target":"#));
    }
}
