//! The `spillopt` command-line interface.
//!
//! ```text
//! spillopt optimize (--bench NAME | --input FILE) [--threads N] [--strategy S] [--out FILE]
//! spillopt compare  (--bench NAME | --input FILE) [--threads N] [--json]
//! spillopt report   (--bench NAME | --input FILE) [--threads N] [--compact] [--out FILE]
//! spillopt list-benches
//! ```
//!
//! * `optimize` emits the optimized module as IR text: every function
//!   register-allocated, save/restore code inserted under the chosen
//!   strategy (default: the per-function best).
//! * `compare` prints the four strategies side by side per function.
//! * `report` emits the full deterministic JSON report.
//!
//! Inputs are either a generated SPEC stand-in (`--bench`, profiled on
//! its training workload) or an IR text file (`--input`, profiled
//! synthetically). Argument parsing is hand-rolled: the surface is four
//! subcommands and six flags, not worth a dependency the offline build
//! would have to shim.

use crate::driver::{optimize_module, DriverConfig, ProfileSource, Strategy};
use spillopt_ir::{display, parse_module, Module, Target};
use std::io::Write;

/// Entry point for the binary: parses `std::env::args`, runs, maps
/// errors to stderr + exit code 1 (2 for usage errors).
pub fn run_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match run(&args, &mut stdout) {
        Ok(()) => 0,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}\n\n{USAGE}");
            2
        }
        Err(CliError::Run(msg)) => {
            eprintln!("spillopt: {msg}");
            1
        }
    }
}

const USAGE: &str = "\
usage:
  spillopt optimize (--bench NAME | --input FILE) [--threads N] [--strategy S] [--out FILE]
  spillopt compare  (--bench NAME | --input FILE) [--threads N] [--json]
  spillopt report   (--bench NAME | --input FILE) [--threads N] [--compact] [--out FILE]
  spillopt list-benches

strategies: baseline | shrinkwrap | hier-exec | hier-jump | best (default)
--threads 0 uses all cores (default); --threads 1 is the serial reference.";

/// A CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments (exit code 2, usage printed).
    Usage(String),
    /// Pipeline failure (exit code 1).
    Run(String),
}

/// Runs the CLI against `args`, writing primary output to `out`.
/// Factored from [`run_main`] so tests can drive it in-process.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut args = args.iter().map(String::as_str);
    let sub = args.next().ok_or_else(|| usage("missing subcommand"))?;
    let rest: Vec<&str> = args.collect();
    match sub {
        "optimize" => optimize(&parse_opts("optimize", &rest)?, out),
        "compare" => compare(&parse_opts("compare", &rest)?, out),
        "report" => report(&parse_opts("report", &rest)?, out),
        "list-benches" => {
            for spec in spillopt_benchgen::all_benchmarks() {
                writeln!(out, "{}", spec.name).map_err(io_err)?;
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        other => Err(usage(&format!("unknown subcommand `{other}`"))),
    }
}

fn usage(msg: &str) -> CliError {
    CliError::Usage(msg.to_string())
}

fn io_err(e: std::io::Error) -> CliError {
    CliError::Run(format!("write failed: {e}"))
}

/// Parsed flags shared by the three module subcommands.
struct Opts {
    bench: Option<String>,
    input: Option<String>,
    threads: usize,
    strategy: Option<Strategy>,
    out: Option<String>,
    json: bool,
    compact: bool,
}

/// The flags each subcommand accepts; anything else is rejected rather
/// than silently ignored.
fn allowed_flags(sub: &str) -> &'static [&'static str] {
    match sub {
        "optimize" => &["--bench", "--input", "--threads", "--strategy", "--out"],
        "compare" => &["--bench", "--input", "--threads", "--json"],
        "report" => &["--bench", "--input", "--threads", "--compact", "--out"],
        _ => &[],
    }
}

fn parse_opts(sub: &str, rest: &[&str]) -> Result<Opts, CliError> {
    let mut opts = Opts {
        bench: None,
        input: None,
        threads: 0,
        strategy: None,
        out: None,
        json: false,
        compact: false,
    };
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        if !allowed_flags(sub).contains(&flag) {
            return Err(usage(&format!(
                "`{sub}` does not accept `{flag}` (accepted: {})",
                allowed_flags(sub).join(", ")
            )));
        }
        let mut value = || {
            it.next()
                .copied()
                .ok_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag {
            "--bench" => opts.bench = Some(value()?.to_string()),
            "--input" => opts.input = Some(value()?.to_string()),
            "--threads" => {
                opts.threads = value()?
                    .parse()
                    .map_err(|_| usage("--threads needs a number"))?
            }
            "--strategy" => {
                let v = value()?;
                opts.strategy = match v {
                    "best" => None,
                    s => Some(
                        Strategy::parse(s)
                            .ok_or_else(|| usage(&format!("unknown strategy `{s}`")))?,
                    ),
                }
            }
            "--out" => opts.out = Some(value()?.to_string()),
            "--json" => opts.json = true,
            "--compact" => opts.compact = true,
            other => return Err(usage(&format!("unknown flag `{other}`"))),
        }
    }
    if opts.bench.is_some() == opts.input.is_some() {
        return Err(usage("exactly one of --bench or --input is required"));
    }
    Ok(opts)
}

/// Loads the module and its profile source.
fn load(opts: &Opts) -> Result<(Module, ProfileSource), CliError> {
    if let Some(name) = &opts.bench {
        let spec = spillopt_benchgen::benchmark_by_name(name)
            .ok_or_else(|| CliError::Run(format!("unknown benchmark `{name}` (see list-benches)")))?;
        let bench = spillopt_benchgen::build_bench(&spec, &Target::default());
        Ok((bench.module, ProfileSource::Workload(bench.train_runs)))
    } else {
        let path = opts.input.as_deref().expect("validated by parse_opts");
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Run(format!("cannot read `{path}`: {e}")))?;
        let module = parse_module(&text)
            .map_err(|e| CliError::Run(format!("parse error in `{path}`: {e:?}")))?;
        let errs = spillopt_ir::verify_module(&module, spillopt_ir::RegDiscipline::Virtual);
        if !errs.is_empty() {
            return Err(CliError::Run(format!(
                "`{path}` does not verify (virtual register discipline): {errs:?}"
            )));
        }
        Ok((module, ProfileSource::default()))
    }
}

fn drive(opts: &Opts) -> Result<crate::driver::ModuleRun, CliError> {
    let (module, profile) = load(opts)?;
    let config = DriverConfig {
        threads: opts.threads,
        profile,
    };
    optimize_module(&module, &Target::default(), &config)
        .map_err(|e| CliError::Run(e.to_string()))
}

/// Writes `text` to `--out` or the primary stream.
fn emit(opts: &Opts, out: &mut dyn Write, text: &str) -> Result<(), CliError> {
    match &opts.out {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| CliError::Run(format!("cannot write `{path}`: {e}"))),
        None => out.write_all(text.as_bytes()).map_err(io_err),
    }
}

fn optimize(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let run = drive(opts)?;
    let optimized = run.apply(opts.strategy);
    eprintln!(
        "optimized {}: {} functions, {} placed, speedup {}",
        run.report.module,
        run.report.functions.len(),
        run.report.placed_functions(),
        run.report
            .speedup()
            .map_or("n/a".to_string(), |x| format!("{x:.2}x"))
    );
    emit(opts, out, &display::module_to_string(&optimized))
}

fn compare(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let run = drive(opts)?;
    if opts.json {
        emit(opts, out, &(run.report.to_json().to_pretty() + "\n"))
    } else {
        emit(opts, out, &run.report.render_human())
    }
}

fn report(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let run = drive(opts)?;
    let json = run.report.to_json();
    let text = if opts.compact {
        json.to_compact() + "\n"
    } else {
        json.to_pretty() + "\n"
    };
    emit(opts, out, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run_capture(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_capture(&["compare"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["compare", "--bench", "mcf", "--input", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["optimize", "--bench", "mcf", "--strategy", "bogus"]),
            Err(CliError::Usage(_))
        ));
        // Flags that don't apply to the subcommand are rejected, not
        // silently ignored.
        assert!(matches!(
            run_capture(&["report", "--bench", "mcf", "--strategy", "baseline"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_capture(&["optimize", "--bench", "mcf", "--json"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn list_benches_names_the_eleven() {
        let out = run_capture(&["list-benches"]).expect("list");
        assert!(out.lines().count() >= 11);
        assert!(out.contains("gzip") && out.contains("mcf"));
    }

    #[test]
    fn compare_renders_a_table() {
        let out = run_capture(&["compare", "--bench", "mcf", "--threads", "2"]).expect("compare");
        assert!(out.contains("module mcf"));
        assert!(out.contains("hier-jump"));
    }

    #[test]
    fn report_is_json() {
        let out = run_capture(&["report", "--bench", "mcf", "--compact"]).expect("report");
        assert!(out.starts_with('{') && out.trim_end().ends_with('}'));
        assert!(out.contains(r#""module":"mcf""#));
    }
}
