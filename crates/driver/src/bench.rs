//! The perf-trajectory bench: `spillopt bench --json`.
//!
//! Times the module-scale `optimize` pipeline — current implementation
//! versus the frozen pre-rewrite reference ([`crate::refimpl`]) — over a
//! seeded, stress-generated corpus on every registered target, asserts
//! the two pipelines' [`crate::ModuleReport`]s are byte-identical, and emits a
//! machine-readable JSON record (`BENCH_PR4.json` at the repo root is
//! the first committed point of the trajectory).
//!
//! Timing discipline: the corpus is generated *outside* the timed
//! region; each arm runs `reps` times and reports the **minimum**
//! wall-clock total (the standard estimator for "how fast can this code
//! go" under scheduler noise); both arms run at the same thread count
//! (default 1, the deterministic serial schedule). The byte-equality
//! check runs once per target before any timing, so a report-shape
//! regression fails the bench regardless of speed.
//!
//! The current arm runs through the [`crate::Session`] facade — the
//! same path every consumer uses — with analysis reuse disabled
//! ([`crate::OptimizerBuilder::reuse_analyses`]`(false)`): the bench
//! times the cold pipeline, never arena lookups.
//!
//! After the timed arms, a separate **non-timed instrumented profiling
//! pass** re-runs the corpus under an active [`spillopt_obs`] recording
//! — once cold and once warm through an arena-enabled session, so the
//! trace carries both `arena_miss` and `arena_hit` counters. The timed
//! arms themselves always run with the recorder disabled (one relaxed
//! atomic load per probe); the pass feeds the `phases`/`counters`
//! sections of the JSON record and, via `spillopt bench --trace FILE`,
//! a Chrome Trace Event file.

use crate::driver::{DriverConfig, DriverError, ProfileSource};
use crate::json::Json;
use crate::refimpl::optimize_module_reference;
use crate::session::OptimizerBuilder;
use spillopt_ir::Module;
use spillopt_targets::{registry, TargetSpec};
use std::time::Instant;

/// Bench configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Minimum number of stress-generated functions in the corpus (cases
    /// are added whole until the floor is reached).
    pub functions: usize,
    /// Function-size multiplier passed to the stress generator
    /// ([`spillopt_stress::gen_case_scaled`]): the corpus keeps the
    /// stress subsystem's adversarial shapes at module-scale function
    /// sizes, where optimizer wall-clock actually matters.
    pub scale: u32,
    /// First generator seed.
    pub seed_start: u64,
    /// Timed repetitions per arm (minimum is reported).
    pub reps: usize,
    /// Worker threads for both arms (0 = available parallelism).
    pub threads: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            functions: 200,
            scale: 32,
            seed_start: 0,
            reps: 3,
            threads: 1,
        }
    }
}

impl BenchConfig {
    /// The CI smoke configuration: a small corpus, one rep — enough to
    /// exercise both pipelines and the equality gate on every PR.
    pub fn smoke() -> Self {
        BenchConfig {
            functions: 40,
            scale: 2,
            reps: 1,
            ..BenchConfig::default()
        }
    }
}

/// One target's measurements.
#[derive(Clone, Debug)]
pub struct TargetBench {
    /// Registry name.
    pub target: &'static str,
    /// Minimum wall-clock of the current pipeline over the corpus, in
    /// nanoseconds.
    pub current_ns: u128,
    /// Minimum wall-clock of the frozen reference pipeline, in
    /// nanoseconds.
    pub reference_ns: u128,
    /// `ModuleReport` JSON byte-equality between the two pipelines.
    pub reports_identical: bool,
}

/// The full bench outcome.
#[derive(Clone, Debug)]
pub struct BenchOutcome {
    /// Configuration the bench ran with.
    pub config: BenchConfig,
    /// Worker threads both arms actually ran with: the session's
    /// resolved pool size, not the raw configuration value (which may
    /// be the `0` = "available parallelism" default).
    pub threads: usize,
    /// Corpus shape: number of generated modules (cases).
    pub cases: usize,
    /// Corpus shape: number of functions across all cases.
    pub functions: usize,
    /// Per-target measurements, in registry order.
    pub targets: Vec<TargetBench>,
    /// Trace collected by the non-timed instrumented profiling pass
    /// (cold + warm arena runs over the same corpus). Feeds the
    /// `phases`/`counters` JSON sections and `--trace` output; never
    /// part of the timed arms.
    pub trace: spillopt_obs::Trace,
}

impl BenchOutcome {
    /// Total current-pipeline nanoseconds across targets.
    pub fn total_current_ns(&self) -> u128 {
        self.targets.iter().map(|t| t.current_ns).sum()
    }

    /// Total reference-pipeline nanoseconds across targets.
    pub fn total_reference_ns(&self) -> u128 {
        self.targets.iter().map(|t| t.reference_ns).sum()
    }

    /// Overall wall-clock speedup (reference / current).
    pub fn speedup(&self) -> f64 {
        self.total_reference_ns() as f64 / self.total_current_ns().max(1) as f64
    }

    /// `true` when every target's reports matched byte for byte.
    pub fn reports_identical(&self) -> bool {
        self.targets.iter().all(|t| t.reports_identical)
    }

    /// The JSON record (`BENCH_*.json` schema, version 2; version 2
    /// added the `phases`/`counters` profiling sections).
    pub fn to_json(&self) -> Json {
        let ms = |ns: u128| Json::Float(ns as f64 / 1e6);
        let metrics = self.trace.metrics();
        let mut phases = Vec::new();
        for p in &metrics.phases {
            phases.push(
                Json::obj()
                    .with("phase", Json::str(p.name))
                    .with("count", Json::UInt(p.count))
                    .with("total_ms", ms(p.total_ns as u128))
                    .with("p50_ms", ms(p.p50_ns as u128))
                    .with("p95_ms", ms(p.p95_ns as u128))
                    .with("max_ms", ms(p.max_ns as u128)),
            );
        }
        let mut counters = Json::obj();
        for (name, total) in &metrics.counters {
            counters = counters.with(name, Json::UInt(*total));
        }
        let mut targets = Vec::new();
        for t in &self.targets {
            targets.push(
                Json::obj()
                    .with("target", Json::str(t.target))
                    .with("optimize_ms", ms(t.current_ns))
                    .with("optimize_reference_ms", ms(t.reference_ns))
                    .with(
                        "speedup",
                        Json::Float(t.reference_ns as f64 / t.current_ns.max(1) as f64),
                    )
                    .with("reports_identical", Json::Bool(t.reports_identical)),
            );
        }
        Json::obj()
            .with("bench", Json::str("module_optimize"))
            .with("schema_version", Json::UInt(2))
            .with(
                "corpus",
                Json::obj()
                    .with("generator", Json::str("stress"))
                    .with("scale", Json::UInt(self.config.scale as u64))
                    .with("seed_start", Json::UInt(self.config.seed_start))
                    .with("cases", Json::UInt(self.cases as u64))
                    .with("functions", Json::UInt(self.functions as u64)),
            )
            .with("reps", Json::UInt(self.config.reps as u64))
            .with("threads", Json::UInt(self.threads as u64))
            .with("targets", Json::Array(targets))
            .with("total_optimize_ms", ms(self.total_current_ns()))
            .with("total_reference_ms", ms(self.total_reference_ns()))
            .with("speedup", Json::Float(self.speedup()))
            .with("reports_identical", Json::Bool(self.reports_identical()))
            .with("phases", Json::Array(phases))
            .with("counters", counters)
    }
}

/// Builds the deterministic bench corpus: whole stress cases from
/// consecutive seeds until at least `functions` functions are collected.
/// The generator is target-convention-aware, so the corpus is built per
/// target (same seeds everywhere).
pub fn corpus_for(spec: &TargetSpec, config: &BenchConfig) -> Vec<Module> {
    let target = spec.to_target();
    let mut modules = Vec::new();
    let mut functions = 0usize;
    let mut seed = config.seed_start;
    while functions < config.functions {
        let case = spillopt_stress::gen_case_scaled(&target, seed, config.scale);
        functions += case.module.num_funcs();
        modules.push(case.module);
        seed += 1;
    }
    modules
}

/// Runs the bench: equality gate first, then timed reps of each arm.
///
/// # Errors
///
/// Returns the first driver failure (a panicking pipeline or workload).
pub fn run_bench(config: &BenchConfig) -> Result<BenchOutcome, DriverError> {
    let specs = registry();
    let driver_config = DriverConfig {
        threads: config.threads,
        profile: ProfileSource::default(),
    };
    let mut targets = Vec::new();
    let mut corpus_cases = 0;
    let mut corpus_functions = 0;
    let mut effective_threads = config.threads;
    for spec in &specs {
        let corpus = corpus_for(spec, config);
        corpus_cases = corpus.len();
        corpus_functions = corpus.iter().map(|m| m.num_funcs()).sum();

        // The current arm runs through the session facade — the same
        // path every consumer uses — with analysis reuse OFF: the bench
        // times the cold pipeline, not arena lookups.
        let session = OptimizerBuilder::new()
            .target_spec(spec.clone())
            .threads(config.threads)
            .reuse_analyses(false)
            .build()?;
        // The session resolves `0` to the actual pool size; report that
        // (it is part of the record's provenance — wall-clock numbers
        // are meaningless without it).
        effective_threads = session.threads();

        // Equality gate: the rewrite must not have changed a single
        // byte of any report.
        let mut reports_identical = true;
        for module in &corpus {
            let current = session.optimize(module)?;
            let reference = optimize_module_reference(module, spec, &driver_config)?;
            if current.report.to_json().to_compact() != reference.report.to_json().to_compact() {
                reports_identical = false;
            }
        }

        let time_arm = |reference: bool| -> Result<u128, DriverError> {
            let mut best: Option<u128> = None;
            for _ in 0..config.reps.max(1) {
                let t = Instant::now();
                for module in &corpus {
                    if reference {
                        std::hint::black_box(&optimize_module_reference(
                            module,
                            spec,
                            &driver_config,
                        )?);
                    } else {
                        std::hint::black_box(&session.optimize(module)?);
                    };
                }
                let ns = t.elapsed().as_nanos();
                best = Some(best.map_or(ns, |b| b.min(ns)));
            }
            Ok(best.expect("at least one rep"))
        };
        let current_ns = time_arm(false)?;
        let reference_ns = time_arm(true)?;

        targets.push(TargetBench {
            target: spec.name,
            current_ns,
            reference_ns,
            reports_identical,
        });
    }

    // Non-timed instrumented profiling pass: the same corpus through an
    // arena-*enabled* session, cold then warm, under an active
    // recording. Cold runs populate the trace with `arena_miss` and
    // every core-phase span; warm runs add `arena_hit` lookups. This
    // pass is deliberately outside the timed region — its wall-clock
    // never touches the speedup numbers.
    let recording = spillopt_obs::Recording::start();
    for spec in &specs {
        let corpus = corpus_for(spec, config);
        let session = OptimizerBuilder::new()
            .target_spec(spec.clone())
            .threads(config.threads)
            .reuse_analyses(true)
            .build()?;
        for _ in 0..2 {
            for module in &corpus {
                std::hint::black_box(&session.optimize(module)?);
            }
        }
    }
    let trace = recording.finish();

    Ok(BenchOutcome {
        config: config.clone(),
        threads: effective_threads,
        cases: corpus_cases,
        functions: corpus_functions,
        targets,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke bench must hold the byte-equality gate and produce a
    /// well-formed record. (Speed itself is asserted by CI on the full
    /// corpus, not here — unit tests run in debug builds.)
    #[test]
    fn smoke_bench_reports_identical_and_shapes_json() {
        let outcome = run_bench(&BenchConfig {
            functions: 6,
            reps: 1,
            ..BenchConfig::smoke()
        })
        .expect("bench runs");
        assert!(outcome.reports_identical(), "pipelines diverged");
        assert!(outcome.functions >= 6);
        assert_eq!(outcome.targets.len(), registry().len());
        let json = outcome.to_json().to_compact();
        for field in [
            r#""bench":"module_optimize""#,
            r#""schema_version":2"#,
            r#""corpus""#,
            r#""speedup""#,
            r#""threads":1"#,
            r#""reports_identical":true"#,
            r#""phases":["#,
            r#""counters":{"#,
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // The profiling pass ran cold+warm with the arena on, so both
        // lookup outcomes and the core phases must appear. (Presence
        // checks only: the recorder is process-global, so a concurrent
        // test in this binary may add events — never remove them.)
        for counter in ["arena_hit", "arena_miss", "solver_fixpoint_iters"] {
            assert!(
                outcome
                    .trace
                    .counters
                    .iter()
                    .any(|(n, v)| *n == counter && *v > 0),
                "profiling pass missing counter {counter}"
            );
        }
        for phase in ["cfg", "liveness", "solver_fixpoint", "validate", "function"] {
            assert!(
                outcome.trace.spans.iter().any(|s| s.name == phase),
                "profiling pass missing phase span {phase}"
            );
        }
    }

    /// With the `0` = "available parallelism" default, the record must
    /// carry the session's *resolved* pool size — a `"threads":0` entry
    /// would make the wall-clock numbers unreproducible.
    #[test]
    fn json_reports_effective_thread_count() {
        let outcome = run_bench(&BenchConfig {
            functions: 2,
            scale: 1,
            reps: 1,
            threads: 0,
            ..BenchConfig::smoke()
        })
        .expect("bench runs");
        assert!(outcome.threads >= 1, "unresolved thread count");
        let json = outcome.to_json().to_compact();
        assert!(
            !json.contains(r#""threads":0"#),
            "effective thread count not serialized: {json}"
        );
        assert!(
            json.contains(&format!(r#""threads":{}"#, outcome.threads)),
            "threads field mismatch: {json}"
        );
    }
}
