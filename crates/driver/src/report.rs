//! Deterministic module-level reports: per-function placements, costs,
//! and speedups, with JSON and human-readable renderings.
//!
//! Everything in a report — including its serialized JSON bytes — is a
//! pure function of the input module and driver configuration. Thread
//! counts, wall-clock times, and machine details are deliberately
//! excluded so that a parallel run can be byte-compared against a serial
//! run (the driver's determinism test does exactly that).

use crate::driver::Strategy;
use crate::json::Json;
use spillopt_core::{Cost, Placement, SpillKind, SpillLoc};
use spillopt_ir::Cfg;
use std::fmt::Write as _;

/// Schema version stamped into [`ModuleReport`] and
/// [`CrossTargetReport`] JSON. Version history: the pre-session report
/// shape carried no version field at all; `2` is the session-API era
/// (`OptimizerBuilder`/`Session`), so downstream consumers can detect it
/// by the field's presence and pin exact shapes by its value.
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// One strategy's outcome on one function.
#[derive(Clone, Debug)]
pub struct StrategyReport {
    /// Which strategy.
    pub strategy: Strategy,
    /// Predicted dynamic cost under the jump-edge model (scaled by
    /// [`spillopt_core::COST_SCALE`]).
    pub cost: Cost,
    /// Number of save/restore instructions placed.
    pub static_count: usize,
    /// The placement itself.
    pub placement: Placement,
}

/// One function's outcome across all strategies.
#[derive(Clone, Debug)]
pub struct FunctionReport {
    /// Function index within the module.
    pub index: usize,
    /// Function name.
    pub name: String,
    /// Basic blocks.
    pub blocks: usize,
    /// Instructions after allocation, before placement.
    pub insts: usize,
    /// Virtual registers the allocator spilled to memory.
    pub spilled_vregs: usize,
    /// Callee-saved registers needing save/restore code.
    pub callee_saved: usize,
    /// Per-strategy outcomes (empty when no callee-saved register is
    /// used — nothing to place).
    pub strategies: Vec<StrategyReport>,
    /// Cheapest strategy (ties broken in [`Strategy::all`] order);
    /// `None` when nothing was placed.
    pub best: Option<Strategy>,
}

impl FunctionReport {
    /// This function's outcome under `strategy`.
    pub fn strategy(&self, strategy: Strategy) -> Option<&StrategyReport> {
        self.strategies.iter().find(|s| s.strategy == strategy)
    }

    /// The deterministic JSON rendering of this one function — the same
    /// object that appears in [`ModuleReport::to_json`]'s `functions`
    /// array. The fault-injection fuzzer byte-compares healthy
    /// functions against a fault-free run on exactly this.
    pub fn to_json(&self) -> Json {
        function_json(self)
    }

    /// Baseline cost / best cost; `None` when unplaced or unbounded.
    pub fn speedup(&self) -> Option<f64> {
        let base = self.strategy(Strategy::Baseline)?.cost;
        let best = self.strategy(self.best?)?.cost;
        if best == Cost::ZERO {
            return (base == Cost::ZERO).then_some(1.0);
        }
        Some(base.as_f64() / best.as_f64())
    }
}

/// The whole module's outcome.
#[derive(Clone, Debug)]
pub struct ModuleReport {
    /// Module name.
    pub module: String,
    /// Name of the backend target the module was optimized for.
    pub target: String,
    /// Per-function reports in function-index order.
    pub functions: Vec<FunctionReport>,
}

impl ModuleReport {
    /// Builds a report (functions must already be in index order).
    pub fn new(module: String, target: String, functions: Vec<FunctionReport>) -> Self {
        ModuleReport {
            module,
            target,
            functions,
        }
    }

    /// Functions that needed placement.
    pub fn placed_functions(&self) -> usize {
        self.functions
            .iter()
            .filter(|f| !f.strategies.is_empty())
            .count()
    }

    /// Sum of one strategy's predicted costs over the module.
    pub fn total_cost(&self, strategy: Strategy) -> Cost {
        self.functions
            .iter()
            .filter_map(|f| f.strategy(strategy).map(|s| s.cost))
            .sum()
    }

    /// Sum of the per-function best costs.
    pub fn best_total(&self) -> Cost {
        self.functions
            .iter()
            .filter_map(|f| f.best.and_then(|b| f.strategy(b)).map(|s| s.cost))
            .sum()
    }

    /// Module-level speedup of the per-function best over the baseline;
    /// `None` when the baseline was never computed (a technique subset
    /// that excludes it) — a zero-total for an uncomputed strategy is
    /// not a ratio.
    pub fn speedup(&self) -> Option<f64> {
        let placed = self.functions.iter().any(|f| !f.strategies.is_empty());
        let baseline_present = self
            .functions
            .iter()
            .any(|f| f.strategy(Strategy::Baseline).is_some());
        if placed && !baseline_present {
            return None;
        }
        let base = self.total_cost(Strategy::Baseline);
        let best = self.best_total();
        if best == Cost::ZERO {
            return (base == Cost::ZERO).then_some(1.0);
        }
        Some(base.as_f64() / best.as_f64())
    }

    /// The strategies this report actually computed: all of them when
    /// nothing was placed (zero totals are then accurate), otherwise
    /// exactly those appearing in some function report — so a
    /// technique-subset run never serializes an uncomputed strategy as
    /// a zero cost.
    pub fn computed_strategies(&self) -> Vec<Strategy> {
        let placed = self.functions.iter().any(|f| !f.strategies.is_empty());
        if !placed {
            return Strategy::all().to_vec();
        }
        Strategy::all()
            .into_iter()
            .filter(|s| self.functions.iter().any(|f| f.strategy(*s).is_some()))
            .collect()
    }

    /// The deterministic JSON rendering.
    pub fn to_json(&self) -> Json {
        let functions: Vec<Json> = self.functions.iter().map(function_json).collect();
        let mut totals = Json::obj();
        for s in self.computed_strategies() {
            totals = totals.with(s.name(), self.total_cost(s).raw());
        }
        Json::obj()
            .with("schema_version", REPORT_SCHEMA_VERSION)
            .with("module", self.module.as_str())
            .with("target", self.target.as_str())
            .with("functions", functions)
            .with("num_functions", self.functions.len())
            .with("placed_functions", self.placed_functions())
            .with("total_cost", totals)
            .with("best_total_cost", self.best_total().raw())
            .with("speedup", self.speedup().map_or(Json::Null, Json::Float))
    }

    /// The human-readable comparison table.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "module {} on {}: {} functions, {} with callee-saved placement",
            self.module,
            self.target,
            self.functions.len(),
            self.placed_functions()
        );
        let _ = writeln!(
            out,
            "{:<18} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12}  best",
            "function", "blocks", "regs", "baseline", "shrinkwrap", "hier-exec", "hier-jump"
        );
        for f in &self.functions {
            if f.strategies.is_empty() {
                let _ = writeln!(
                    out,
                    "{:<18} {:>7} {:>6} {:>12}",
                    truncated(&f.name),
                    f.blocks,
                    0,
                    "-"
                );
                continue;
            }
            let _ = write!(
                out,
                "{:<18} {:>7} {:>6}",
                truncated(&f.name),
                f.blocks,
                f.callee_saved
            );
            for s in Strategy::all() {
                match f.strategy(s) {
                    Some(r) => {
                        let _ = write!(out, " {:>12.1}", r.cost.as_f64());
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            let best = f.best.map_or("-", Strategy::name);
            match f.speedup() {
                Some(x) => {
                    let _ = writeln!(out, "  {best} ({x:.2}x)");
                }
                None => {
                    let _ = writeln!(out, "  {best}");
                }
            }
        }
        let _ = write!(
            out,
            "module totals: baseline {:.1}, best {:.1}",
            self.total_cost(Strategy::Baseline).as_f64(),
            self.best_total().as_f64()
        );
        match self.speedup() {
            Some(x) => {
                let _ = writeln!(out, " ({x:.2}x speedup)");
            }
            None => {
                let _ = writeln!(out);
            }
        }
        out
    }
}

fn truncated(name: &str) -> String {
    if name.chars().count() <= 18 {
        name.to_string()
    } else {
        let head: String = name.chars().take(17).collect();
        format!("{head}…")
    }
}

fn function_json(f: &FunctionReport) -> Json {
    let strategies: Vec<Json> = f
        .strategies
        .iter()
        .map(|s| {
            Json::obj()
                .with("strategy", s.strategy.name())
                .with("cost", s.cost.raw())
                .with("static_count", s.static_count)
                .with("placement", placement_json(&s.placement))
        })
        .collect();
    Json::obj()
        .with("index", f.index)
        .with("name", f.name.as_str())
        .with("blocks", f.blocks)
        .with("insts", f.insts)
        .with("spilled_vregs", f.spilled_vregs)
        .with("callee_saved", f.callee_saved)
        .with("strategies", strategies)
        .with("best", f.best.map_or(Json::Null, |b| Json::str(b.name())))
        .with("speedup", f.speedup().map_or(Json::Null, Json::Float))
}

/// Renders a placement without CFG context (edge ids are stable and
/// meaningful within the report).
fn placement_json(p: &Placement) -> Json {
    let points: Vec<Json> = p
        .points()
        .iter()
        .map(|pt| {
            Json::obj()
                .with("reg", pt.reg.to_string())
                .with(
                    "kind",
                    match pt.kind {
                        SpillKind::Save => "save",
                        SpillKind::Restore => "restore",
                    },
                )
                .with("loc", pt.loc.to_string())
        })
        .collect();
    Json::Array(points)
}

/// One module optimized for every registered backend target: the
/// cross-target comparison the paper could not run.
///
/// Like [`ModuleReport`], everything here — including the JSON bytes —
/// is a pure function of the inputs, independent of thread count.
#[derive(Clone, Debug)]
pub struct CrossTargetReport {
    /// Per-target spec and full module report, in registry order.
    pub targets: Vec<(spillopt_targets::TargetSpec, ModuleReport)>,
}

impl CrossTargetReport {
    /// Builds the report (targets must already be in registry order).
    pub fn new(targets: Vec<(spillopt_targets::TargetSpec, ModuleReport)>) -> Self {
        CrossTargetReport { targets }
    }

    /// The module name (same module on every target).
    pub fn module(&self) -> &str {
        self.targets.first().map_or("", |(_, r)| r.module.as_str())
    }

    /// The target whose per-function-best speedup over its own baseline
    /// is largest — where hierarchical placement pays off most.
    pub fn best_target(&self) -> Option<&str> {
        self.targets
            .iter()
            .filter_map(|(s, r)| r.speedup().map(|x| (s.name, x)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(name, _)| name)
    }

    /// The deterministic JSON rendering: a `cross_targets` section of
    /// per-target summaries plus each target's full module report.
    pub fn to_json(&self) -> Json {
        let summaries: Vec<Json> = self
            .targets
            .iter()
            .map(|(spec, r)| {
                let mut totals = Json::obj();
                for s in r.computed_strategies() {
                    totals = totals.with(s.name(), r.total_cost(s).raw());
                }
                Json::obj()
                    .with("target", spec.name)
                    .with("callee_saved", spec.callee_saved.len())
                    .with("caller_saved", spec.caller_saved.len())
                    .with("pair_size", spec.costs.pair_size as u64)
                    .with("stack_align", spec.stack_align as u64)
                    .with("placed_functions", r.placed_functions())
                    .with("total_cost", totals)
                    .with("best_total_cost", r.best_total().raw())
                    .with("speedup", r.speedup().map_or(Json::Null, Json::Float))
            })
            .collect();
        let reports: Vec<Json> = self.targets.iter().map(|(_, r)| r.to_json()).collect();
        Json::obj()
            .with("schema_version", REPORT_SCHEMA_VERSION)
            .with("module", self.module())
            .with("cross_targets", summaries)
            .with(
                "best_target",
                self.best_target().map_or(Json::Null, Json::str),
            )
            .with("reports", reports)
    }

    /// The human-readable cross-target table.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "module {} across {} targets",
            self.module(),
            self.targets.len()
        );
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>5} {:>14} {:>14} {:>14} {:>14}  speedup",
            "target", "csave", "pair", "baseline", "shrinkwrap", "hier-exec", "hier-jump"
        );
        for (spec, r) in &self.targets {
            let _ = write!(
                out,
                "{:<18} {:>6} {:>5}",
                spec.name,
                spec.callee_saved.len(),
                spec.costs.pair_size
            );
            for s in Strategy::all() {
                let _ = write!(out, " {:>14.1}", r.total_cost(s).as_f64());
            }
            match r.speedup() {
                Some(x) => {
                    let _ = writeln!(out, "  {x:.2}x");
                }
                None => {
                    let _ = writeln!(out, "  -");
                }
            }
        }
        if let Some(best) = self.best_target() {
            let _ = writeln!(out, "largest optimized win: {best}");
        }
        out
    }
}

/// Renders a placement with `from -> to` edge endpoints resolved against
/// a CFG (used by the CLI's verbose output).
pub fn placement_text(p: &Placement, cfg: &Cfg) -> String {
    let mut out = String::new();
    for pt in p.points() {
        let loc = match pt.loc {
            SpillLoc::BlockTop(b) => format!("top of {b}"),
            SpillLoc::BlockBottom(b) => format!("bottom of {b}"),
            SpillLoc::OnEdge(e) => {
                let edge = cfg.edge(e);
                format!("edge {} -> {}", edge.from, edge.to)
            }
        };
        let kind = match pt.kind {
            SpillKind::Save => "save",
            SpillKind::Restore => "restore",
        };
        let _ = writeln!(out, "  {kind} {} @ {loc}", pt.reg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_module_report_is_well_formed() {
        let r = ModuleReport::new("empty".into(), "pa-risc-like".into(), Vec::new());
        assert_eq!(r.speedup(), Some(1.0));
        let json = r.to_json().to_compact();
        assert!(json.contains(r#""module":"empty""#));
        assert!(json.contains(r#""target":"pa-risc-like""#));
        assert!(json.contains(r#""speedup":1"#));
    }

    /// A technique subset that excludes the baseline must not report a
    /// bogus 0.00x speedup (`total_cost` of an uncomputed strategy is
    /// zero, which is not a ratio).
    #[test]
    fn speedup_is_none_when_baseline_was_not_computed() {
        let f = FunctionReport {
            index: 0,
            name: "f".into(),
            blocks: 1,
            insts: 1,
            spilled_vregs: 0,
            callee_saved: 1,
            strategies: vec![StrategyReport {
                strategy: Strategy::HierJump,
                cost: Cost::from_count(5),
                static_count: 2,
                placement: Placement::new(),
            }],
            best: Some(Strategy::HierJump),
        };
        assert_eq!(f.speedup(), None);
        let r = ModuleReport::new("m".into(), "pa-risc-like".into(), vec![f]);
        assert_eq!(r.speedup(), None);
        let json = r.to_json().to_compact();
        assert!(json.contains(r#""speedup":null"#));
        // Uncomputed strategies must not serialize as zero totals.
        assert!(!json.contains(r#""baseline":0"#), "{json}");
        assert!(json.contains(r#""hier-jump":"#), "{json}");
    }

    /// Downstream consumers detect the session-API era by this field:
    /// both report kinds must carry `schema_version`.
    #[test]
    fn reports_carry_the_schema_version() {
        let r = ModuleReport::new("m".into(), "pa-risc-like".into(), Vec::new());
        let expected = format!(r#""schema_version":{REPORT_SCHEMA_VERSION}"#);
        assert!(
            r.to_json()
                .to_compact()
                .starts_with(&format!("{{{expected}")),
            "ModuleReport JSON missing schema_version: {}",
            r.to_json().to_compact()
        );
        let x = CrossTargetReport::new(vec![(spillopt_targets::pa_risc_like(), r)]);
        let json = x.to_json().to_compact();
        assert!(
            json.starts_with(&format!("{{{expected}")),
            "CrossTargetReport JSON missing schema_version: {json}"
        );
    }

    #[test]
    fn cross_target_report_renders() {
        let specs = spillopt_targets::registry();
        let targets: Vec<_> = specs
            .into_iter()
            .take(2)
            .map(|s| {
                let name = s.name.to_string();
                (s, ModuleReport::new("m".into(), name, Vec::new()))
            })
            .collect();
        let x = CrossTargetReport::new(targets);
        assert_eq!(x.module(), "m");
        let json = x.to_json().to_compact();
        assert!(json.contains(r#""cross_targets":"#));
        assert!(json.contains(r#""target":"pa-risc-like""#));
        assert!(x.render_human().contains("across 2 targets"));
    }
}
