//! Deterministic module-level reports: per-function placements, costs,
//! and speedups, with JSON and human-readable renderings.
//!
//! Everything in a report — including its serialized JSON bytes — is a
//! pure function of the input module and driver configuration. Thread
//! counts, wall-clock times, and machine details are deliberately
//! excluded so that a parallel run can be byte-compared against a serial
//! run (the driver's determinism test does exactly that).

use crate::driver::Strategy;
use crate::json::Json;
use spillopt_core::{Cost, Placement, SpillKind, SpillLoc};
use spillopt_ir::Cfg;
use std::fmt::Write as _;

/// One strategy's outcome on one function.
#[derive(Clone, Debug)]
pub struct StrategyReport {
    /// Which strategy.
    pub strategy: Strategy,
    /// Predicted dynamic cost under the jump-edge model (scaled by
    /// [`spillopt_core::COST_SCALE`]).
    pub cost: Cost,
    /// Number of save/restore instructions placed.
    pub static_count: usize,
    /// The placement itself.
    pub placement: Placement,
}

/// One function's outcome across all strategies.
#[derive(Clone, Debug)]
pub struct FunctionReport {
    /// Function index within the module.
    pub index: usize,
    /// Function name.
    pub name: String,
    /// Basic blocks.
    pub blocks: usize,
    /// Instructions after allocation, before placement.
    pub insts: usize,
    /// Virtual registers the allocator spilled to memory.
    pub spilled_vregs: usize,
    /// Callee-saved registers needing save/restore code.
    pub callee_saved: usize,
    /// Per-strategy outcomes (empty when no callee-saved register is
    /// used — nothing to place).
    pub strategies: Vec<StrategyReport>,
    /// Cheapest strategy (ties broken in [`Strategy::all`] order);
    /// `None` when nothing was placed.
    pub best: Option<Strategy>,
}

impl FunctionReport {
    /// This function's outcome under `strategy`.
    pub fn strategy(&self, strategy: Strategy) -> Option<&StrategyReport> {
        self.strategies.iter().find(|s| s.strategy == strategy)
    }

    /// Baseline cost / best cost; `None` when unplaced or unbounded.
    pub fn speedup(&self) -> Option<f64> {
        let base = self.strategy(Strategy::Baseline)?.cost;
        let best = self.strategy(self.best?)?.cost;
        if best == Cost::ZERO {
            return (base == Cost::ZERO).then_some(1.0);
        }
        Some(base.as_f64() / best.as_f64())
    }
}

/// The whole module's outcome.
#[derive(Clone, Debug)]
pub struct ModuleReport {
    /// Module name.
    pub module: String,
    /// Per-function reports in function-index order.
    pub functions: Vec<FunctionReport>,
}

impl ModuleReport {
    /// Builds a report (functions must already be in index order).
    pub fn new(module: String, functions: Vec<FunctionReport>) -> Self {
        ModuleReport { module, functions }
    }

    /// Functions that needed placement.
    pub fn placed_functions(&self) -> usize {
        self.functions.iter().filter(|f| !f.strategies.is_empty()).count()
    }

    /// Sum of one strategy's predicted costs over the module.
    pub fn total_cost(&self, strategy: Strategy) -> Cost {
        self.functions
            .iter()
            .filter_map(|f| f.strategy(strategy).map(|s| s.cost))
            .sum()
    }

    /// Sum of the per-function best costs.
    pub fn best_total(&self) -> Cost {
        self.functions
            .iter()
            .filter_map(|f| f.best.and_then(|b| f.strategy(b)).map(|s| s.cost))
            .sum()
    }

    /// Module-level speedup of the per-function best over the baseline.
    pub fn speedup(&self) -> Option<f64> {
        let base = self.total_cost(Strategy::Baseline);
        let best = self.best_total();
        if best == Cost::ZERO {
            return (base == Cost::ZERO).then_some(1.0);
        }
        Some(base.as_f64() / best.as_f64())
    }

    /// The deterministic JSON rendering.
    pub fn to_json(&self) -> Json {
        let functions: Vec<Json> = self.functions.iter().map(function_json).collect();
        let mut totals = Json::obj();
        for s in Strategy::all() {
            totals = totals.with(s.name(), self.total_cost(s).raw());
        }
        Json::obj()
            .with("module", self.module.as_str())
            .with("functions", functions)
            .with("num_functions", self.functions.len())
            .with("placed_functions", self.placed_functions())
            .with("total_cost", totals)
            .with("best_total_cost", self.best_total().raw())
            .with("speedup", self.speedup().map_or(Json::Null, Json::Float))
    }

    /// The human-readable comparison table.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "module {}: {} functions, {} with callee-saved placement",
            self.module,
            self.functions.len(),
            self.placed_functions()
        );
        let _ = writeln!(
            out,
            "{:<18} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12}  {}",
            "function", "blocks", "regs", "baseline", "shrinkwrap", "hier-exec", "hier-jump", "best"
        );
        for f in &self.functions {
            if f.strategies.is_empty() {
                let _ = writeln!(
                    out,
                    "{:<18} {:>7} {:>6} {:>12}",
                    truncated(&f.name),
                    f.blocks,
                    0,
                    "-"
                );
                continue;
            }
            let _ = write!(out, "{:<18} {:>7} {:>6}", truncated(&f.name), f.blocks, f.callee_saved);
            for s in Strategy::all() {
                match f.strategy(s) {
                    Some(r) => {
                        let _ = write!(out, " {:>12.1}", r.cost.as_f64());
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            let best = f.best.map_or("-", Strategy::name);
            match f.speedup() {
                Some(x) => {
                    let _ = writeln!(out, "  {best} ({x:.2}x)");
                }
                None => {
                    let _ = writeln!(out, "  {best}");
                }
            }
        }
        let _ = write!(
            out,
            "module totals: baseline {:.1}, best {:.1}",
            self.total_cost(Strategy::Baseline).as_f64(),
            self.best_total().as_f64()
        );
        match self.speedup() {
            Some(x) => {
                let _ = writeln!(out, " ({x:.2}x speedup)");
            }
            None => {
                let _ = writeln!(out);
            }
        }
        out
    }
}

fn truncated(name: &str) -> String {
    if name.chars().count() <= 18 {
        name.to_string()
    } else {
        let head: String = name.chars().take(17).collect();
        format!("{head}…")
    }
}

fn function_json(f: &FunctionReport) -> Json {
    let strategies: Vec<Json> = f
        .strategies
        .iter()
        .map(|s| {
            Json::obj()
                .with("strategy", s.strategy.name())
                .with("cost", s.cost.raw())
                .with("static_count", s.static_count)
                .with("placement", placement_json(&s.placement))
        })
        .collect();
    Json::obj()
        .with("index", f.index)
        .with("name", f.name.as_str())
        .with("blocks", f.blocks)
        .with("insts", f.insts)
        .with("spilled_vregs", f.spilled_vregs)
        .with("callee_saved", f.callee_saved)
        .with("strategies", strategies)
        .with("best", f.best.map_or(Json::Null, |b| Json::str(b.name())))
        .with("speedup", f.speedup().map_or(Json::Null, Json::Float))
}

/// Renders a placement without CFG context (edge ids are stable and
/// meaningful within the report).
fn placement_json(p: &Placement) -> Json {
    let points: Vec<Json> = p
        .points()
        .iter()
        .map(|pt| {
            Json::obj()
                .with("reg", pt.reg.to_string())
                .with(
                    "kind",
                    match pt.kind {
                        SpillKind::Save => "save",
                        SpillKind::Restore => "restore",
                    },
                )
                .with("loc", pt.loc.to_string())
        })
        .collect();
    Json::Array(points)
}

/// Renders a placement with `from -> to` edge endpoints resolved against
/// a CFG (used by the CLI's verbose output).
pub fn placement_text(p: &Placement, cfg: &Cfg) -> String {
    let mut out = String::new();
    for pt in p.points() {
        let loc = match pt.loc {
            SpillLoc::BlockTop(b) => format!("top of {b}"),
            SpillLoc::BlockBottom(b) => format!("bottom of {b}"),
            SpillLoc::OnEdge(e) => {
                let edge = cfg.edge(e);
                format!("edge {} -> {}", edge.from, edge.to)
            }
        };
        let kind = match pt.kind {
            SpillKind::Save => "save",
            SpillKind::Restore => "restore",
        };
        let _ = writeln!(out, "  {kind} {} @ {loc}", pt.reg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_module_report_is_well_formed() {
        let r = ModuleReport::new("empty".into(), Vec::new());
        assert_eq!(r.speedup(), Some(1.0));
        let json = r.to_json().to_compact();
        assert!(json.contains(r#""module":"empty""#));
        assert!(json.contains(r#""speedup":1"#));
    }
}
