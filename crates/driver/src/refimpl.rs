//! The frozen pre-rewrite module pipeline, for the perf-trajectory
//! bench.
//!
//! [`optimize_module_reference`] reproduces the per-function pipeline
//! exactly as it ran before the word-parallel/dense overhaul, by calling
//! the retired implementations each crate keeps verbatim:
//!
//! * synthetic profiles via
//!   [`spillopt_profile::random_walk_profile_reference`];
//! * register allocation via [`spillopt_regalloc::allocate_reference`]
//!   (reference liveness, interference build, and coloring);
//! * callee-saved usage from the reference liveness;
//! * the PST via [`spillopt_pst::Pst::compute_reference`] (reference
//!   dominator machinery, no preorder arena);
//! * the placement suite via
//!   [`spillopt_core::reference::run_suite_priced_reference`]
//!   (per-register Chow fixpoints, hash-keyed hierarchical bookkeeping,
//!   hash-map share/cost accounting, per-register validation).
//!
//! Its [`ModuleReport`] is byte-identical to
//! [`crate::driver::optimize_module_for`]'s — the rewrite changed *how*
//! the answers are computed, never the answers — which `spillopt bench`
//! asserts on every run before it reports the wall-clock ratio. Keeping
//! the baseline executable (instead of a number in a README) makes the
//! speedup reproducible on any machine, forever.

use crate::driver::{DriverConfig, DriverError, ModuleRun, ProfileSource, Strategy};
use crate::report::{FunctionReport, ModuleReport, StrategyReport};
use spillopt_core::reference::run_suite_priced_reference;
use spillopt_core::{CalleeSavedUsage, Placement, SpillCostModel};
use spillopt_ir::analysis::loops::sccs;
use spillopt_ir::{Cfg, FuncId, Function, Liveness, Module, Target};
use spillopt_profile::{random_walk_profile_reference, EdgeProfile, Machine};
use spillopt_pst::Pst;
use spillopt_regalloc::allocate_reference;
use spillopt_targets::TargetSpec;

/// As [`crate::driver::optimize_module_for`], running the frozen
/// reference pipeline end to end (serial; the bench times both arms at
/// the same thread count).
pub fn optimize_module_reference(
    module: &Module,
    spec: &TargetSpec,
    config: &DriverConfig,
) -> Result<ModuleRun, DriverError> {
    let target = spec.to_target();
    let costs = spec.costs;
    // Stage 1 (serial): training profiles, if a workload is given.
    let profiles: Vec<Option<EdgeProfile>> = match &config.profile {
        ProfileSource::Workload(runs) => {
            let mut vm = Machine::new(module, &target);
            vm.set_fuel(1 << 30);
            for (f, args) in runs {
                vm.call(*f, args).map_err(DriverError::Workload)?;
            }
            module
                .func_ids()
                .map(|f| Some(vm.edge_profile(f)))
                .collect()
        }
        ProfileSource::Synthetic { .. } => module.func_ids().map(|_| None).collect(),
        // The reference pipeline predates (and never participates in)
        // the incremental re-profiling path, but explicit profiles are
        // still valid inputs: use them as given.
        ProfileSource::Profiles(profiles) => profiles.iter().cloned().map(Some).collect(),
    };

    let items: Vec<(FuncId, Option<EdgeProfile>)> = module.func_ids().zip(profiles).collect();
    let outcomes = crate::pool::try_run_indexed(items, config.threads, |index, (fid, profile)| {
        let mut func = module.func(fid).clone();
        let profile = profile.unwrap_or_else(|| {
            let ProfileSource::Synthetic {
                walks,
                max_steps,
                seed,
            } = &config.profile
            else {
                unreachable!("workload profiles are precomputed")
            };
            let cfg = Cfg::compute(&func);
            random_walk_profile_reference(
                &cfg,
                *walks,
                *max_steps,
                seed ^ (index as u64).wrapping_mul(0x9e37_79b9),
            )
        });
        let alloc = allocate_reference(&mut func, &target, Some(&profile));
        let (report, placements) =
            per_function_reference(fid, &func, &target, &costs, profile, alloc.spilled_vregs);
        (report, (func, placements))
    })
    .map_err(|p| DriverError::Panicked {
        unit: module.func(FuncId::from_index(p.index)).name().to_string(),
        message: p.message(),
    })?;

    let (reports, allocated): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    Ok(ModuleRun::from_parts(
        ModuleReport::new(
            module.name().to_string(),
            target.name().to_string(),
            reports,
        ),
        allocated,
        Vec::new(),
    ))
}

/// One function through the frozen pipeline (reference analyses +
/// reference suite).
fn per_function_reference(
    fid: FuncId,
    func: &Function,
    target: &Target,
    costs: &SpillCostModel,
    profile: EdgeProfile,
    spilled_vregs: usize,
) -> (FunctionReport, Vec<(Strategy, Placement)>) {
    let cfg = Cfg::compute(func);
    let liveness = Liveness::compute_reference(func, &cfg, target);
    let usage = CalleeSavedUsage::from_liveness(func, target, &liveness);
    let insts = func.block_ids().map(|b| func.block(b).insts.len()).sum();
    let mut report = FunctionReport {
        index: fid.index(),
        name: func.name().to_string(),
        blocks: func.num_blocks(),
        insts,
        spilled_vregs,
        callee_saved: usage.num_regs(),
        strategies: Vec::new(),
        best: None,
    };
    if usage.is_empty() {
        return (report, Vec::new());
    }

    let cyclic = sccs(&cfg);
    let pst = Pst::compute_reference(&cfg);
    let suite = run_suite_priced_reference(&cfg, &cyclic, &pst, &usage, &profile, costs);
    let placements = [
        (Strategy::Baseline, suite.entry_exit),
        (Strategy::Shrinkwrap, suite.chow),
        (Strategy::HierExec, suite.hierarchical_exec.placement),
        (Strategy::HierJump, suite.hierarchical_jump.placement),
    ];
    for ((strategy, placement), cost) in placements.iter().zip(suite.predicted) {
        report.strategies.push(StrategyReport {
            strategy: *strategy,
            cost,
            static_count: placement.static_count(),
            placement: placement.clone(),
        });
    }
    report.best = Some(
        report
            .strategies
            .iter()
            .min_by_key(|s| s.cost)
            .expect("four strategies")
            .strategy,
    );
    (report, placements.to_vec())
}
