//! The module-scale optimization driver.
//!
//! For each function of a module this runs the full per-procedure
//! pipeline — profile, Chaitin/Briggs allocation, one shared
//! [`AnalysisCache`], then **all four** placement techniques against the
//! cached analyses via [`spillopt_core::run_suite_with`] — and folds the
//! results into a deterministic [`ModuleReport`]. Functions are
//! processed on the work-stealing pool ([`crate::pool`]); the report
//! (including its JSON serialization) is bit-identical for every thread
//! count.

use crate::cache::AnalysisCache;
use crate::pool::try_run_indexed;
use crate::report::{CrossTargetReport, FunctionReport, ModuleReport, StrategyReport};
use spillopt_core::{insert_placement, run_suite_analyzed, Placement, SpillCostModel};
use spillopt_ir::{Cfg, FuncId, Function, Module, RegDiscipline, Target};
use spillopt_profile::{random_walk_profile, EdgeProfile, ExecError, Machine};
use spillopt_regalloc::allocate;
use spillopt_targets::TargetSpec;

/// The placement strategies the driver compares, in reporting order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Save at entry, restore at exits (the paper's *Baseline*).
    Baseline,
    /// Chow's shrink-wrapping (the paper's *Shrinkwrap*).
    Shrinkwrap,
    /// Hierarchical placement under the execution-count model.
    HierExec,
    /// Hierarchical placement under the jump-edge model (the paper's
    /// *Optimized* — never worse than Baseline or Shrinkwrap).
    HierJump,
}

impl Strategy {
    /// All strategies, in reporting order.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::Baseline,
            Strategy::Shrinkwrap,
            Strategy::HierExec,
            Strategy::HierJump,
        ]
    }

    /// Stable identifier (used in JSON and on the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Baseline => "baseline",
            Strategy::Shrinkwrap => "shrinkwrap",
            Strategy::HierExec => "hier-exec",
            Strategy::HierJump => "hier-jump",
        }
    }

    /// Parses a CLI identifier.
    pub fn parse(s: &str) -> Option<Strategy> {
        Strategy::all().into_iter().find(|t| t.name() == s)
    }
}

/// Where each function's edge profile comes from.
#[derive(Clone, Debug)]
pub enum ProfileSource {
    /// Execute a training workload on the interpreter and measure.
    Workload(Vec<(FuncId, Vec<i64>)>),
    /// Deterministic synthetic random-walk profiles (for bare modules
    /// parsed from text, which carry no workload).
    Synthetic {
        /// Number of walks from the entry block.
        walks: u64,
        /// Step bound per walk.
        max_steps: u64,
        /// Base seed; function index is mixed in per function.
        seed: u64,
    },
}

impl Default for ProfileSource {
    fn default() -> Self {
        ProfileSource::Synthetic {
            walks: 256,
            max_steps: 512,
            seed: 0xC0DE,
        }
    }
}

/// Driver configuration.
#[derive(Clone, Debug, Default)]
pub struct DriverConfig {
    /// Worker threads; `0` = available parallelism, `1` = serial.
    pub threads: usize,
    /// Profile source.
    pub profile: ProfileSource,
}

/// A driver failure.
#[derive(Debug)]
pub enum DriverError {
    /// The training workload crashed or ran out of fuel.
    Workload(ExecError),
    /// A cross-target loader could not produce the module for a target.
    Load(String),
    /// One function's optimization pipeline panicked. The pool catches
    /// worker panics (they would otherwise poison its mutexes and
    /// resurface on other threads as opaque `PoisonError` unwraps), and
    /// the driver names the failing unit instead.
    Panicked {
        /// The function (or target, for cross-target fan-outs) whose
        /// pipeline died.
        unit: String,
        /// The panic message.
        message: String,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Workload(e) => write!(f, "training workload failed: {e}"),
            DriverError::Load(msg) => write!(f, "module load failed: {msg}"),
            DriverError::Panicked { unit, message } => {
                write!(f, "optimization pipeline panicked in `{unit}`: {message}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// The driver's full output: the deterministic report plus the allocated
/// functions and placements needed to materialize an optimized module.
#[derive(Debug)]
pub struct ModuleRun {
    /// Deterministic module-level report.
    pub report: ModuleReport,
    /// Allocated (physical, pre-placement) functions, in [`FuncId`]
    /// order, paired with each strategy's placement.
    allocated: Vec<(Function, Vec<(Strategy, Placement)>)>,
}

impl ModuleRun {
    /// Assembles a run from its parts (the reference pipeline in
    /// [`crate::refimpl`] builds the same structure).
    pub(crate) fn from_parts(
        report: ModuleReport,
        allocated: Vec<(Function, Vec<(Strategy, Placement)>)>,
    ) -> Self {
        ModuleRun { report, allocated }
    }

    /// Materializes the optimized module: inserts each function's
    /// placement under `choice` (`None` = the per-function best) and
    /// verifies the result.
    ///
    /// # Panics
    ///
    /// Panics if an inserted function fails physical-discipline
    /// verification — a pipeline bug, never an input condition.
    pub fn apply(&self, choice: Option<Strategy>) -> Module {
        let mut out = Module::new(self.report.module.clone());
        for (i, (func, placements)) in self.allocated.iter().enumerate() {
            let mut func = func.clone();
            let strategy = choice
                .unwrap_or_else(|| self.report.functions[i].best.unwrap_or(Strategy::HierJump));
            if let Some((_, placement)) = placements.iter().find(|(s, _)| *s == strategy) {
                let cfg = Cfg::compute(&func);
                insert_placement(&mut func, &cfg, placement);
            }
            let errs = spillopt_ir::verify_function(&func, RegDiscipline::Physical);
            assert!(
                errs.is_empty(),
                "optimized `{}` invalid: {errs:?}",
                func.name()
            );
            out.add_func(func);
        }
        out
    }
}

/// Runs the driver over `module`.
///
/// Profiling (when [`ProfileSource::Workload`]) executes serially — the
/// interpreter observes whole-module state — then every function is
/// allocated, analyzed once, and placed under all four strategies in
/// parallel on the work-stealing pool.
pub fn optimize_module(
    module: &Module,
    target: &Target,
    config: &DriverConfig,
) -> Result<ModuleRun, DriverError> {
    optimize_module_priced(module, target, &SpillCostModel::UNIT, config)
}

/// As [`optimize_module`], for a registered backend target: the
/// allocatable set comes from the spec's convention and every placement
/// decision and predicted cost uses the spec's [`SpillCostModel`].
pub fn optimize_module_for(
    module: &Module,
    spec: &TargetSpec,
    config: &DriverConfig,
) -> Result<ModuleRun, DriverError> {
    optimize_module_priced(module, &spec.to_target(), &spec.costs, config)
}

fn optimize_module_priced(
    module: &Module,
    target: &Target,
    costs: &SpillCostModel,
    config: &DriverConfig,
) -> Result<ModuleRun, DriverError> {
    // Stage 1 (serial): training profiles, if a workload is given.
    let profiles: Vec<Option<EdgeProfile>> = match &config.profile {
        ProfileSource::Workload(runs) => {
            let mut vm = Machine::new(module, target);
            vm.set_fuel(1 << 30);
            for (f, args) in runs {
                vm.call(*f, args).map_err(DriverError::Workload)?;
            }
            module
                .func_ids()
                .map(|f| Some(vm.edge_profile(f)))
                .collect()
        }
        ProfileSource::Synthetic { .. } => module.func_ids().map(|_| None).collect(),
    };

    // Stage 2 (parallel): per-function allocate → cache → all strategies.
    let items: Vec<(FuncId, Option<EdgeProfile>)> = module.func_ids().zip(profiles).collect();
    let outcomes = try_run_indexed(items, config.threads, |index, (fid, profile)| {
        let mut func = module.func(fid).clone();
        let profile = profile.unwrap_or_else(|| {
            let ProfileSource::Synthetic {
                walks,
                max_steps,
                seed,
            } = &config.profile
            else {
                unreachable!("workload profiles are precomputed")
            };
            let cfg = Cfg::compute(&func);
            random_walk_profile(
                &cfg,
                *walks,
                *max_steps,
                seed ^ (index as u64).wrapping_mul(0x9e37_79b9),
            )
        });
        let alloc = allocate(&mut func, target, Some(&profile));
        let (report, placements) =
            per_function(fid, &func, target, costs, profile, alloc.spilled_vregs);
        (report, (func, placements))
    })
    .map_err(|p| DriverError::Panicked {
        unit: module.func(FuncId::from_index(p.index)).name().to_string(),
        message: p.message(),
    })?;

    let (reports, allocated): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    Ok(ModuleRun {
        report: ModuleReport::new(
            module.name().to_string(),
            target.name().to_string(),
            reports,
        ),
        allocated,
    })
}

/// Runs the whole pipeline across every given target and collects the
/// per-target reports into one [`CrossTargetReport`].
///
/// `load` builds the module *and its profile source* for a target —
/// generated benchmarks lower against the target's convention, so each
/// target gets its own build (there is deliberately no module-wide
/// profile parameter). Targets fan out on the work-stealing pool
/// (`threads` workers); each target's module is then processed serially
/// within its worker, which keeps the total parallelism bounded and the
/// report a pure function of the inputs — byte-identical for every
/// thread count.
pub fn cross_target_runs(
    specs: &[TargetSpec],
    threads: usize,
    load: impl Fn(&TargetSpec) -> Result<(Module, ProfileSource), DriverError> + Sync,
) -> Result<CrossTargetReport, DriverError> {
    let items: Vec<&TargetSpec> = specs.iter().collect();
    let outcomes = try_run_indexed(items, threads, |_, spec| {
        let (module, profile) = load(spec)?;
        let config = DriverConfig {
            threads: 1,
            profile,
        };
        let run = optimize_module_for(&module, spec, &config)?;
        Ok((spec.clone(), run.report))
    })
    .map_err(|p| DriverError::Panicked {
        unit: specs[p.index].name.to_string(),
        message: p.message(),
    })?;
    let mut targets = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        targets.push(outcome?);
    }
    Ok(CrossTargetReport::new(targets))
}

/// Runs all four strategies for one allocated function against one
/// shared [`AnalysisCache`] and summarizes them. Functions that use no
/// callee-saved register return before any lazy analysis (SCCs, PST) is
/// built.
fn per_function(
    fid: FuncId,
    func: &Function,
    target: &Target,
    costs: &SpillCostModel,
    profile: EdgeProfile,
    spilled_vregs: usize,
) -> (FunctionReport, Vec<(Strategy, Placement)>) {
    let cache = AnalysisCache::compute(func, target, profile);
    let insts = func.block_ids().map(|b| func.block(b).insts.len()).sum();
    let mut report = FunctionReport {
        index: fid.index(),
        name: func.name().to_string(),
        blocks: func.num_blocks(),
        insts,
        spilled_vregs,
        callee_saved: cache.usage.num_regs(),
        strategies: Vec::new(),
        best: None,
    };
    if !cache.needs_placement() {
        return (report, Vec::new());
    }

    let suite = run_suite_analyzed(
        &cache.cfg,
        cache.derived(),
        cache.cyclic(),
        cache.pst(),
        &cache.usage,
        &cache.profile,
        costs,
    );
    let placements = [
        (Strategy::Baseline, suite.entry_exit),
        (Strategy::Shrinkwrap, suite.chow),
        (Strategy::HierExec, suite.hierarchical_exec.placement),
        (Strategy::HierJump, suite.hierarchical_jump.placement),
    ];
    for ((strategy, placement), cost) in placements.iter().zip(suite.predicted) {
        report.strategies.push(StrategyReport {
            strategy: *strategy,
            cost,
            static_count: placement.static_count(),
            placement: placement.clone(),
        });
    }
    report.best = Some(
        report
            .strategies
            .iter()
            .min_by_key(|s| s.cost)
            .expect("four strategies")
            .strategy,
    );
    (report, placements.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_benchgen::{benchmark_by_name, build_bench};

    fn small_bench_module() -> (Module, Vec<(FuncId, Vec<i64>)>, Target) {
        let target = Target::default();
        let spec = benchmark_by_name("mcf").expect("known benchmark");
        let bench = build_bench(&spec, &target);
        (bench.module, bench.train_runs, target)
    }

    #[test]
    fn workload_and_synthetic_profiles_both_run() {
        let (module, runs, target) = small_bench_module();
        let with_workload = optimize_module(
            &module,
            &target,
            &DriverConfig {
                threads: 1,
                profile: ProfileSource::Workload(runs),
            },
        )
        .expect("driver");
        let synthetic =
            optimize_module(&module, &target, &DriverConfig::default()).expect("driver");
        assert_eq!(with_workload.report.functions.len(), module.num_funcs());
        assert_eq!(synthetic.report.functions.len(), module.num_funcs());
    }

    #[test]
    fn best_is_never_beaten_and_apply_verifies() {
        let (module, runs, target) = small_bench_module();
        let run = optimize_module(
            &module,
            &target,
            &DriverConfig {
                threads: 2,
                profile: ProfileSource::Workload(runs),
            },
        )
        .expect("driver");
        for f in &run.report.functions {
            if let Some(best) = f.best {
                let best_cost = f.strategy(best).unwrap().cost;
                for s in &f.strategies {
                    assert!(best_cost <= s.cost, "{}: best beaten", f.name);
                }
            }
        }
        let optimized = run.apply(None);
        assert_eq!(optimized.num_funcs(), module.num_funcs());
    }
}
