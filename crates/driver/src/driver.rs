//! The module-scale driver's shared types — and the deprecated
//! free-function entry points the [`crate::session`] facade replaces.
//!
//! The pipeline itself (profile → Chaitin/Briggs allocation → one shared
//! [`crate::cache::AnalysisCache`] → every selected placement technique
//! via [`spillopt_core::run_suite`]) lives in `crate::session`; build an
//! [`crate::OptimizerBuilder`] and call [`crate::Session::optimize`].
//! The free functions kept here (`optimize_module`,
//! `optimize_module_for`, `cross_target_runs`) are thin `#[deprecated]`
//! shims over the same engine — byte-identical output, one release of
//! grace.

use crate::pool::try_run_indexed;
use crate::report::{CrossTargetReport, ModuleReport};
use crate::session::{run_module, Budget, Engine, Exec, FailurePolicy, TechniqueSet};
use spillopt_core::{insert_placement, Placement, SpillCostModel};
use spillopt_ir::{Cfg, FuncId, Function, Module, RegDiscipline, Target};
use spillopt_profile::ExecError;
use spillopt_targets::TargetSpec;

/// The placement strategies the driver compares, in reporting order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Save at entry, restore at exits (the paper's *Baseline*).
    Baseline,
    /// Chow's shrink-wrapping (the paper's *Shrinkwrap*).
    Shrinkwrap,
    /// Hierarchical placement under the execution-count model.
    HierExec,
    /// Hierarchical placement under the jump-edge model (the paper's
    /// *Optimized* — never worse than Baseline or Shrinkwrap).
    HierJump,
}

impl Strategy {
    /// All strategies, in reporting order.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::Baseline,
            Strategy::Shrinkwrap,
            Strategy::HierExec,
            Strategy::HierJump,
        ]
    }

    /// Stable identifier (used in JSON and on the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Baseline => "baseline",
            Strategy::Shrinkwrap => "shrinkwrap",
            Strategy::HierExec => "hier-exec",
            Strategy::HierJump => "hier-jump",
        }
    }

    /// Parses a stable identifier.
    pub fn parse(s: &str) -> Option<Strategy> {
        Strategy::all().into_iter().find(|t| t.name() == s)
    }
}

/// Where each function's edge profile comes from.
#[derive(Clone, Debug)]
pub enum ProfileSource {
    /// Execute a training workload on the interpreter and measure. The
    /// `FuncId`s name functions of **one specific module** — a session
    /// carrying a workload must only optimize that module (runs naming
    /// out-of-range functions are rejected; `optimize_many` over more
    /// than one module rejects workload sessions outright).
    Workload(Vec<(FuncId, Vec<i64>)>),
    /// Deterministic synthetic random-walk profiles (for bare modules
    /// parsed from text, which carry no workload).
    Synthetic {
        /// Number of walks from the entry block.
        walks: u64,
        /// Step bound per walk.
        max_steps: u64,
        /// Base seed; function index is mixed in per function.
        seed: u64,
    },
    /// Explicit measured per-function edge profiles, indexed by function
    /// index — the re-profiling path ([`crate::Session::optimize_profiled`]
    /// builds this per call). Like a workload, the vector is positional
    /// over **one specific module's** functions: length or per-function
    /// edge-count mismatches are rejected, and `optimize_many` over more
    /// than one module rejects profile sessions outright.
    Profiles(Vec<spillopt_profile::EdgeProfile>),
}

impl Default for ProfileSource {
    fn default() -> Self {
        ProfileSource::Synthetic {
            walks: 256,
            max_steps: 512,
            seed: 0xC0DE,
        }
    }
}

/// Configuration of the deprecated free-function entry points (the
/// session facade carries the same knobs on [`crate::OptimizerBuilder`];
/// the frozen reference pipeline in [`crate::refimpl`] still reads
/// this).
#[derive(Clone, Debug, Default)]
pub struct DriverConfig {
    /// Worker threads; `0` = available parallelism, `1` = serial.
    pub threads: usize,
    /// Profile source.
    pub profile: ProfileSource,
}

/// A driver failure.
#[derive(Debug)]
pub enum DriverError {
    /// The training workload crashed or ran out of fuel.
    Workload(ExecError),
    /// A cross-target loader could not produce the module for a target.
    Load(String),
    /// The builder rejected its configuration (unknown target name,
    /// malformed convention, empty technique set, or a method that needs
    /// a different target shape).
    Config(String),
    /// A technique produced a placement that failed validity checking —
    /// a bug in the placement passes, surfaced structurally (naming the
    /// function and technique) instead of as a panic unwinding through
    /// the pool's panic catcher.
    InvalidPlacement {
        /// The function whose placement is invalid.
        function: String,
        /// The reporting name of the technique (`baseline`,
        /// `shrinkwrap`, `hier-exec`, `hier-jump`).
        technique: &'static str,
        /// The validity violations, rendered.
        detail: String,
    },
    /// One function's optimization pipeline panicked. The pool catches
    /// worker panics (they would otherwise poison its mutexes and
    /// resurface on other threads as opaque `PoisonError` unwraps), and
    /// the driver names the failing unit instead.
    Panicked {
        /// The function (or target, for cross-target fan-outs) whose
        /// pipeline died.
        unit: String,
        /// The panic message.
        message: String,
    },
    /// A function blew through the session's cooperative [`Budget`]
    /// (wall-clock deadline or solver-iteration cap). Under
    /// [`FailurePolicy::Fail`] this surfaces here; under `Degrade`/`Skip`
    /// it is caught and recorded in the fault ledger instead.
    BudgetExceeded {
        /// The function whose pipeline exceeded the budget.
        function: String,
        /// The probe site (phase) whose budget check tripped.
        phase: &'static str,
    },
    /// A user-supplied [`crate::Observer`] callback panicked. This is a
    /// fault of the observer, not of the function's pipeline, so it is
    /// reported distinctly (naming the observer and callback) and is
    /// never degraded or attributed to the function.
    ObserverPanicked {
        /// The observer's [`crate::Observer::name`].
        observer: String,
        /// Which callback panicked (`function_retired` or `module_done`).
        callback: &'static str,
        /// The panic message.
        message: String,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Workload(e) => write!(f, "training workload failed: {e}"),
            DriverError::Load(msg) => write!(f, "module load failed: {msg}"),
            DriverError::Config(msg) => write!(f, "invalid optimizer configuration: {msg}"),
            DriverError::InvalidPlacement {
                function,
                technique,
                detail,
            } => write!(
                f,
                "`{technique}` produced an invalid placement in `{function}`: {detail}"
            ),
            DriverError::Panicked { unit, message } => {
                write!(f, "optimization pipeline panicked in `{unit}`: {message}")
            }
            DriverError::BudgetExceeded { function, phase } => {
                write!(f, "budget exceeded in `{function}` during `{phase}`")
            }
            DriverError::ObserverPanicked {
                observer,
                callback,
                message,
            } => write!(
                f,
                "observer `{observer}` panicked in `{callback}`: {message}"
            ),
        }
    }
}

impl std::error::Error for DriverError {}

/// What went wrong with one function, as recorded in the fault ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The pipeline panicked (caught and contained).
    Panic,
    /// A technique produced a placement that failed validity checking.
    InvalidPlacement,
    /// The cooperative budget tripped (deadline or iteration cap).
    BudgetExceeded,
    /// The function was skipped without an attempt: a quarantined repeat
    /// offender sitting out its backoff window.
    Quarantined,
}

impl FaultKind {
    /// Stable identifier (used in ledger rendering and the fuzzer).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::InvalidPlacement => "invalid-placement",
            FaultKind::BudgetExceeded => "budget-exceeded",
            FaultKind::Quarantined => "quarantined",
        }
    }
}

/// How the session resolved a contained fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// A lower rung of the guarantee chain succeeded; the function
    /// retired with that single strategy.
    Degraded {
        /// The strategy that rescued the function.
        to: Strategy,
    },
    /// Every rung failed (or the policy was [`FailurePolicy::Skip`], or
    /// the function was quarantined): the function passed through
    /// unoptimized.
    Skipped,
}

/// One entry of the per-run fault ledger: a function whose full pipeline
/// failed under [`FailurePolicy::Degrade`] or [`FailurePolicy::Skip`],
/// with the original error preserved.
#[derive(Clone, Debug)]
pub struct FunctionFault {
    /// The function's name.
    pub function: String,
    /// The function's index in the module.
    pub index: usize,
    /// What failed.
    pub kind: FaultKind,
    /// The original error, rendered.
    pub error: String,
    /// How the session resolved it.
    pub action: FaultAction,
}

impl std::fmt::Display for FunctionFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let action = match self.action {
            FaultAction::Degraded { to } => format!("degraded to {}", to.name()),
            FaultAction::Skipped => "skipped (unoptimized passthrough)".to_string(),
        };
        write!(
            f,
            "`{}` [{}] {}: {}",
            self.function,
            self.kind.name(),
            action,
            self.error
        )
    }
}

/// The driver's full output: the deterministic report plus the allocated
/// functions and placements needed to materialize an optimized module.
#[derive(Debug)]
pub struct ModuleRun {
    /// Deterministic module-level report.
    pub report: ModuleReport,
    /// Allocated (physical, pre-placement) functions, in [`FuncId`]
    /// order, paired with each selected strategy's placement.
    allocated: Vec<(Function, Vec<(Strategy, Placement)>)>,
    /// Fault ledger: functions contained under `Degrade`/`Skip`, in
    /// [`FuncId`] order. Empty under [`FailurePolicy::Fail`] and on
    /// clean runs.
    faults: Vec<FunctionFault>,
}

impl ModuleRun {
    /// Assembles a run from its parts (the session engine and the
    /// reference pipeline in [`crate::refimpl`] build the same
    /// structure).
    pub(crate) fn from_parts(
        report: ModuleReport,
        allocated: Vec<(Function, Vec<(Strategy, Placement)>)>,
        faults: Vec<FunctionFault>,
    ) -> Self {
        ModuleRun {
            report,
            allocated,
            faults,
        }
    }

    /// The fault ledger: one entry per function whose full pipeline
    /// failed and was contained (degraded, skipped, or quarantined).
    /// Empty on clean runs and under [`FailurePolicy::Fail`].
    pub fn faults(&self) -> &[FunctionFault] {
        &self.faults
    }

    /// Materializes the optimized module: inserts each function's
    /// placement under `choice` (`None` = the per-function best) and
    /// verifies the result. Functions the fault ledger marks as skipped
    /// are emitted unmodified (they were never optimized).
    ///
    /// # Panics
    ///
    /// Panics if `choice` names a strategy this run did not compute
    /// (it was outside the session's `TechniqueSet`) — silently
    /// emitting the function without save/restore code would violate
    /// the calling convention — or if an inserted function fails
    /// physical-discipline verification (a pipeline bug, never an
    /// input condition).
    pub fn apply(&self, choice: Option<Strategy>) -> Module {
        let mut out = Module::new(self.report.module.clone());
        for (i, (func, placements)) in self.allocated.iter().enumerate() {
            // A fault-skipped function passed through unoptimized: its
            // stored function is the *source* (possibly still in virtual
            // registers, never allocated), so it is emitted as-is rather
            // than placed and held to the physical discipline.
            let skipped = self
                .faults
                .iter()
                .any(|fault| fault.index == i && fault.action == FaultAction::Skipped);
            if skipped {
                out.add_func(func.clone());
                continue;
            }
            let mut func = func.clone();
            let strategy = choice
                .unwrap_or_else(|| self.report.functions[i].best.unwrap_or(Strategy::HierJump));
            if let Some((_, placement)) = placements.iter().find(|(s, _)| *s == strategy) {
                let cfg = Cfg::compute(&func);
                insert_placement(&mut func, &cfg, placement);
            } else if !placements.is_empty() {
                // The function needed placement but this strategy was
                // not computed (not in the session's technique set).
                panic!(
                    "strategy `{}` was not computed for `{}` in this run (computed: {})",
                    strategy.name(),
                    func.name(),
                    placements
                        .iter()
                        .map(|(s, _)| s.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            let errs = spillopt_ir::verify_function(&func, RegDiscipline::Physical);
            assert!(
                errs.is_empty(),
                "optimized `{}` invalid: {errs:?}",
                func.name()
            );
            out.add_func(func);
        }
        out
    }
}

/// Runs the driver over `module` under the paper's unit cost model.
///
/// # Errors
///
/// Returns the first driver failure.
#[deprecated(
    since = "0.2.0",
    note = "build an `OptimizerBuilder` and call `Session::optimize`"
)]
pub fn optimize_module(
    module: &Module,
    target: &Target,
    config: &DriverConfig,
) -> Result<ModuleRun, DriverError> {
    let engine = Engine {
        target,
        costs: &SpillCostModel::UNIT,
        profile_source: &config.profile,
        techniques: TechniqueSet::ALL,
        exec: Exec::Transient(config.threads),
        arena: None,
        observer: None,
        policy: FailurePolicy::Fail,
        budget: Budget::none(),
    };
    run_module(module, &engine)
}

/// As [`optimize_module`], for a registered backend target: the
/// allocatable set comes from the spec's convention and every placement
/// decision and predicted cost uses the spec's [`SpillCostModel`].
///
/// # Errors
///
/// Returns the first driver failure.
#[deprecated(
    since = "0.2.0",
    note = "build an `OptimizerBuilder` with `target_spec` and call `Session::optimize`"
)]
pub fn optimize_module_for(
    module: &Module,
    spec: &TargetSpec,
    config: &DriverConfig,
) -> Result<ModuleRun, DriverError> {
    let target = spec.to_target();
    let engine = Engine {
        target: &target,
        costs: &spec.costs,
        profile_source: &config.profile,
        techniques: TechniqueSet::ALL,
        exec: Exec::Transient(config.threads),
        arena: None,
        observer: None,
        policy: FailurePolicy::Fail,
        budget: Budget::none(),
    };
    run_module(module, &engine)
}

/// Runs the whole pipeline across every given target and collects the
/// per-target reports into one [`CrossTargetReport`].
///
/// # Errors
///
/// Returns the first per-target driver failure.
#[deprecated(
    since = "0.2.0",
    note = "build an `OptimizerBuilder` with `all_targets` and call `Session::cross_target`"
)]
pub fn cross_target_runs(
    specs: &[TargetSpec],
    threads: usize,
    load: impl Fn(&TargetSpec) -> Result<(Module, ProfileSource), DriverError> + Sync,
) -> Result<CrossTargetReport, DriverError> {
    let items: Vec<&TargetSpec> = specs.iter().collect();
    let outcomes = try_run_indexed(items, threads, |_, spec| {
        let (module, profile) = load(spec)?;
        let target = spec.to_target();
        let engine = Engine {
            target: &target,
            costs: &spec.costs,
            profile_source: &profile,
            techniques: TechniqueSet::ALL,
            exec: Exec::Transient(1),
            arena: None,
            observer: None,
            policy: FailurePolicy::Fail,
            budget: Budget::none(),
        };
        run_module(&module, &engine).map(|run| (spec.clone(), run.report))
    })
    .map_err(|p| DriverError::Panicked {
        unit: specs[p.index].name.to_string(),
        message: p.message(),
    })?;
    let mut targets = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        targets.push(outcome?);
    }
    Ok(CrossTargetReport::new(targets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::OptimizerBuilder;
    use spillopt_benchgen::{benchmark_by_name, build_bench};

    fn small_bench_module() -> (Module, Vec<(FuncId, Vec<i64>)>, Target) {
        let target = Target::default();
        let spec = benchmark_by_name("mcf").expect("known benchmark");
        let bench = build_bench(&spec, &target);
        (bench.module, bench.train_runs, target)
    }

    #[test]
    fn workload_and_synthetic_profiles_both_run() {
        let (module, runs, target) = small_bench_module();
        let with_workload = OptimizerBuilder::new()
            .target(target.clone())
            .threads(1)
            .profile(ProfileSource::Workload(runs))
            .build()
            .expect("valid")
            .optimize(&module)
            .expect("driver");
        let synthetic = OptimizerBuilder::new()
            .target(target)
            .threads(1)
            .build()
            .expect("valid")
            .optimize(&module)
            .expect("driver");
        assert_eq!(with_workload.report.functions.len(), module.num_funcs());
        assert_eq!(synthetic.report.functions.len(), module.num_funcs());
    }

    #[test]
    fn best_is_never_beaten_and_apply_verifies() {
        let (module, runs, target) = small_bench_module();
        let run = OptimizerBuilder::new()
            .target(target)
            .threads(2)
            .profile(ProfileSource::Workload(runs))
            .build()
            .expect("valid")
            .optimize(&module)
            .expect("driver");
        for f in &run.report.functions {
            if let Some(best) = f.best {
                let best_cost = f.strategy(best).unwrap().cost;
                for s in &f.strategies {
                    assert!(best_cost <= s.cost, "{}: best beaten", f.name);
                }
            }
        }
        let optimized = run.apply(None);
        assert_eq!(optimized.num_funcs(), module.num_funcs());
    }

    #[test]
    fn invalid_placement_error_is_structured() {
        let err = DriverError::InvalidPlacement {
            function: "f".to_string(),
            technique: Strategy::HierJump.name(),
            detail: "r11 busy in b2 but not saved".to_string(),
        };
        let rendered = err.to_string();
        assert!(rendered.contains("hier-jump"), "{rendered}");
        assert!(rendered.contains("`f`"), "{rendered}");
        assert!(rendered.contains("busy in b2"), "{rendered}");
    }
}
