//! Per-function analysis cache: every CFG-derived analysis the placement
//! techniques (and their consumers) need, computed at most once.
//!
//! Running the four techniques naively costs four analysis recomputations
//! per function — Chow re-runs SCC detection, each hierarchical variant
//! re-builds the PST, and callers typically recompute the CFG around all
//! of them. At module scale that waste dominates: the placements
//! themselves are near-linear, and so is every analysis here. The cache
//! makes the sharing explicit, and [`spillopt_core::run_suite`] consumes
//! it without any recomputation through its borrowed-analysis inputs
//! ([`spillopt_core::SuiteInputs::analyzed`]).
//!
//! Only the CFG, the profile, liveness, and the callee-saved usage are
//! computed eagerly — they decide whether a function needs placement at
//! all (and usage is derived from the liveness, which is computed once
//! and shared). Everything else (SCCs, PST, the dense [`DerivedCfg`]
//! tables, dominators, post-dominators, loops) is built lazily on first
//! access, so the many functions that use no callee-saved register
//! ([`AnalysisCache::needs_placement`] returns `false`) pay for none of
//! it.

use spillopt_core::CalleeSavedUsage;
use spillopt_ir::analysis::loops::{sccs, CyclicRegion};
use spillopt_ir::{
    BlockDoms, BlockPostDoms, Cfg, DerivedCfg, Function, Liveness, LoopInfo, Target,
};
use spillopt_profile::EdgeProfile;
use spillopt_pst::Pst;
use spillopt_sync::OnceLock;

/// All shared analyses of one (physical, post-allocation) function.
#[derive(Debug)]
pub struct AnalysisCache {
    /// CFG snapshot with fall-through/jump edge classification.
    pub cfg: Cfg,
    /// Edge profile pricing every candidate location.
    pub profile: EdgeProfile,
    /// Which callee-saved registers are busy in which blocks.
    pub usage: CalleeSavedUsage,
    /// Liveness, computed once and shared (usage derivation consumes it
    /// eagerly; later consumers reuse the same result).
    liveness: Liveness,
    cyclic: OnceLock<Vec<CyclicRegion>>,
    pst: OnceLock<Pst>,
    derived: OnceLock<DerivedCfg>,
    doms: OnceLock<BlockDoms>,
    postdoms: OnceLock<BlockPostDoms>,
    loops: OnceLock<LoopInfo>,
}

impl AnalysisCache {
    /// Builds the cache for `func` against `profile`, computing only the
    /// CFG, liveness, and callee-saved usage up front.
    ///
    /// The profile must refer to `func`'s current CFG (edge ids are
    /// stable across register allocation, so a profile measured on the
    /// virtual function is valid for the allocated one).
    pub fn compute(func: &Function, target: &Target, profile: EdgeProfile) -> Self {
        let cfg = {
            let _s = spillopt_obs::span("cfg");
            Cfg::compute(func)
        };
        let liveness = {
            let _s = spillopt_obs::span("liveness");
            Liveness::compute(func, &cfg, target)
        };
        let usage = {
            let _s = spillopt_obs::span("callee_saved_usage");
            CalleeSavedUsage::from_liveness(func, target, &liveness)
        };
        AnalysisCache {
            cfg,
            profile,
            usage,
            liveness,
            cyclic: OnceLock::new(),
            pst: OnceLock::new(),
            derived: OnceLock::new(),
            doms: OnceLock::new(),
            postdoms: OnceLock::new(),
            loops: OnceLock::new(),
        }
    }

    /// Whether any callee-saved register is used at all (functions where
    /// none is need no placement pass — and, thanks to lazy analyses, no
    /// analysis work either).
    pub fn needs_placement(&self) -> bool {
        !self.usage.is_empty()
    }

    /// Strongly connected components — Chow's artificial loop flow.
    pub fn cyclic(&self) -> &[CyclicRegion] {
        self.cyclic.get_or_init(|| {
            let _s = spillopt_obs::span("sccs");
            sccs(&self.cfg)
        })
    }

    /// Program Structure Tree — the hierarchical traversal.
    pub fn pst(&self) -> &Pst {
        self.pst.get_or_init(|| {
            let _s = spillopt_obs::span("pst");
            Pst::compute(&self.cfg)
        })
    }

    /// Dense derived CFG tables (reverse postorder, pred/succ CSRs,
    /// edge-indexed classification bits) — computed once, reused by the
    /// bit-parallel solver and every sweep in the placement suite.
    pub fn derived(&self) -> &DerivedCfg {
        self.derived.get_or_init(|| {
            let _s = spillopt_obs::span("derived_cfg");
            DerivedCfg::compute(&self.cfg)
        })
    }

    /// Dominators.
    pub fn doms(&self) -> &BlockDoms {
        self.doms.get_or_init(|| BlockDoms::compute(&self.cfg))
    }

    /// Post-dominators.
    pub fn postdoms(&self) -> &BlockPostDoms {
        self.postdoms
            .get_or_init(|| BlockPostDoms::compute(&self.cfg))
    }

    /// Natural loops.
    pub fn loops(&self) -> &LoopInfo {
        self.loops
            .get_or_init(|| LoopInfo::compute(&self.cfg, self.doms()))
    }

    /// Live ranges (shared with the eager usage derivation).
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Callee, FunctionBuilder, Reg};
    use spillopt_profile::random_walk_profile;
    use spillopt_regalloc::allocate;

    #[test]
    fn cache_matches_fresh_analyses() {
        let mut fb = FunctionBuilder::new("f", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(7);
        let _ = fb.call(Callee::External(0), &[]);
        fb.ret(Some(Reg::Virt(x)));
        let mut func = fb.finish();
        let target = Target::default();
        allocate(&mut func, &target, None);

        let cfg = Cfg::compute(&func);
        let profile = random_walk_profile(&cfg, 10, 16, 3);
        let cache = AnalysisCache::compute(&func, &target, profile);
        assert!(cache.needs_placement());
        assert_eq!(cache.cfg.num_blocks(), cfg.num_blocks());
        assert_eq!(cache.pst().num_regions(), Pst::compute(&cfg).num_regions());
        assert_eq!(cache.cyclic().len(), sccs(&cfg).len());
        assert_eq!(cache.loops().loops().len(), 0);
        assert!(cache.doms().dominates(cfg.entry(), cfg.entry()));
        let _ = cache.postdoms();
        let _ = cache.liveness();
    }
}
