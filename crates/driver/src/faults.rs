//! Fault-injection fuzzer: the containment oracle for fault-tolerant
//! sessions.
//!
//! A fault case starts from a [`spillopt_stress::gen_case`] module. A
//! fault-free run of a Degrade/Skip session (chosen by seed parity)
//! pins the oracle: the module report bytes, every function's
//! per-function report bytes, and an empty fault ledger. Then a fresh
//! session of the same configuration runs the same module with exactly
//! one seeded fault armed — a panic, a recoverable error, or an
//! instant budget trip at the `nth` visit of one named probe site
//! (the [`crate::session`] pipeline's own [`spillopt_obs::span`]
//! seams). Four invariants must hold:
//!
//! * **Containment** — the session call still returns `Ok`; one
//!   poisoned function never loses the module.
//! * **Ledger exactness** — a fired fault appears in
//!   [`crate::ModuleRun::faults`] exactly once, with the kind the
//!   injection implies; an unfired plan (site not reached) leaves the
//!   run byte-identical to the oracle with an empty ledger.
//! * **Blast radius** — every function other than the faulted one
//!   retires byte-identical to the fault-free oracle.
//! * **Recovery** — a clean call on the *same* session afterwards is
//!   byte-identical to the oracle with an empty ledger: no partial
//!   cache state survives the fault, and a single failure never
//!   engages the quarantine backoff.
//!
//! A violation is shrunk with [`spillopt_stress::minimize()`] under a
//! replay-the-fault predicate, so a [`FaultFailure`] prints a small
//! module and the one fault that still breaks it.

use crate::driver::FaultKind;
use crate::pool::try_run_indexed;
use crate::session::{FailurePolicy, OptimizerBuilder, Session};
use spillopt_ir::Module;
use spillopt_obs::fault::{FaultPlan, InjectionKind, InjectionScope};
use spillopt_stress::{gen_case, minimize, with_quiet_panics};
use spillopt_targets::TargetSpec;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The probe sites the fuzzer aims faults at: every span the session
/// pipeline crosses between "function picked up" and "function
/// retired", excluding the outermost `function` span itself (a fault
/// there would be outside the containment boundary by construction)
/// and sites reached only by special harnesses (`exact_search`,
/// `profile_synth`).
pub const FAULT_SITES: &[&str] = &[
    "allocate",
    "cfg",
    "liveness",
    "sccs",
    "pst",
    "derived_cfg",
    "solver_fixpoint",
    "place_entry_exit",
    "place_chow",
    "place_hier_seed",
    "place_hier_exec",
    "place_hier_jump",
    "validate",
    "price",
];

/// Configuration of one fault-injection run.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// First seed (inclusive).
    pub start: u64,
    /// Number of seeds to run.
    pub seeds: u64,
    /// Targets to check every seed on.
    pub targets: Vec<TargetSpec>,
    /// Worker threads; `0` = available parallelism, `1` = serial.
    pub threads: usize,
}

/// A minimized containment violation.
#[derive(Clone, Debug)]
pub struct FaultFailure {
    /// The seed that produced the case.
    pub seed: u64,
    /// Registry name of the target it failed on.
    pub target: &'static str,
    /// The injected fault: `site@nth kind policy`.
    pub plan: String,
    /// Which invariant broke, with both sides where applicable.
    pub detail: String,
    /// IR text of the minimized module.
    pub minimized: String,
}

impl fmt::Display for FaultFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "seed {} on target {}: fault containment violated",
            self.seed, self.target
        )?;
        writeln!(f, "injected fault: {}", self.plan)?;
        writeln!(f, "{}", self.detail)?;
        writeln!(f, "minimized module:")?;
        write!(f, "{}", self.minimized)
    }
}

/// Aggregated outcome of a fault-injection run.
#[derive(Debug, Default)]
pub struct FaultSummary {
    /// `(target, seed)` cases checked (including failing ones).
    pub cases: usize,
    /// Cases whose armed fault actually fired (the site was reached).
    pub fired: u64,
    /// Fired cases retired by a degradation-ladder rung.
    pub degraded: u64,
    /// Fired cases retired as unoptimized passthroughs.
    pub skipped: u64,
    /// Functions generated across all cases.
    pub functions: usize,
    /// Minimized counterexamples, ordered by seed then registry order.
    pub failures: Vec<FaultFailure>,
}

impl FaultSummary {
    /// `true` when every invariant held on every case.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The single fault a seed arms, plus the policy its sessions use.
/// Pure in the seed, independent of the module (so the minimizer can
/// shrink the module under a fixed plan).
fn seeded_plan(seed: u64) -> (FaultPlan, FailurePolicy) {
    let mix = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xfa17;
    let site = FAULT_SITES[(mix % FAULT_SITES.len() as u64) as usize];
    let nth = (mix >> 8) % 8;
    let kind = match (mix >> 16) % 3 {
        0 => InjectionKind::Panic,
        1 => InjectionKind::Error,
        _ => InjectionKind::Budget,
    };
    let policy = if seed.is_multiple_of(2) {
        FailurePolicy::Degrade
    } else {
        FailurePolicy::Skip
    };
    (FaultPlan { site, nth, kind }, policy)
}

/// The ledger kind a fired injection must surface as.
fn expected_kind(kind: InjectionKind) -> FaultKind {
    match kind {
        InjectionKind::Panic => FaultKind::Panic,
        InjectionKind::Error => FaultKind::InvalidPlacement,
        InjectionKind::Budget => FaultKind::BudgetExceeded,
    }
}

fn session(spec: &TargetSpec, policy: FailurePolicy) -> Result<Session, String> {
    OptimizerBuilder::new()
        .target_spec(spec.clone())
        .threads(1)
        .on_fault(policy)
        .build()
        .map_err(|e| format!("session build failed: {e}"))
}

/// What a passing case measured: did the fault fire, and how was the
/// faulted function retired.
struct CaseStats {
    fired: bool,
    degraded: bool,
    skipped: bool,
}

/// Runs the four-invariant check for one `(module, plan, policy)`
/// triple. `Err` is a containment violation (the only thing the
/// minimizer chases).
fn check_case(
    spec: &TargetSpec,
    module: &Module,
    plan: FaultPlan,
    policy: FailurePolicy,
) -> Result<CaseStats, String> {
    // Fault-free oracle on a fresh session of the same configuration.
    let oracle = session(spec, policy)?
        .optimize(module)
        .map_err(|e| format!("fault-free oracle run failed: {e}"))?;
    if !oracle.faults().is_empty() {
        return Err(format!(
            "fault-free run has a non-empty ledger: {}",
            oracle.faults()[0]
        ));
    }
    let oracle_bytes = oracle.report.to_json().to_compact();
    let oracle_funcs: Vec<String> = oracle
        .report
        .functions
        .iter()
        .map(|f| f.to_json().to_compact())
        .collect();

    // The faulted run: same configuration, one armed fault.
    let faulted = session(spec, policy)?;
    let (run, fired) = {
        let scope = InjectionScope::arm(vec![plan]);
        let run = faulted
            .optimize(module)
            .map_err(|e| format!("session failed instead of containing the fault: {e}"))?;
        let fired = scope.fired();
        (run, fired)
    };

    if fired == 0 {
        // Site not reached: the plan must have been invisible.
        let bytes = run.report.to_json().to_compact();
        if bytes != oracle_bytes {
            return Err(format!(
                "unfired fault changed the report\n  oracle:  {oracle_bytes}\n  faulted: {bytes}"
            ));
        }
        if !run.faults().is_empty() {
            return Err(format!(
                "unfired fault left a ledger entry: {}",
                run.faults()[0]
            ));
        }
        return Ok(CaseStats {
            fired: false,
            degraded: false,
            skipped: false,
        });
    }

    // Exactly one armed fault, consume-once semantics: it fired once
    // and must sit in the ledger exactly once, as the right kind.
    let faults = run.faults();
    if faults.len() != 1 {
        return Err(format!(
            "fired fault surfaced {} ledger entries (want exactly 1): {:?}",
            faults.len(),
            faults
        ));
    }
    let fault = &faults[0];
    if fault.kind != expected_kind(plan.kind) {
        return Err(format!(
            "ledger kind {} does not match injected {} ({})",
            fault.kind.name(),
            plan.kind.name(),
            fault
        ));
    }
    if run.report.functions.len() != oracle_funcs.len() {
        return Err(format!(
            "faulted run retired {} functions, oracle {}",
            run.report.functions.len(),
            oracle_funcs.len()
        ));
    }
    // Blast radius: every healthy function byte-identical to the oracle.
    for (i, f) in run.report.functions.iter().enumerate() {
        if i == fault.index {
            continue;
        }
        let bytes = f.to_json().to_compact();
        if bytes != oracle_funcs[i] {
            return Err(format!(
                "healthy function {i} diverged under a fault in function {}\n  oracle:  {}\n  faulted: {bytes}",
                fault.index, oracle_funcs[i]
            ));
        }
    }

    // Recovery: a clean call on the same session matches the oracle
    // byte-for-byte — no partial cache state, no quarantine after a
    // single failure.
    let clean = faulted
        .optimize(module)
        .map_err(|e| format!("post-fault clean run failed: {e}"))?;
    let clean_bytes = clean.report.to_json().to_compact();
    if clean_bytes != oracle_bytes {
        return Err(format!(
            "post-fault clean run diverged from the oracle\n  oracle: {oracle_bytes}\n  clean:  {clean_bytes}"
        ));
    }
    if !clean.faults().is_empty() {
        return Err(format!(
            "post-fault clean run has a ledger entry: {}",
            clean.faults()[0]
        ));
    }

    Ok(CaseStats {
        fired: true,
        degraded: matches!(fault.action, crate::driver::FaultAction::Degraded { .. }),
        skipped: fault.action == crate::driver::FaultAction::Skipped,
    })
}

/// `true` when `module` still violates an invariant under the fixed
/// fault plan (a panic in the harness itself is a *different* failure
/// and must not steer the minimizer).
fn still_violates(
    spec: &TargetSpec,
    module: &Module,
    plan: FaultPlan,
    policy: FailurePolicy,
) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        check_case(spec, module, plan, policy).is_err()
    }))
    .unwrap_or(false)
}

/// Runs one `(target, seed)` case; a failure comes back minimized.
fn fault_seed(spec: &TargetSpec, seed: u64) -> Result<(usize, CaseStats), Box<FaultFailure>> {
    let case = gen_case(&spec.to_target(), seed);
    let (plan, policy) = seeded_plan(seed);
    let plan_text = format!(
        "{}@{} {} under policy {}",
        plan.site,
        plan.nth,
        plan.kind.name(),
        policy.name()
    );
    let detail = match check_case(spec, &case.module, plan, policy) {
        Ok(stats) => return Ok((case.module.num_funcs(), stats)),
        Err(detail) => detail,
    };
    let (module, _) = minimize(&case.module, &case.runs, |m, _| {
        still_violates(spec, m, plan, policy)
    });
    let detail = check_case(spec, &module, plan, policy)
        .err()
        .unwrap_or(detail);
    Err(Box::new(FaultFailure {
        seed,
        target: spec.name,
        plan: plan_text,
        detail,
        minimized: module.to_string(),
    }))
}

/// Runs the fault-injection sweep over `config.seeds` seeds ×
/// `config.targets` targets on the work-stealing pool. Deterministic:
/// the summary (including failure order) is a pure function of the
/// configuration.
pub fn run_faults(config: &FaultConfig) -> FaultSummary {
    let mut items: Vec<(TargetSpec, u64)> = Vec::new();
    for seed in config.start..config.start.saturating_add(config.seeds) {
        for spec in &config.targets {
            items.push((spec.clone(), seed));
        }
    }
    let cases = items.len();
    let coords: Vec<(&'static str, u64)> = items.iter().map(|(s, seed)| (s.name, *seed)).collect();
    // Sessions run inline (threads(1)), injection scopes are
    // thread-local, and the containment boundary converts pipeline
    // panics into ledger entries; this net covers a panic in the
    // generator, harness, or minimizer itself, converting it into a
    // failure that names its (target, seed) instead of killing the
    // sweep.
    let outcomes: Vec<Result<(usize, CaseStats), Box<FaultFailure>>> =
        match try_run_indexed(items, config.threads, move |_, (spec, seed)| {
            with_quiet_panics(|| fault_seed(&spec, seed))
        }) {
            Ok(outcomes) => outcomes,
            Err(p) => {
                let (target, seed) = coords[p.index];
                return FaultSummary {
                    cases,
                    failures: vec![FaultFailure {
                        seed,
                        target,
                        plan: String::new(),
                        detail: format!("fault harness panicked: {}", p.message()),
                        minimized: String::new(),
                    }],
                    ..FaultSummary::default()
                };
            }
        };

    let mut summary = FaultSummary {
        cases,
        ..FaultSummary::default()
    };
    for outcome in outcomes {
        match outcome {
            Ok((functions, stats)) => {
                summary.functions += functions;
                summary.fired += stats.fired as u64;
                summary.degraded += stats.degraded as u64;
                summary.skipped += stats.skipped as u64;
            }
            Err(failure) => summary.failures.push(*failure),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_smoke_passes_on_every_registered_target() {
        let summary = run_faults(&FaultConfig {
            start: 0,
            seeds: 12,
            targets: spillopt_targets::registry(),
            threads: 0,
        });
        assert_eq!(summary.cases, 12 * spillopt_targets::registry().len());
        assert!(
            summary.passed(),
            "containment violations:\n{}",
            summary
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(summary.functions > 0);
        // The site/occurrence mix must actually land faults, and both
        // retirement paths must be exercised across the sweep.
        assert!(summary.fired > 0, "no injected fault ever fired");
        assert!(
            summary.degraded + summary.skipped >= summary.fired,
            "fired faults unaccounted for"
        );
    }

    #[test]
    fn fault_sweep_is_deterministic() {
        let config = FaultConfig {
            start: 40,
            seeds: 4,
            targets: spillopt_targets::registry(),
            threads: 1,
        };
        let a = run_faults(&config);
        let b = run_faults(&config);
        assert_eq!(a.fired, b.fired);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
