//! Applying a coloring: rewriting virtual registers to physical ones.

use spillopt_ir::{Function, InstKind, PReg, Reg};

/// Replaces every virtual register with its assigned physical register and
/// removes the identity moves that coalescing produced. Returns the number
/// of removed moves.
///
/// # Panics
///
/// Panics if any virtual register lacks an assignment (the allocator only
/// calls this after a spill-free coloring).
pub fn apply_coloring(func: &mut Function, assignment: &[Option<PReg>]) -> usize {
    let mut removed = 0;
    for bi in 0..func.num_blocks() {
        let b = spillopt_ir::BlockId::from_index(bi);
        let old = std::mem::take(&mut func.block_mut(b).insts);
        let mut out = Vec::with_capacity(old.len());
        for mut inst in old {
            inst.for_each_reg_mut(|r| {
                if let Reg::Virt(v) = *r {
                    let p = assignment[v.index()]
                        .unwrap_or_else(|| panic!("vreg {v} has no assigned register"));
                    *r = Reg::Phys(p);
                }
            });
            if let InstKind::Move { dst, src } = &inst.kind {
                if dst == src {
                    removed += 1;
                    continue;
                }
            }
            out.push(inst);
        }
        func.block_mut(b).insts = out;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{verify_function, FunctionBuilder, RegDiscipline};

    #[test]
    fn rewrites_to_physical_and_drops_identity_moves() {
        let mut fb = FunctionBuilder::new("f", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let y = fb.new_vreg();
        fb.mov(Reg::Virt(y), Reg::Virt(x));
        fb.ret(Some(Reg::Virt(y)));
        let mut f = fb.finish();
        // Coalesced: both map to r5.
        let assignment = vec![Some(PReg::new(5)); f.num_vregs()];
        let removed = apply_coloring(&mut f, &assignment);
        assert_eq!(removed, 1);
        assert!(verify_function(&f, RegDiscipline::Physical).is_empty());
    }
}
