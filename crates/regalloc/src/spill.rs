//! Spill code insertion for uncolorable virtual registers.

use spillopt_ir::{DenseBitSet, FrameSlot, Function, Inst, InstKind, MemKind, Origin, Reg, VReg};
use std::collections::HashMap;

/// Rewrites `func`, spilling the given virtual registers to fresh frame
/// slots: every use reads through a fresh temporary loaded just before,
/// every def writes a fresh temporary stored just after. Returns the new
/// temporaries (which must not be re-spilled — their live ranges are
/// minimal).
pub fn insert_spill_code(func: &mut Function, spills: &[VReg]) -> DenseBitSet {
    let mut slot_of: HashMap<VReg, FrameSlot> = HashMap::new();
    for &v in spills {
        slot_of.insert(v, func.frame_mut().alloc_slot());
    }

    let mut new_temps = Vec::new();
    for bi in 0..func.num_blocks() {
        let b = spillopt_ir::BlockId::from_index(bi);
        let old = std::mem::take(&mut func.block_mut(b).insts);
        let mut out = Vec::with_capacity(old.len());
        for mut inst in old {
            let mut pre: Vec<Inst> = Vec::new();
            let mut post: Vec<Inst> = Vec::new();
            // Replace each spilled operand with a fresh temporary.
            let mut replace = |r: &mut Reg,
                               func: &mut Function,
                               pre: &mut Vec<Inst>,
                               post: &mut Vec<Inst>,
                               is_def: bool| {
                let Reg::Virt(v) = *r else { return };
                let Some(&slot) = slot_of.get(&v) else {
                    return;
                };
                let t = func.new_vreg();
                new_temps.push(t);
                if is_def {
                    post.push(Inst::with_origin(
                        InstKind::Store {
                            src: Reg::Virt(t),
                            slot,
                            kind: MemKind::Spill,
                        },
                        Origin::Spill,
                    ));
                } else {
                    pre.push(Inst::with_origin(
                        InstKind::Load {
                            dst: Reg::Virt(t),
                            slot,
                            kind: MemKind::Spill,
                        },
                        Origin::Spill,
                    ));
                }
                *r = Reg::Virt(t);
            };
            // We must distinguish uses from defs while rewriting; walk the
            // operands and compare against the def list. A register that
            // is both use and def (e.g. `v = add v, 1`) gets a load, a
            // fresh temp for the def, and a store.
            match &mut inst.kind {
                InstKind::Bin { dst, lhs, rhs, .. } => {
                    replace(lhs, func, &mut pre, &mut post, false);
                    replace(rhs, func, &mut pre, &mut post, false);
                    replace(dst, func, &mut pre, &mut post, true);
                }
                InstKind::BinImm { dst, lhs, .. } => {
                    replace(lhs, func, &mut pre, &mut post, false);
                    replace(dst, func, &mut pre, &mut post, true);
                }
                InstKind::Move { dst, src } => {
                    replace(src, func, &mut pre, &mut post, false);
                    replace(dst, func, &mut pre, &mut post, true);
                }
                InstKind::LoadImm { dst, .. } => {
                    replace(dst, func, &mut pre, &mut post, true);
                }
                InstKind::Load { dst, .. } => {
                    replace(dst, func, &mut pre, &mut post, true);
                }
                InstKind::Store { src, .. } => {
                    replace(src, func, &mut pre, &mut post, false);
                }
                InstKind::Call { args, ret, .. } => {
                    for a in args {
                        replace(a, func, &mut pre, &mut post, false);
                    }
                    if let Some(r) = ret {
                        replace(r, func, &mut pre, &mut post, true);
                    }
                }
                InstKind::Branch { lhs, rhs, .. } => {
                    replace(lhs, func, &mut pre, &mut post, false);
                    replace(rhs, func, &mut pre, &mut post, false);
                }
                InstKind::Return { value } => {
                    if let Some(v) = value {
                        replace(v, func, &mut pre, &mut post, false);
                    }
                }
                InstKind::Jump { .. } => {}
            }
            out.extend(pre);
            let is_term = inst.is_terminator();
            out.push(inst);
            if is_term {
                debug_assert!(post.is_empty(), "terminators do not define registers");
            }
            out.extend(post);
        }
        func.block_mut(b).insts = out;
    }

    let mut set = DenseBitSet::new(func.num_vregs());
    for t in new_temps {
        set.insert(t.index());
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{BinOp, Cfg, FunctionBuilder, Module, Target};
    use spillopt_profile::Machine;

    #[test]
    fn spilled_function_computes_same_result() {
        let mut fb = FunctionBuilder::new("f", 1);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let p = fb.param(0);
        let one = fb.li(10);
        let s = fb.bin(BinOp::Mul, Reg::Virt(p), Reg::Virt(one));
        fb.ret(Some(Reg::Virt(s)));
        let f = fb.finish();

        let mut module = Module::new("m");
        let fid = module.add_func(f.clone());
        let target = Target::default();
        let mut m = Machine::new(&module, &target);
        let reference = m.call(fid, &[7]).unwrap();

        let mut spilled = f.clone();
        let temps = insert_spill_code(&mut spilled, &[p, s]);
        assert!(!temps.is_empty());
        assert!(
            spillopt_ir::verify_function(&spilled, spillopt_ir::RegDiscipline::Virtual).is_empty()
        );
        let mut module2 = Module::new("m2");
        let fid2 = module2.add_func(spilled.clone());
        let mut m2 = Machine::new(&module2, &target);
        assert_eq!(m2.call(fid2, &[7]).unwrap(), reference);
        // Spill loads/stores recorded as spill overhead.
        assert!(m2.counts().spill_code_overhead() > 0);
        let _ = Cfg::compute(&spilled);
    }

    #[test]
    fn def_and_use_of_same_vreg_handled() {
        // v = v + 1 with v spilled: load, add into temp, store.
        let mut fb = FunctionBuilder::new("g", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let v = fb.li(5);
        fb.emit(InstKind::BinImm {
            op: BinOp::Add,
            dst: Reg::Virt(v),
            lhs: Reg::Virt(v),
            imm: 1,
        });
        fb.ret(Some(Reg::Virt(v)));
        let f = fb.finish();
        let mut module = Module::new("m");
        let target = Target::default();
        let fid = module.add_func(f.clone());
        let mut m = Machine::new(&module, &target);
        let reference = m.call(fid, &[]).unwrap();
        assert_eq!(reference, 6);

        let mut spilled = f;
        insert_spill_code(&mut spilled, &[v]);
        let mut module2 = Module::new("m2");
        let fid2 = module2.add_func(spilled);
        let mut m2 = Machine::new(&module2, &target);
        assert_eq!(m2.call(fid2, &[]).unwrap(), 6);
    }
}
