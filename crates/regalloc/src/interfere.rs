//! Interference graph construction.

use spillopt_ir::{BitMatrix, Cfg, DenseBitSet, Function, InstKind, Liveness, Reg, Target};

/// An interference graph over the register universe (virtual registers
/// followed by physical registers; physical nodes are precolored).
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    n: usize,
    num_vregs: usize,
    matrix: BitMatrix,
    neighbors: Vec<Vec<u32>>,
    /// Move-related pairs (both virtual) for coalescing.
    pub moves: Vec<(u32, u32)>,
    /// Virtual registers live across at least one call site.
    pub crosses_call: DenseBitSet,
    /// Use/def frequency per node, weighted by block execution counts.
    pub weight: Vec<u64>,
}

impl InterferenceGraph {
    /// Builds the interference graph of `func` using `block_weight` as the
    /// per-block frequency for spill costs.
    ///
    /// The adjacency accumulates word-parallel: a def's row ORs in the
    /// whole live-after set at once, and symmetry plus the neighbor lists
    /// are restored in one pass at the end. The resulting edge *set* is
    /// identical to [`InterferenceGraph::build_reference`] (neighbor list
    /// order differs; nothing consumes the order).
    pub fn build(
        func: &Function,
        _cfg: &Cfg,
        target: &Target,
        liveness: &Liveness,
        block_weight: &[u64],
    ) -> Self {
        let universe = liveness.universe();
        let n = universe.len();
        let num_vregs = universe.num_vregs();
        let mut g = InterferenceGraph {
            n,
            num_vregs,
            matrix: BitMatrix::new(n, n),
            neighbors: vec![Vec::new(); n],
            moves: Vec::new(),
            crosses_call: DenseBitSet::new(num_vregs),
            weight: vec![0; n],
        };

        // All physical registers mutually interfere (they are distinct
        // resources).
        for a in num_vregs..n {
            for b in num_vregs..n {
                if a != b {
                    g.matrix.set(a, b);
                }
            }
        }

        for b in func.block_ids() {
            let w = block_weight[b.index()];
            liveness.for_each_inst_backwards(func, target, b, |idx, live_after| {
                let inst = &func.block(b).insts[idx];
                // Spill-cost weights: every mention of a node costs.
                inst.for_each_use(|r| {
                    let i = universe.index(r);
                    g.weight[i] = g.weight[i].saturating_add(w);
                });
                inst.for_each_def(|r| {
                    let i = universe.index(r);
                    g.weight[i] = g.weight[i].saturating_add(w);
                });

                // A def interferes with everything live after it, except
                // that a move's destination does not interfere with its
                // source (classic coalescing-friendly rule).
                let move_src: Option<usize> = match &inst.kind {
                    InstKind::Move { src, .. } => Some(universe.index(*src)),
                    _ => None,
                };
                inst.for_each_def(|r| {
                    let d = universe.index(r);
                    // The move-source exemption only skips *adding* the
                    // edge here; an edge recorded into this row by some
                    // other instruction must survive the union+unset.
                    let src_had = move_src.map(|s| g.matrix.contains(d, s));
                    g.matrix.row_union_words(d, live_after.words());
                    g.matrix.unset(d, d);
                    if let (Some(s), Some(false)) = (move_src, src_had) {
                        g.matrix.unset(d, s);
                    }
                });
                inst.for_each_clobber(target, |p| {
                    let d = universe.index(Reg::Phys(p));
                    g.matrix.row_union_words(d, live_after.words());
                    g.matrix.unset(d, d);
                });
                if matches!(inst.kind, InstKind::Call { .. }) {
                    for l in live_after.iter() {
                        if l < num_vregs {
                            g.crosses_call.insert(l);
                        }
                    }
                    // Exclude the call's own definition: it is written
                    // after the call completes.
                    inst.for_each_def(|r| {
                        let d = universe.index(r);
                        if d < num_vregs {
                            g.crosses_call.remove(d);
                        }
                    });
                }
                // Record vreg-vreg moves for coalescing.
                if let InstKind::Move { dst, src } = &inst.kind {
                    if dst.is_virt() && src.is_virt() {
                        g.moves
                            .push((universe.index(*dst) as u32, universe.index(*src) as u32));
                    }
                }
            });
        }

        // Symmetrize (rows accumulated def-side only) and derive the
        // neighbor lists from the closed matrix.
        let mut scratch: Vec<usize> = Vec::new();
        for r in 0..n {
            scratch.clear();
            scratch.extend(g.matrix.row_iter(r));
            for &c in &scratch {
                g.matrix.set(c, r);
            }
        }
        for r in 0..n {
            g.neighbors[r] = g.matrix.row_iter(r).map(|c| c as u32).collect();
        }
        g
    }

    /// The retired push-per-edge construction, kept verbatim as the
    /// reference for differential tests and the perf-trajectory bench.
    /// Same interference relation as [`InterferenceGraph::build`].
    pub fn build_reference(
        func: &Function,
        _cfg: &Cfg,
        target: &Target,
        liveness: &Liveness,
        block_weight: &[u64],
    ) -> Self {
        let universe = liveness.universe();
        let n = universe.len();
        let num_vregs = universe.num_vregs();
        let mut g = InterferenceGraph {
            n,
            num_vregs,
            matrix: BitMatrix::new(n, n),
            neighbors: vec![Vec::new(); n],
            moves: Vec::new(),
            crosses_call: DenseBitSet::new(num_vregs),
            weight: vec![0; n],
        };

        // All physical registers mutually interfere (they are distinct
        // resources).
        for a in num_vregs..n {
            for b in num_vregs + 1 + (a - num_vregs)..n {
                g.add_edge(a, b);
            }
        }

        for b in func.block_ids() {
            let w = block_weight[b.index()];
            liveness.for_each_inst_backwards(func, target, b, |idx, live_after| {
                let inst = &func.block(b).insts[idx];
                // Spill-cost weights: every mention of a node costs.
                inst.for_each_use(|r| {
                    let i = universe.index(r);
                    g.weight[i] = g.weight[i].saturating_add(w);
                });
                inst.for_each_def(|r| {
                    let i = universe.index(r);
                    g.weight[i] = g.weight[i].saturating_add(w);
                });

                // A def interferes with everything live after it, except
                // that a move's destination does not interfere with its
                // source (classic coalescing-friendly rule).
                let move_src: Option<usize> = match &inst.kind {
                    InstKind::Move { src, .. } => Some(universe.index(*src)),
                    _ => None,
                };
                inst.for_each_def(|r| {
                    let d = universe.index(r);
                    for l in live_after.iter() {
                        if l != d && Some(l) != move_src {
                            g.add_edge(d, l);
                        }
                    }
                });
                inst.for_each_clobber(target, |p| {
                    let d = universe.index(Reg::Phys(p));
                    for l in live_after.iter() {
                        if l != d {
                            g.add_edge(d, l);
                        }
                    }
                });
                if matches!(inst.kind, InstKind::Call { .. }) {
                    for l in live_after.iter() {
                        if l < num_vregs {
                            g.crosses_call.insert(l);
                        }
                    }
                    // Exclude the call's own definition: it is written
                    // after the call completes.
                    inst.for_each_def(|r| {
                        let d = universe.index(r);
                        if d < num_vregs {
                            g.crosses_call.remove(d);
                        }
                    });
                }
                // Record vreg-vreg moves for coalescing.
                if let InstKind::Move { dst, src } = &inst.kind {
                    if dst.is_virt() && src.is_virt() {
                        g.moves
                            .push((universe.index(*dst) as u32, universe.index(*src) as u32));
                    }
                }
            });
        }
        g
    }

    /// Number of nodes (virtual + physical).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of virtual-register nodes.
    pub fn num_vregs(&self) -> usize {
        self.num_vregs
    }

    /// Returns `true` if node `i` is a precolored physical register.
    pub fn is_precolored(&self, i: usize) -> bool {
        i >= self.num_vregs
    }

    /// Adds an interference edge.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b || self.matrix.contains(a, b) {
            return;
        }
        self.matrix.set(a, b);
        self.matrix.set(b, a);
        self.neighbors[a].push(b as u32);
        self.neighbors[b].push(a as u32);
    }

    /// Returns `true` if `a` and `b` interfere.
    pub fn interferes(&self, a: usize, b: usize) -> bool {
        self.matrix.contains(a, b)
    }

    /// The words of node `i`'s adjacency row (over all nodes).
    pub fn adjacency_words(&self, i: usize) -> &[u64] {
        self.matrix.row_words(i)
    }

    /// The neighbors of node `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[i]
    }

    /// The degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors[i].len()
    }

    /// The universe-relative index of a physical register node.
    pub fn preg_node(&self, p: spillopt_ir::PReg) -> usize {
        self.num_vregs + p.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{BinOp, Callee, FunctionBuilder, Liveness};

    #[test]
    fn simultaneously_live_vregs_interfere() {
        let mut fb = FunctionBuilder::new("f", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let y = fb.li(2);
        let z = fb.bin(BinOp::Add, Reg::Virt(x), Reg::Virt(y));
        fb.ret(Some(Reg::Virt(z)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let g = InterferenceGraph::build(&f, &cfg, &t, &lv, &vec![1; f.num_blocks()]);
        assert!(g.interferes(x.index(), y.index()));
        // z defined from x,y: z does not interfere with x (x dead after).
        assert!(!g.interferes(z.index(), x.index()));
    }

    #[test]
    fn call_crossing_vreg_interferes_with_caller_saved() {
        let mut fb = FunctionBuilder::new("g", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let _r = fb.call(Callee::External(0), &[]);
        fb.ret(Some(Reg::Virt(x)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let g = InterferenceGraph::build(&f, &cfg, &t, &lv, &vec![1; f.num_blocks()]);
        assert!(g.crosses_call.contains(x.index()));
        for &p in t.caller_saved() {
            assert!(
                g.interferes(x.index(), g.preg_node(p)),
                "x must interfere with caller-saved {p}"
            );
        }
        for &p in t.callee_saved() {
            assert!(!g.interferes(x.index(), g.preg_node(p)));
        }
    }

    #[test]
    fn call_result_does_not_cross_its_own_call() {
        let mut fb = FunctionBuilder::new("h", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let r = fb.call(Callee::External(0), &[]);
        fb.ret(Some(Reg::Virt(r)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let g = InterferenceGraph::build(&f, &cfg, &t, &lv, &vec![1; f.num_blocks()]);
        assert!(!g.crosses_call.contains(r.index()));
    }

    #[test]
    fn move_operands_recorded_not_interfering() {
        let mut fb = FunctionBuilder::new("m", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let y = fb.new_vreg();
        fb.mov(Reg::Virt(y), Reg::Virt(x));
        fb.ret(Some(Reg::Virt(y)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let g = InterferenceGraph::build(&f, &cfg, &t, &lv, &vec![1; f.num_blocks()]);
        assert!(!g.interferes(x.index(), y.index()));
        assert!(g.moves.contains(&(y.index() as u32, x.index() as u32)));
    }

    /// The word-parallel build and the reference build must agree on the
    /// whole interference relation, weights, moves, and call-crossing
    /// sets (neighbor list *order* may differ).
    #[test]
    fn fast_build_matches_reference() {
        let mut fb = FunctionBuilder::new("d", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(1);
        let y = fb.li(2);
        let m = fb.new_vreg();
        fb.mov(Reg::Virt(m), Reg::Virt(x));
        fb.branch(spillopt_ir::Cond::Lt, Reg::Virt(m), Reg::Virt(y), c, b);
        fb.switch_to(b);
        let _r = fb.call(Callee::External(0), &[]);
        let z = fb.bin(BinOp::Add, Reg::Virt(m), Reg::Virt(y));
        fb.ret(Some(Reg::Virt(z)));
        fb.switch_to(c);
        fb.ret(Some(Reg::Virt(y)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let w = vec![3; f.num_blocks()];
        let fast = InterferenceGraph::build(&f, &cfg, &t, &lv, &w);
        let slow = InterferenceGraph::build_reference(&f, &cfg, &t, &lv, &w);
        assert_eq!(fast.num_nodes(), slow.num_nodes());
        for i in 0..fast.num_nodes() {
            for j in 0..fast.num_nodes() {
                assert_eq!(
                    fast.interferes(i, j),
                    slow.interferes(i, j),
                    "edge ({i},{j})"
                );
            }
            let mut a: Vec<u32> = fast.neighbors(i).to_vec();
            let mut b: Vec<u32> = slow.neighbors(i).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighbors of {i}");
        }
        assert_eq!(fast.weight, slow.weight);
        assert_eq!(fast.moves, slow.moves);
        assert_eq!(fast.crosses_call, slow.crosses_call);
    }
}
