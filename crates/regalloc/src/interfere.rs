//! Interference graph construction.

use spillopt_ir::{Cfg, DenseBitSet, Function, InstKind, Liveness, Reg, Target};

/// An interference graph over the register universe (virtual registers
/// followed by physical registers; physical nodes are precolored).
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    n: usize,
    num_vregs: usize,
    matrix: Vec<DenseBitSet>,
    neighbors: Vec<Vec<u32>>,
    /// Move-related pairs (both virtual) for coalescing.
    pub moves: Vec<(u32, u32)>,
    /// Virtual registers live across at least one call site.
    pub crosses_call: DenseBitSet,
    /// Use/def frequency per node, weighted by block execution counts.
    pub weight: Vec<u64>,
}

impl InterferenceGraph {
    /// Builds the interference graph of `func` using `block_weight` as the
    /// per-block frequency for spill costs.
    pub fn build(
        func: &Function,
        _cfg: &Cfg,
        target: &Target,
        liveness: &Liveness,
        block_weight: &[u64],
    ) -> Self {
        let universe = liveness.universe();
        let n = universe.len();
        let num_vregs = universe.num_vregs();
        let mut g = InterferenceGraph {
            n,
            num_vregs,
            matrix: vec![DenseBitSet::new(n); n],
            neighbors: vec![Vec::new(); n],
            moves: Vec::new(),
            crosses_call: DenseBitSet::new(num_vregs),
            weight: vec![0; n],
        };

        // All physical registers mutually interfere (they are distinct
        // resources).
        for a in num_vregs..n {
            for b in num_vregs + 1 + (a - num_vregs)..n {
                g.add_edge(a, b);
            }
        }

        for b in func.block_ids() {
            let w = block_weight[b.index()];
            liveness.for_each_inst_backwards(func, target, b, |idx, live_after| {
                let inst = &func.block(b).insts[idx];
                // Spill-cost weights: every mention of a node costs.
                inst.for_each_use(|r| {
                    let i = universe.index(r);
                    g.weight[i] = g.weight[i].saturating_add(w);
                });
                inst.for_each_def(|r| {
                    let i = universe.index(r);
                    g.weight[i] = g.weight[i].saturating_add(w);
                });

                // A def interferes with everything live after it, except
                // that a move's destination does not interfere with its
                // source (classic coalescing-friendly rule).
                let move_src: Option<usize> = match &inst.kind {
                    InstKind::Move { src, .. } => Some(universe.index(*src)),
                    _ => None,
                };
                inst.for_each_def(|r| {
                    let d = universe.index(r);
                    for l in live_after.iter() {
                        if l != d && Some(l) != move_src {
                            g.add_edge(d, l);
                        }
                    }
                });
                inst.for_each_clobber(target, |p| {
                    let d = universe.index(Reg::Phys(p));
                    for l in live_after.iter() {
                        if l != d {
                            g.add_edge(d, l);
                        }
                    }
                });
                if matches!(inst.kind, InstKind::Call { .. }) {
                    for l in live_after.iter() {
                        if l < num_vregs {
                            g.crosses_call.insert(l);
                        }
                    }
                    // Exclude the call's own definition: it is written
                    // after the call completes.
                    inst.for_each_def(|r| {
                        let d = universe.index(r);
                        if d < num_vregs {
                            g.crosses_call.remove(d);
                        }
                    });
                }
                // Record vreg-vreg moves for coalescing.
                if let InstKind::Move { dst, src } = &inst.kind {
                    if dst.is_virt() && src.is_virt() {
                        g.moves
                            .push((universe.index(*dst) as u32, universe.index(*src) as u32));
                    }
                }
            });
        }
        g
    }

    /// Number of nodes (virtual + physical).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of virtual-register nodes.
    pub fn num_vregs(&self) -> usize {
        self.num_vregs
    }

    /// Returns `true` if node `i` is a precolored physical register.
    pub fn is_precolored(&self, i: usize) -> bool {
        i >= self.num_vregs
    }

    /// Adds an interference edge.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b || self.matrix[a].contains(b) {
            return;
        }
        self.matrix[a].insert(b);
        self.matrix[b].insert(a);
        self.neighbors[a].push(b as u32);
        self.neighbors[b].push(a as u32);
    }

    /// Returns `true` if `a` and `b` interfere.
    pub fn interferes(&self, a: usize, b: usize) -> bool {
        self.matrix[a].contains(b)
    }

    /// The neighbors of node `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[i]
    }

    /// The degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors[i].len()
    }

    /// The universe-relative index of a physical register node.
    pub fn preg_node(&self, p: spillopt_ir::PReg) -> usize {
        self.num_vregs + p.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{BinOp, Callee, FunctionBuilder, Liveness};

    #[test]
    fn simultaneously_live_vregs_interfere() {
        let mut fb = FunctionBuilder::new("f", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let y = fb.li(2);
        let z = fb.bin(BinOp::Add, Reg::Virt(x), Reg::Virt(y));
        fb.ret(Some(Reg::Virt(z)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let g = InterferenceGraph::build(&f, &cfg, &t, &lv, &vec![1; f.num_blocks()]);
        assert!(g.interferes(x.index(), y.index()));
        // z defined from x,y: z does not interfere with x (x dead after).
        assert!(!g.interferes(z.index(), x.index()));
    }

    #[test]
    fn call_crossing_vreg_interferes_with_caller_saved() {
        let mut fb = FunctionBuilder::new("g", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let _r = fb.call(Callee::External(0), &[]);
        fb.ret(Some(Reg::Virt(x)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let g = InterferenceGraph::build(&f, &cfg, &t, &lv, &vec![1; f.num_blocks()]);
        assert!(g.crosses_call.contains(x.index()));
        for &p in t.caller_saved() {
            assert!(
                g.interferes(x.index(), g.preg_node(p)),
                "x must interfere with caller-saved {p}"
            );
        }
        for &p in t.callee_saved() {
            assert!(!g.interferes(x.index(), g.preg_node(p)));
        }
    }

    #[test]
    fn call_result_does_not_cross_its_own_call() {
        let mut fb = FunctionBuilder::new("h", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let r = fb.call(Callee::External(0), &[]);
        fb.ret(Some(Reg::Virt(r)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let g = InterferenceGraph::build(&f, &cfg, &t, &lv, &vec![1; f.num_blocks()]);
        assert!(!g.crosses_call.contains(r.index()));
    }

    #[test]
    fn move_operands_recorded_not_interfering() {
        let mut fb = FunctionBuilder::new("m", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let y = fb.new_vreg();
        fb.mov(Reg::Virt(y), Reg::Virt(x));
        fb.ret(Some(Reg::Virt(y)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let g = InterferenceGraph::build(&f, &cfg, &t, &lv, &vec![1; f.num_blocks()]);
        assert!(!g.interferes(x.index(), y.index()));
        assert!(g.moves.contains(&(y.index() as u32, x.index() as u32)));
    }
}
