//! # spillopt-regalloc
//!
//! A Chaitin/Briggs graph-coloring register allocator — the substrate the
//! paper's experiments run on ("The register allocator of GCC was replaced
//! with a Chaitin/Briggs style graph-coloring register allocator").
//!
//! Pipeline per function: liveness → interference graph (with call
//! clobbers and physical precolored nodes) → conservative coalescing →
//! Briggs optimistic coloring with a callee-saved preference for
//! call-crossing values → spill code insertion and reiteration → physical
//! rewrite.
//!
//! The allocator deliberately does **not** insert callee-saved
//! save/restore code: exporting which callee-saved registers are busy in
//! which blocks (via `spillopt_core::CalleeSavedUsage::from_function`) and
//! leaving their placement to the post-allocation passes is precisely the
//! problem setup of the paper.
//!
//! # Examples
//!
//! ```
//! use spillopt_ir::{Callee, FunctionBuilder, Module, Reg, Target, RegDiscipline};
//! use spillopt_regalloc::allocate;
//!
//! // A value alive across a call needs a callee-saved register.
//! let mut fb = FunctionBuilder::new("f", 0);
//! let b = fb.create_block(None);
//! fb.switch_to(b);
//! let x = fb.li(7);
//! let _ = fb.call(Callee::External(0), &[]);
//! fb.ret(Some(Reg::Virt(x)));
//! let mut func = fb.finish();
//!
//! let target = Target::default();
//! let result = allocate(&mut func, &target, None);
//! assert!(result.spilled_vregs == 0);
//! assert!(!result.used_callee_saved.is_empty());
//! assert!(spillopt_ir::verify_function(&func, RegDiscipline::Physical).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod color;
pub mod interfere;
pub mod rewrite;
pub mod spill;

use spillopt_ir::{Cfg, DenseBitSet, Function, Liveness, PReg, Reg, Target};
use spillopt_profile::EdgeProfile;

pub use color::{color, color_reference, Coloring};
pub use interfere::InterferenceGraph;
pub use rewrite::apply_coloring;
pub use spill::insert_spill_code;

/// Summary of one allocation run.
#[derive(Clone, Debug, Default)]
pub struct RegAllocResult {
    /// Virtual registers sent to memory.
    pub spilled_vregs: usize,
    /// Build/color/spill rounds needed.
    pub iterations: usize,
    /// Move instructions removed by coalescing.
    pub coalesced_moves: usize,
    /// The callee-saved registers the allocation uses (these need
    /// save/restore code from a placement pass).
    pub used_callee_saved: Vec<PReg>,
}

/// Allocates `func`'s virtual registers to physical registers, editing the
/// function in place. `profile` (if given) weights spill costs by block
/// execution counts; otherwise static weights are used.
///
/// On return the function is fully physical
/// ([`RegDiscipline::Physical`](spillopt_ir::RegDiscipline) verifies) but
/// **violates** the callee-saved convention until a placement pass inserts
/// save/restore code.
///
/// # Panics
///
/// Panics if the function still needs spills after 16 rounds (cannot
/// happen for well-formed inputs on targets with ≥ 4 registers).
pub fn allocate(
    func: &mut Function,
    target: &Target,
    profile: Option<&EdgeProfile>,
) -> RegAllocResult {
    let mut result = RegAllocResult::default();
    let mut no_spill = DenseBitSet::new(func.num_vregs());

    // Spill rewriting only edits instruction lists — the block structure
    // (and with it the CFG snapshot and per-block weights) is invariant
    // across rounds, so both are computed once. (The reference
    // implementation recomputes them per round; the results are
    // identical.)
    let cfg = Cfg::compute(func);
    let weights: Vec<u64> = match profile {
        Some(p) => func.block_ids().map(|b| p.block_count(b).max(1)).collect(),
        None => {
            // Static heuristic: deeper loops cost more.
            let doms = spillopt_ir::BlockDoms::compute(&cfg);
            let loops = spillopt_ir::LoopInfo::compute(&cfg, &doms);
            func.block_ids()
                .map(|b| 10u64.saturating_pow(loops.depth(b).min(6) as u32))
                .collect()
        }
    };

    for round in 0..16 {
        result.iterations = round + 1;
        let liveness = Liveness::compute(func, &cfg, target);
        let graph = InterferenceGraph::build(func, &cfg, target, &liveness, &weights);
        // Resize the no-spill set to the (possibly grown) vreg space.
        let mut ns = DenseBitSet::new(func.num_vregs());
        for i in no_spill.iter() {
            ns.insert(i);
        }
        let coloring = color(&graph, target, &ns);
        if coloring.spills.is_empty() {
            assert_coloring_valid(&graph, &coloring, func);
            result.coalesced_moves = apply_coloring(func, &coloring.assignment);
            result.used_callee_saved = used_callee_saved(func, target);
            return result;
        }
        result.spilled_vregs += coloring.spills.len();
        let temps = insert_spill_code(func, &coloring.spills);
        no_spill = {
            let mut s = DenseBitSet::new(func.num_vregs());
            for i in ns.iter().chain(temps.iter()) {
                s.insert(i);
            }
            s
        };
    }
    panic!("register allocation did not converge for `{}`", func.name());
}

/// As [`allocate`], running the retired reference implementations of
/// liveness, interference-graph construction, and coloring. Kept for the
/// perf-trajectory bench (`spillopt bench`) and differential tests; the
/// produced function, result summary, and every intermediate decision
/// are identical to [`allocate`].
pub fn allocate_reference(
    func: &mut Function,
    target: &Target,
    profile: Option<&EdgeProfile>,
) -> RegAllocResult {
    let mut result = RegAllocResult::default();
    let mut no_spill = DenseBitSet::new(func.num_vregs());

    for round in 0..16 {
        result.iterations = round + 1;
        let cfg = Cfg::compute(func);
        let weights: Vec<u64> = match profile {
            Some(p) => func.block_ids().map(|b| p.block_count(b).max(1)).collect(),
            None => {
                // Static heuristic: deeper loops cost more.
                let doms = spillopt_ir::BlockDoms::compute(&cfg);
                let loops = spillopt_ir::LoopInfo::compute(&cfg, &doms);
                func.block_ids()
                    .map(|b| 10u64.saturating_pow(loops.depth(b).min(6) as u32))
                    .collect()
            }
        };
        let liveness = Liveness::compute_reference(func, &cfg, target);
        let graph = InterferenceGraph::build_reference(func, &cfg, target, &liveness, &weights);
        // Resize the no-spill set to the (possibly grown) vreg space.
        let mut ns = DenseBitSet::new(func.num_vregs());
        for i in no_spill.iter() {
            ns.insert(i);
        }
        let coloring = color_reference(&graph, target, &ns);
        if coloring.spills.is_empty() {
            assert_coloring_valid(&graph, &coloring, func);
            result.coalesced_moves = apply_coloring(func, &coloring.assignment);
            result.used_callee_saved = used_callee_saved(func, target);
            return result;
        }
        result.spilled_vregs += coloring.spills.len();
        let temps = insert_spill_code(func, &coloring.spills);
        no_spill = {
            let mut s = DenseBitSet::new(func.num_vregs());
            for i in ns.iter().chain(temps.iter()) {
                s.insert(i);
            }
            s
        };
    }
    panic!("register allocation did not converge for `{}`", func.name());
}

/// Hard safety net: every interference edge of the original graph must be
/// honoured by the final assignment (coalescing or optimistic coloring
/// bugs would surface here instead of as silent miscompiles).
fn assert_coloring_valid(graph: &InterferenceGraph, coloring: &Coloring, func: &Function) {
    let nv = graph.num_vregs();
    for a in 0..nv {
        let Some(pa) = coloring.assignment[a] else {
            continue;
        };
        for &b in graph.neighbors(a) {
            let b = b as usize;
            if b < nv {
                if coloring.assignment[b] == Some(pa) && coloring.alias[a] != coloring.alias[b] {
                    panic!(
                        "coloring bug in `{}`: interfering v{a} and v{b} both got {pa}",
                        func.name()
                    );
                }
            } else if b - nv == pa.index() {
                panic!(
                    "coloring bug in `{}`: v{a} assigned precolored neighbour {pa}",
                    func.name()
                );
            }
        }
    }
}

/// The callee-saved registers mentioned by a (physical) function.
fn used_callee_saved(func: &Function, target: &Target) -> Vec<PReg> {
    let mut used = Vec::new();
    let mut seen = [false; 256];
    for b in func.block_ids() {
        for inst in &func.block(b).insts {
            let mut mark = |r: Reg| {
                if let Reg::Phys(p) = r {
                    if !seen[p.index()] && target.is_callee_saved(p) {
                        seen[p.index()] = true;
                        used.push(p);
                    }
                }
            };
            inst.for_each_use(&mut mark);
            inst.for_each_def(&mut mark);
        }
    }
    used.sort();
    used
}
