//! Briggs-style optimistic graph coloring with conservative coalescing.

use crate::interfere::InterferenceGraph;
use spillopt_ir::{BitMatrix, DenseBitSet, PReg, Target, UnionFind, VReg};

/// Outcome of one coloring attempt.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// Color (physical register) per virtual register, for colored vregs.
    pub assignment: Vec<Option<PReg>>,
    /// Virtual registers that must be spilled.
    pub spills: Vec<VReg>,
    /// Number of vreg pairs coalesced.
    pub coalesced: usize,
    /// The coalescing map: representative vreg per vreg.
    pub alias: Vec<u32>,
}

/// Attempts to color the graph with the target's registers.
///
/// `no_spill` marks vregs created by earlier spill rewriting (their live
/// ranges are minimal and respilling them cannot help); they are chosen
/// for spilling only if nothing else is available.
///
/// Decision-for-decision identical to [`color_reference`] (same
/// coalesces, same simplify order, same spill choices, same colors); the
/// rewrite replaces the per-node adjacency bitsets with one flat
/// [`BitMatrix`], precomputes the per-representative spill weights and
/// call-crossing flags that the reference rescanned per query, and
/// reuses scratch buffers instead of allocating in the select loop.
pub fn color(graph: &InterferenceGraph, target: &Target, no_spill: &DenseBitSet) -> Coloring {
    let nv = graph.num_vregs();
    let nn = graph.num_nodes();
    let k = target.num_regs();

    // --- Conservative (Briggs) coalescing on virtual pairs. ---
    let mut alias = UnionFind::new(nv);
    // Effective adjacency after coalescing, one flat matrix over all
    // nodes (rows only for vregs).
    let mut adj = BitMatrix::new(nv, nn);
    for i in 0..nv {
        adj.row_union_words(i, graph.adjacency_words(i));
    }
    let mut coalesced = 0;
    let disable_coalesce = std::env::var("SPILLOPT_NO_COALESCE").is_ok();
    let mut scratch_words: Vec<u64> = Vec::new();
    let mut scratch_items: Vec<usize> = Vec::new();
    for &(a, b) in &graph.moves {
        if disable_coalesce {
            break;
        }
        let (ra, rb) = (alias.find(a as usize), alias.find(b as usize));
        if ra == rb {
            continue;
        }
        // Interference test under aliasing: a neighbor recorded before a
        // later merge must be resolved through the alias map.
        let interferes = |alias: &mut UnionFind, adj: &BitMatrix, x: usize, y: usize| {
            adj.row_iter(x).any(|n| {
                let n = if n < nv { alias.find(n) } else { n };
                n == y
            })
        };
        if interferes(&mut alias, &adj, ra, rb) || interferes(&mut alias, &adj, rb, ra) {
            continue;
        }
        // Briggs test: the merged node must have < k neighbors of
        // significant degree.
        scratch_words.clear();
        scratch_words.extend_from_slice(adj.row_words(ra));
        for (w, o) in scratch_words.iter_mut().zip(adj.row_words(rb)) {
            *w |= o;
        }
        let mut significant = 0usize;
        for (wi, &word) in scratch_words.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let x = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let d = if x < nv {
                    adj.row_count(alias.find(x))
                } else {
                    graph.degree(x)
                };
                if d >= k {
                    significant += 1;
                }
            }
        }
        if significant < k {
            alias.union(ra, rb);
            let root = alias.find(ra);
            let other = if root == ra { rb } else { ra };
            adj.row_union_row_within(root, other);
            // Canonicalize so later tests and degree estimates see merged
            // representatives.
            scratch_items.clear();
            scratch_items.extend(adj.row_iter(root));
            adj.row_clear(root);
            for &x in &scratch_items {
                let y = if x < nv { alias.find(x) } else { x };
                if y != root {
                    adj.set(root, y);
                }
            }
            coalesced += 1;
        }
    }

    // Representative nodes after coalescing.
    let reps: Vec<usize> = (0..nv).filter(|&i| alias.find(i) == i).collect();
    // Re-point adjacency of representatives through aliases: a neighbor
    // that was coalesced must be counted via its representative. Also
    // fold the per-node weights and call-crossing flags onto their
    // representatives once, instead of rescanning all vregs per query.
    let mut rep_adj = BitMatrix::new(nv, nn);
    for &r in &reps {
        for x in adj.row_iter(r) {
            let y = if x < nv { alias.find(x) } else { x };
            if y != r {
                rep_adj.set(r, y);
            }
        }
    }
    let mut rep_weight = vec![0u64; nv];
    let mut rep_crosses = vec![false; nv];
    for v in 0..nv {
        let r = alias.find(v);
        rep_weight[r] = rep_weight[r].saturating_add(graph.weight[v]);
        if graph.crosses_call.contains(v) {
            rep_crosses[r] = true;
        }
    }

    // --- Simplify. ---
    let mut removed = DenseBitSet::new(nv);
    let mut degree: Vec<usize> = (0..nv).map(|i| rep_adj.row_count(i)).collect();
    let mut stack: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = reps.clone();
    while !remaining.is_empty() {
        // Pick a low-degree node if any.
        let pos = remaining.iter().position(|&i| degree[i] < k);
        let chosen = match pos {
            Some(p) => remaining.swap_remove(p),
            None => {
                // Potential spill: lowest weight/degree, avoiding
                // no-spill nodes.
                let mut best: Option<(usize, usize, u128)> = None; // (idx in remaining, node, key)
                for (ri, &i) in remaining.iter().enumerate() {
                    let banned = no_spill.contains(i);
                    let (w, d) = (rep_weight[i], rep_adj.row_count(i).max(1) as u64);
                    // key = w/d scaled; banned nodes sort last.
                    let key = ((banned as u128) << 100) | (((w as u128) << 32) / d as u128);
                    if best.is_none() || key < best.unwrap().2 {
                        best = Some((ri, i, key));
                    }
                }
                let (ri, node, _) = best.expect("non-empty remaining");
                remaining.swap_remove(ri);
                node
            }
        };
        removed.insert(chosen);
        for x in rep_adj.row_iter(chosen) {
            if x < nv && !removed.contains(x) {
                degree[x] = degree[x].saturating_sub(1);
            }
        }
        stack.push(chosen);
    }

    // --- Select (optimistic). ---
    // Preference: call-crossing nodes try callee-saved first; others try
    // caller-saved first. Within each class, low index first so few
    // distinct callee-saved registers get used.
    let mut color_of: Vec<Option<PReg>> = vec![None; nv];
    let mut spills = Vec::new();
    let mut forbidden = DenseBitSet::new(target.reg_index_limit());
    while let Some(i) = stack.pop() {
        forbidden.clear();
        for x in rep_adj.row_iter(i) {
            if x >= nv {
                forbidden.insert(x - nv);
            } else if let Some(p) = color_of[x] {
                forbidden.insert(p.index());
            }
        }
        let pick = if rep_crosses[i] {
            target
                .callee_saved()
                .iter()
                .chain(target.caller_saved())
                .copied()
                .find(|p| !forbidden.contains(p.index()))
        } else {
            // The target's allocatable order is caller-saved first —
            // exactly the preference for values that do not cross calls.
            target
                .allocatable()
                .find(|p| !forbidden.contains(p.index()))
        };
        match pick {
            Some(p) => color_of[i] = Some(p),
            None => spills.push(VReg::from_index(i)),
        }
    }

    // Propagate representative colors to aliases.
    let mut assignment = vec![None; nv];
    for v in 0..nv {
        assignment[v] = color_of[alias.find(v)];
    }
    let alias_vec: Vec<u32> = (0..nv).map(|v| alias.find(v) as u32).collect();

    Coloring {
        assignment,
        spills,
        coalesced,
        alias: alias_vec,
    }
}

/// The retired coloring implementation, kept verbatim as the reference
/// for differential tests and the perf-trajectory bench. Same output as
/// [`color`].
pub fn color_reference(
    graph: &InterferenceGraph,
    target: &Target,
    no_spill: &DenseBitSet,
) -> Coloring {
    let nv = graph.num_vregs();
    let k = target.num_regs();

    // --- Conservative (Briggs) coalescing on virtual pairs. ---
    let mut alias = UnionFind::new(nv);
    // Effective adjacency after coalescing, as bitsets over all nodes.
    let mut adj: Vec<DenseBitSet> = (0..nv)
        .map(|i| {
            let mut s = DenseBitSet::new(graph.num_nodes());
            for &x in graph.neighbors(i) {
                s.insert(x as usize);
            }
            s
        })
        .collect();
    let mut coalesced = 0;
    let disable_coalesce = std::env::var("SPILLOPT_NO_COALESCE").is_ok();
    for &(a, b) in &graph.moves {
        if disable_coalesce {
            break;
        }
        let (ra, rb) = (alias.find(a as usize), alias.find(b as usize));
        if ra == rb {
            continue;
        }
        // Interference test under aliasing: a neighbor recorded before a
        // later merge must be resolved through the alias map.
        let interferes = |alias: &mut UnionFind, adj: &[DenseBitSet], x: usize, y: usize| {
            adj[x].iter().any(|n| {
                let n = if n < nv { alias.find(n) } else { n };
                n == y
            })
        };
        if interferes(&mut alias, &adj, ra, rb) || interferes(&mut alias, &adj, rb, ra) {
            continue;
        }
        // Briggs test: the merged node must have < k neighbors of
        // significant degree.
        let mut merged = adj[ra].clone();
        merged.union_with(&adj[rb]);
        let significant = merged
            .iter()
            .filter(|&x| {
                let d = if x < nv {
                    adj[alias.find(x)].count()
                } else {
                    graph.degree(x)
                };
                d >= k
            })
            .count();
        if significant < k {
            alias.union(ra, rb);
            let root = alias.find(ra);
            let other = if root == ra { rb } else { ra };
            let other_set = adj[other].clone();
            adj[root].union_with(&other_set);
            // Canonicalize so later tests and degree estimates see merged
            // representatives.
            let items: Vec<usize> = adj[root].iter().collect();
            adj[root].clear();
            for x in items {
                let y = if x < nv { alias.find(x) } else { x };
                if y != root {
                    adj[root].insert(y);
                }
            }
            coalesced += 1;
        }
    }

    // Representative nodes after coalescing.
    let reps: Vec<usize> = (0..nv).filter(|&i| alias.find(i) == i).collect();
    // Re-point adjacency of representatives through aliases: a neighbor
    // that was coalesced must be counted via its representative.
    let resolve = |alias: &mut UnionFind, x: usize| -> usize {
        if x < nv {
            alias.find(x)
        } else {
            x
        }
    };
    let mut rep_adj: Vec<DenseBitSet> = vec![DenseBitSet::new(graph.num_nodes()); nv];
    for &r in &reps {
        let items: Vec<usize> = adj[r].iter().collect();
        for x in items {
            let y = resolve(&mut alias, x);
            if y != r {
                rep_adj[r].insert(y);
            }
        }
    }

    // Spill metric: weight / degree, with no-spill nodes effectively
    // infinite.
    let metric = |alias: &mut UnionFind, rep_adj: &[DenseBitSet], i: usize| -> (u64, u64) {
        let mut w = 0u64;
        for v in 0..nv {
            if alias.find(v) == i {
                w = w.saturating_add(graph.weight[v]);
            }
        }
        let d = rep_adj[i].count().max(1) as u64;
        (w, d)
    };

    // --- Simplify. ---
    let mut removed = DenseBitSet::new(nv);
    let mut degree: Vec<usize> = (0..nv).map(|i| rep_adj[i].count()).collect();
    let mut stack: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = reps.clone();
    while !remaining.is_empty() {
        // Pick a low-degree node if any.
        let pos = remaining.iter().position(|&i| degree[i] < k);
        let chosen = match pos {
            Some(p) => remaining.swap_remove(p),
            None => {
                // Potential spill: lowest weight/degree, avoiding
                // no-spill nodes.
                let mut best: Option<(usize, usize, u128)> = None; // (idx in remaining, node, key)
                for (ri, &i) in remaining.iter().enumerate() {
                    let banned = no_spill.contains(i);
                    let (w, d) = metric(&mut alias, &rep_adj, i);
                    // key = w/d scaled; banned nodes sort last.
                    let key = ((banned as u128) << 100) | (((w as u128) << 32) / d as u128);
                    if best.is_none() || key < best.unwrap().2 {
                        best = Some((ri, i, key));
                    }
                }
                let (ri, node, _) = best.expect("non-empty remaining");
                remaining.swap_remove(ri);
                node
            }
        };
        removed.insert(chosen);
        for x in rep_adj[chosen].iter() {
            if x < nv && !removed.contains(x) {
                degree[x] = degree[x].saturating_sub(1);
            }
        }
        stack.push(chosen);
    }

    // --- Select (optimistic). ---
    // Preference: call-crossing nodes try callee-saved first; others try
    // caller-saved first. Within each class, low index first so few
    // distinct callee-saved registers get used.
    let mut color_of: Vec<Option<PReg>> = vec![None; nv];
    let mut spills = Vec::new();
    while let Some(i) = stack.pop() {
        let mut forbidden = DenseBitSet::new(target.reg_index_limit());
        for x in rep_adj[i].iter() {
            if x >= nv {
                forbidden.insert(x - nv);
            } else if let Some(p) = color_of[x] {
                forbidden.insert(p.index());
            }
        }
        let crosses = (0..nv).any(|v| alias.find(v) == i && graph.crosses_call.contains(v));
        let order: Vec<PReg> = if crosses {
            target
                .callee_saved()
                .iter()
                .chain(target.caller_saved())
                .copied()
                .collect()
        } else {
            // The target's allocatable order is caller-saved first —
            // exactly the preference for values that do not cross calls.
            target.allocatable().collect()
        };
        match order.iter().find(|p| !forbidden.contains(p.index())) {
            Some(&p) => color_of[i] = Some(p),
            None => spills.push(VReg::from_index(i)),
        }
    }

    // Propagate representative colors to aliases.
    let mut assignment = vec![None; nv];
    for v in 0..nv {
        assignment[v] = color_of[alias.find(v)];
    }
    let alias_vec: Vec<u32> = (0..nv).map(|v| alias.find(v) as u32).collect();

    Coloring {
        assignment,
        spills,
        coalesced,
        alias: alias_vec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{BinOp, Callee, Cfg, FunctionBuilder, Liveness, Reg};

    fn build_graph(f: &spillopt_ir::Function, t: &Target) -> InterferenceGraph {
        let cfg = Cfg::compute(f);
        let lv = Liveness::compute(f, &cfg, t);
        InterferenceGraph::build(f, &cfg, t, &lv, &vec![1; f.num_blocks()])
    }

    #[test]
    fn colors_small_function_without_spills() {
        let mut fb = FunctionBuilder::new("f", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let y = fb.li(2);
        let z = fb.bin(BinOp::Add, Reg::Virt(x), Reg::Virt(y));
        fb.ret(Some(Reg::Virt(z)));
        let f = fb.finish();
        let t = Target::default();
        let g = build_graph(&f, &t);
        let c = color(&g, &t, &DenseBitSet::new(g.num_vregs()));
        assert!(c.spills.is_empty());
        let px = c.assignment[x.index()].unwrap();
        let py = c.assignment[y.index()].unwrap();
        assert_ne!(px, py, "interfering vregs share a color");
    }

    #[test]
    fn call_crossing_values_get_callee_saved() {
        let mut fb = FunctionBuilder::new("g", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let _ = fb.call(Callee::External(0), &[]);
        fb.ret(Some(Reg::Virt(x)));
        let f = fb.finish();
        let t = Target::default();
        let g = build_graph(&f, &t);
        let c = color(&g, &t, &DenseBitSet::new(g.num_vregs()));
        let px = c.assignment[x.index()].unwrap();
        assert!(t.is_callee_saved(px), "{px} should be callee-saved");
    }

    #[test]
    fn spills_under_tiny_target() {
        // 5 mutually-live vregs on a 4-register target force a spill.
        let t = Target::tiny();
        let mut fb = FunctionBuilder::with_target("h", 0, t.clone());
        let b = fb.create_block(None);
        fb.switch_to(b);
        let vs: Vec<_> = (0..5).map(|i| fb.li(i)).collect();
        let mut acc = vs[0];
        for v in &vs[1..] {
            acc = fb.bin(BinOp::Add, Reg::Virt(acc), Reg::Virt(*v));
        }
        fb.ret(Some(Reg::Virt(acc)));
        let f = fb.finish();
        let g = build_graph(&f, &t);
        let c = color(&g, &t, &DenseBitSet::new(g.num_vregs()));
        assert!(!c.spills.is_empty(), "expected at least one spill");
    }

    #[test]
    fn coalesces_moves() {
        let mut fb = FunctionBuilder::new("m", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let x = fb.li(1);
        let y = fb.new_vreg();
        fb.mov(Reg::Virt(y), Reg::Virt(x));
        fb.ret(Some(Reg::Virt(y)));
        let f = fb.finish();
        let t = Target::default();
        let g = build_graph(&f, &t);
        let c = color(&g, &t, &DenseBitSet::new(g.num_vregs()));
        assert!(c.coalesced >= 1);
        assert_eq!(c.assignment[x.index()], c.assignment[y.index()]);
    }

    /// The fast and reference colorings must agree decision for decision
    /// on a function with moves, calls, branches, and pressure.
    #[test]
    fn fast_matches_reference() {
        let t = Target::default();
        let mut fb = FunctionBuilder::new("p", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        let vs: Vec<_> = (0..20).map(|i| fb.li(i)).collect();
        let m = fb.new_vreg();
        fb.mov(Reg::Virt(m), Reg::Virt(vs[0]));
        fb.branch(spillopt_ir::Cond::Lt, Reg::Virt(m), Reg::Virt(vs[1]), c, b);
        fb.switch_to(b);
        let _ = fb.call(Callee::External(0), &[]);
        let mut acc = m;
        for v in &vs {
            acc = fb.bin(BinOp::Add, Reg::Virt(acc), Reg::Virt(*v));
        }
        fb.ret(Some(Reg::Virt(acc)));
        fb.switch_to(c);
        fb.ret(Some(Reg::Virt(vs[2])));
        let f = fb.finish();
        let g = build_graph(&f, &t);
        let ns = DenseBitSet::new(g.num_vregs());
        let fast = color(&g, &t, &ns);
        let slow = color_reference(&g, &t, &ns);
        assert_eq!(fast.assignment, slow.assignment);
        assert_eq!(fast.spills, slow.spills);
        assert_eq!(fast.coalesced, slow.coalesced);
        assert_eq!(fast.alias, slow.alias);
    }
}
