//! End-to-end pipeline tests: allocate registers, place callee-saved
//! save/restore code, execute, and require bit-identical results plus a
//! clean register-usage convention.

use spillopt_core::{
    entry_exit_placement, hierarchical_placement, insert_placement, CalleeSavedUsage, CostModel,
};
use spillopt_ir::{
    BinOp, Callee, Cfg, Cond, FuncId, FunctionBuilder, InstKind, Module, Reg, RegDiscipline, Target,
};
use spillopt_profile::Machine;
use spillopt_pst::Pst;
use spillopt_regalloc::allocate;

/// Builds `caller(n)`: a loop that accumulates `helper(i) + ext(i)` while
/// holding several values across calls — forcing callee-saved pressure.
fn build_module() -> (Module, FuncId) {
    let mut module = Module::new("e2e");

    // helper(x) = x * 3 + 1
    let mut hb = FunctionBuilder::new("helper", 1);
    let b = hb.create_block(None);
    hb.switch_to(b);
    let x = hb.param(0);
    let t = hb.bin_imm(BinOp::Mul, Reg::Virt(x), 3);
    let u = hb.bin_imm(BinOp::Add, Reg::Virt(t), 1);
    hb.ret(Some(Reg::Virt(u)));
    let helper = hb.finish();

    // caller(n): acc = 0; for i in 0..n { acc += helper(i) ^ (i << 1) }
    let mut fb = FunctionBuilder::new("caller", 1);
    let entry = fb.create_block(Some("entry"));
    let header = fb.create_block(Some("header"));
    let body = fb.create_block(Some("body"));
    let exit = fb.create_block(Some("exit"));
    fb.switch_to(entry);
    let n = fb.param(0);
    let i = fb.li(0);
    let acc = fb.li(0);
    fb.jump(header);
    fb.switch_to(header);
    fb.branch(Cond::Ge, Reg::Virt(i), Reg::Virt(n), exit, body);
    fb.switch_to(body);
    // These values must survive the call: i, n, acc.
    let r = fb.call(Callee::Func(FuncId::from_index(1)), &[Reg::Virt(i)]);
    let shifted = fb.bin_imm(BinOp::Shl, Reg::Virt(i), 1);
    let mixed = fb.bin(BinOp::Xor, Reg::Virt(r), Reg::Virt(shifted));
    fb.emit(InstKind::Bin {
        op: BinOp::Add,
        dst: Reg::Virt(acc),
        lhs: Reg::Virt(acc),
        rhs: Reg::Virt(mixed),
    });
    fb.emit(InstKind::BinImm {
        op: BinOp::Add,
        dst: Reg::Virt(i),
        lhs: Reg::Virt(i),
        imm: 1,
    });
    fb.jump(header);
    fb.switch_to(exit);
    fb.ret(Some(Reg::Virt(acc)));
    let caller = fb.finish();

    let caller_id = module.add_func(caller);
    let _helper_id = module.add_func(helper);
    (module, caller_id)
}

#[test]
fn allocation_plus_placement_preserves_semantics() {
    let (module, caller_id) = build_module();
    let target = Target::default();

    // Reference run on virtual registers; also collects profiles.
    let mut vm = Machine::new(&module, &target);
    let inputs: Vec<i64> = vec![0, 1, 5, 13];
    let reference: Vec<i64> = inputs
        .iter()
        .map(|&n| vm.call(caller_id, &[n]).unwrap())
        .collect();
    let profiles: Vec<_> = module.func_ids().map(|f| vm.edge_profile(f)).collect();

    // Allocate every function.
    let mut alloc_module = module.clone();
    for f in module.func_ids() {
        let profile = &profiles[f.index()];
        let func = alloc_module.func_mut(f);
        let result = allocate(func, &target, Some(profile));
        assert!(
            spillopt_ir::verify_function(func, RegDiscipline::Physical).is_empty(),
            "function {} not fully physical",
            func.name()
        );
        if func.name() == "caller" {
            assert!(
                !result.used_callee_saved.is_empty(),
                "caller must need callee-saved registers"
            );
        }
    }

    // Place callee-saved code with each technique and compare runs.
    for technique in ["entry_exit", "hierarchical_exec", "hierarchical_jump"] {
        let mut placed = alloc_module.clone();
        for f in module.func_ids() {
            let cfg = Cfg::compute(placed.func(f));
            assert_eq!(
                cfg.num_edges(),
                Cfg::compute(module.func(f)).num_edges(),
                "allocation must not change the CFG"
            );
            let usage = CalleeSavedUsage::from_function(placed.func(f), &cfg, &target);
            if usage.is_empty() {
                continue;
            }
            let placement = match technique {
                "entry_exit" => entry_exit_placement(&cfg, &usage),
                "hierarchical_exec" => {
                    let pst = Pst::compute(&cfg);
                    hierarchical_placement(
                        &cfg,
                        &pst,
                        &usage,
                        &profiles[f.index()],
                        CostModel::ExecutionCount,
                    )
                    .placement
                }
                _ => {
                    let pst = Pst::compute(&cfg);
                    hierarchical_placement(
                        &cfg,
                        &pst,
                        &usage,
                        &profiles[f.index()],
                        CostModel::JumpEdge,
                    )
                    .placement
                }
            };
            assert!(
                spillopt_core::check_placement(&cfg, &usage, &placement).is_empty(),
                "{technique}: invalid placement for {}",
                placed.func(f).name()
            );
            let func = placed.func_mut(f);
            insert_placement(func, &cfg, &placement);
            assert!(spillopt_ir::verify_function(func, RegDiscipline::Physical).is_empty());
        }

        let mut pm = Machine::new(&placed, &target);
        for (k, &n) in inputs.iter().enumerate() {
            let got = pm
                .call(caller_id, &[n])
                .unwrap_or_else(|e| panic!("{technique}: execution failed: {e}"));
            assert_eq!(
                got, reference[k],
                "{technique}: result mismatch for input {n}"
            );
        }
        // Callee-saved overhead was actually incurred and measured.
        assert!(pm.counts().callee_save_overhead() > 0, "{technique}");
    }
}

#[test]
fn source_instruction_counts_are_preserved() {
    // The allocator and placement add only overhead instructions; the
    // dynamic count of source-origin instructions (minus coalesced moves)
    // must not increase.
    let (module, caller_id) = build_module();
    let target = Target::default();
    let mut vm = Machine::new(&module, &target);
    vm.call(caller_id, &[9]).unwrap();
    let source_before = vm.counts().origin(spillopt_ir::Origin::Source);

    let mut alloc_module = module.clone();
    let profiles: Vec<_> = module.func_ids().map(|f| vm.edge_profile(f)).collect();
    for f in module.func_ids() {
        allocate(
            alloc_module.func_mut(f),
            &target,
            Some(&profiles[f.index()]),
        );
    }
    for f in module.func_ids() {
        let cfg = Cfg::compute(alloc_module.func(f));
        let usage = CalleeSavedUsage::from_function(alloc_module.func(f), &cfg, &target);
        if !usage.is_empty() {
            let placement = entry_exit_placement(&cfg, &usage);
            insert_placement(alloc_module.func_mut(f), &cfg, &placement);
        }
    }
    let mut pm = Machine::new(&alloc_module, &target);
    pm.call(caller_id, &[9]).unwrap();
    let source_after = pm.counts().origin(spillopt_ir::Origin::Source);
    assert!(
        source_after <= source_before,
        "coalescing may only remove source moves: {source_after} > {source_before}"
    );
    assert!(pm.counts().spill_code_overhead() > 0);
}

#[test]
fn spilling_under_register_pressure_still_correct() {
    // Force spills with the tiny target: many simultaneously live values.
    let target = Target::tiny();
    let mut fb = FunctionBuilder::with_target("pressure", 1, target.clone());
    let b = fb.create_block(None);
    fb.switch_to(b);
    let p = fb.param(0);
    let vs: Vec<_> = (1..8)
        .map(|k| fb.bin_imm(BinOp::Mul, Reg::Virt(p), k))
        .collect();
    let mut acc = p;
    for v in &vs {
        acc = fb.bin(BinOp::Add, Reg::Virt(acc), Reg::Virt(*v));
    }
    fb.ret(Some(Reg::Virt(acc)));
    let func = fb.finish();

    let mut module = Module::new("m");
    let fid = module.add_func(func);
    let mut vm = Machine::new(&module, &target);
    let reference = vm.call(fid, &[11]).unwrap();

    let mut placed = module.clone();
    let result = allocate(placed.func_mut(fid), &target, None);
    assert!(result.spilled_vregs > 0, "tiny target must force spills");
    let cfg = Cfg::compute(placed.func(fid));
    let usage = CalleeSavedUsage::from_function(placed.func(fid), &cfg, &target);
    if !usage.is_empty() {
        let placement = entry_exit_placement(&cfg, &usage);
        insert_placement(placed.func_mut(fid), &cfg, &placement);
    }
    let mut pm = Machine::new(&placed, &target);
    assert_eq!(pm.call(fid, &[11]).unwrap(), reference);
}

/// Allocation honours every registered backend convention: values that
/// cross calls land in that target's callee-saved set, the result
/// verifies physically, and behaviour is unchanged after placement.
#[test]
fn allocation_respects_every_registered_convention() {
    for spec in spillopt_targets::registry() {
        let target = spec.to_target();

        let mut module = Module::new("conv");
        let mut hb = FunctionBuilder::with_target("helper", 1, target.clone());
        let b = hb.create_block(None);
        hb.switch_to(b);
        let x = hb.param(0);
        let t = hb.bin_imm(BinOp::Mul, Reg::Virt(x), 3);
        hb.ret(Some(Reg::Virt(t)));
        let helper = module.add_func(hb.finish());

        // caller(n) holds a value across a call: callee-saved pressure.
        let mut fb = FunctionBuilder::with_target("caller", 1, target.clone());
        let b = fb.create_block(None);
        fb.switch_to(b);
        let n = fb.param(0);
        let kept = fb.bin_imm(BinOp::Add, Reg::Virt(n), 5);
        let h = fb.call(Callee::Func(helper), &[Reg::Virt(n)]);
        let sum = fb.bin(BinOp::Add, Reg::Virt(kept), Reg::Virt(h));
        fb.ret(Some(Reg::Virt(sum)));
        let caller = module.add_func(fb.finish());

        let mut vm = Machine::new(&module, &target);
        let reference = vm.call(caller, &[7]).unwrap();

        let mut placed = module.clone();
        for f in [helper, caller] {
            let result = allocate(placed.func_mut(f), &target, None);
            for r in &result.used_callee_saved {
                assert!(
                    target.is_callee_saved(*r),
                    "{}: {r} reported callee-saved but is not",
                    spec.name
                );
            }
            let errs = spillopt_ir::verify_function(placed.func(f), RegDiscipline::Physical);
            assert!(errs.is_empty(), "{}: {errs:?}", spec.name);
            let cfg = Cfg::compute(placed.func(f));
            let usage = CalleeSavedUsage::from_function(placed.func(f), &cfg, &target);
            if !usage.is_empty() {
                let placement = entry_exit_placement(&cfg, &usage);
                insert_placement(placed.func_mut(f), &cfg, &placement);
            }
        }
        let mut pm = Machine::new(&placed, &target);
        assert_eq!(
            pm.call(caller, &[7]).unwrap(),
            reference,
            "{}: behaviour changed",
            spec.name
        );
    }
}
