//! Differential well-definedness ("closedness") of a virtual module.
//!
//! A module is a valid differential-test subject only if every value it
//! reads is produced by the program itself: a read of a virtual register
//! must be dominated by a write, and a read of a physical register must
//! see a value written earlier in the same block (or an argument
//! register's incoming value, before any call clobbers it). Programs
//! that read stale state are *defined* under the interpreter (registers
//! read as zero or junk) but are not preserved by register allocation —
//! their pre- and post-allocation behaviours legitimately differ, so a
//! divergence on them is not a counterexample.
//!
//! The generator produces closed modules by construction; this check
//! exists for the *minimizer*, whose instruction deletions could
//! otherwise turn a real counterexample into an undefined-input
//! artifact.

use spillopt_ir::{Callee, DenseBitSet, Function, InstKind, Module, Reg, Target};

/// Returns `true` if every function of `module` is closed (see module
/// docs) and every internal call satisfies its callee's arity.
pub fn is_closed(module: &Module, target: &Target) -> bool {
    call_arity_ok(module) && module.funcs().all(|(_, f)| function_is_closed(f, target))
}

fn function_is_closed(func: &Function, target: &Target) -> bool {
    let nv = func.num_vregs();
    let n = func.num_blocks();
    if n == 0 {
        return true;
    }
    let cfg = spillopt_ir::Cfg::compute(func);

    // Must-assign dataflow over virtual registers: in[b] = ∩ out[preds],
    // the entry's in-set is empty (parameters arrive in physical
    // registers). Initialize non-entry blocks to "all assigned" (top).
    let full = {
        let mut s = DenseBitSet::new(nv);
        for i in 0..nv {
            s.insert(i);
        }
        s
    };
    let mut ins: Vec<DenseBitSet> = (0..n).map(|_| full.clone()).collect();
    ins[cfg.entry().index()] = DenseBitSet::new(nv);
    let mut outs: Vec<DenseBitSet> = (0..n).map(|_| full.clone()).collect();

    let mut changed = true;
    while changed {
        changed = false;
        for b in func.block_ids() {
            let bi = b.index();
            if b != cfg.entry() {
                let mut merged = full.clone();
                for p in cfg.pred_blocks(b) {
                    merged.intersect_with(&outs[p.index()]);
                }
                if merged != ins[bi] {
                    ins[bi] = merged;
                    changed = true;
                }
            }
            let mut cur = ins[bi].clone();
            for inst in &func.block(b).insts {
                inst.for_each_def(&mut |r| {
                    if let Reg::Virt(v) = r {
                        cur.insert(v.index());
                    }
                });
            }
            if cur != outs[bi] {
                outs[bi] = cur;
                changed = true;
            }
        }
    }

    // Checking pass: walk each block once with its fixpoint in-state,
    // validating vreg uses against the must-assign set and phys-reg uses
    // against block-local writes (argument registers count as written at
    // the top of the entry block, until the first call clobbers them).
    for b in func.block_ids() {
        let bi = b.index();
        let mut vregs = ins[bi].clone();
        let mut phys: Vec<bool> = vec![false; target.reg_index_limit()];
        if b == cfg.entry() {
            for a in target.arg_regs() {
                phys[a.index()] = true;
            }
        }
        for inst in &func.block(b).insts {
            let mut ok = true;
            inst.for_each_use(&mut |r| match r {
                Reg::Virt(v) => {
                    if !vregs.contains(v.index()) {
                        ok = false;
                    }
                }
                Reg::Phys(p) => {
                    if !phys.get(p.index()).copied().unwrap_or(false) {
                        ok = false;
                    }
                }
            });
            if !ok {
                return false;
            }
            if let InstKind::Call { callee, .. } = &inst.kind {
                // Calls clobber every caller-saved register; only the
                // return value (a def below) is live out of them. An
                // internal callee must also exist and receive all its
                // declared parameters — checked by the caller's arity.
                let _ = callee;
                for p in target.caller_saved() {
                    phys[p.index()] = false;
                }
            }
            inst.for_each_def(&mut |r| match r {
                Reg::Virt(v) => {
                    vregs.insert(v.index());
                }
                Reg::Phys(p) => {
                    if p.index() < phys.len() {
                        phys[p.index()] = true;
                    }
                }
            });
        }
    }

    true
}

/// Returns `true` if every internal call passes at least as many
/// arguments as its callee declares parameters.
pub fn call_arity_ok(module: &Module) -> bool {
    for (_, func) in module.funcs() {
        for b in func.block_ids() {
            for inst in &func.block(b).insts {
                if let InstKind::Call {
                    callee: Callee::Func(g),
                    args,
                    ..
                } = &inst.kind
                {
                    if g.index() >= module.num_funcs() || args.len() < module.func(*g).num_params()
                    {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use spillopt_ir::{BinOp, FunctionBuilder};

    #[test]
    fn generated_cases_are_closed() {
        let target = Target::default();
        for seed in 0..25u64 {
            let case = gen_case(&target, seed);
            assert!(is_closed(&case.module, &target), "seed {seed} not closed");
            assert!(call_arity_ok(&case.module), "seed {seed} bad arity");
        }
    }

    #[test]
    fn uninitialized_vreg_read_is_rejected() {
        let mut fb = FunctionBuilder::new("u", 0);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let v = fb.new_vreg();
        let w = fb.bin(BinOp::Add, Reg::Virt(v), Reg::Virt(v)); // v unwritten
        fb.ret(Some(Reg::Virt(w)));
        let mut m = Module::new("m");
        m.add_func(fb.finish());
        assert!(!is_closed(&m, &Target::default()));
    }

    #[test]
    fn stale_phys_read_after_call_is_rejected() {
        use spillopt_ir::{Callee, InstKind, PReg};
        let mut fb = FunctionBuilder::new("s", 1);
        let b = fb.create_block(None);
        fb.switch_to(b);
        let _ = fb.call(Callee::External(0), &[]);
        // Reads the argument register after the call clobbered it.
        let v = fb.new_vreg();
        fb.emit(InstKind::Move {
            dst: Reg::Virt(v),
            src: Reg::Phys(PReg::new(1)),
        });
        fb.ret(Some(Reg::Virt(v)));
        let mut m = Module::new("m");
        m.add_func(fb.finish());
        assert!(!is_closed(&m, &Target::default()));
    }
}
