//! # spillopt-stress
//!
//! Differential stress subsystem for the *spillopt* reproduction of Lupo
//! & Wilken (CGO 2006): a seeded random CFG/module generator plus four
//! oracles (three interpreter-backed, one backed by the exact
//! branch-and-bound solver), run across all four placement techniques
//! and every registered backend target.
//!
//! The paper's correctness claims — placements preserve the calling
//! convention, and the hierarchical jump-edge placement is never
//! dynamically worse than entry/exit or Chow's shrink-wrapping — are
//! exercised here on adversarial shapes the SPEC stand-ins never
//! produce: irreducible loops, multi-exit functions, critical-edge
//! meshes, zero-trip loops, extreme profile skew, and register pressure
//! at the register-file limit. See [`gen`] for the generator, [`oracle`]
//! for the checks, and [`mod@minimize`] for counterexample reduction. The
//! module driver wires this into the `spillopt stress` CLI subcommand
//! and the scheduled CI job.
//!
//! # Examples
//!
//! ```
//! use spillopt_stress::run_seed;
//!
//! let spec = spillopt_targets::pa_risc_like();
//! let report = run_seed(&spec, 7).expect("oracles hold");
//! assert!(report.functions >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod closed;
pub mod gen;
pub mod minimize;
pub mod oracle;

pub use closed::is_closed;
pub use gen::{gen_case, gen_case_scaled, StressCase};
pub use minimize::minimize;
pub use oracle::{
    check_case, check_case_with, CaseReport, ExactOptions, ExactStats, FailureKind, GapHist,
    ModelGapStats, OracleFailure, DEFAULT_GAP_PERCENT, STRATEGIES,
};

use spillopt_ir::display;
use spillopt_sync::Once;
use spillopt_targets::TargetSpec;
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

/// A fully-reported, minimized counterexample from one seed.
#[derive(Clone, Debug)]
pub struct SeedFailure {
    /// The seed that produced the case.
    pub seed: u64,
    /// Registry name of the target it failed on.
    pub target: &'static str,
    /// The oracle violation.
    pub failure: OracleFailure,
    /// IR text of the minimized module (feed to `spillopt --input` or a
    /// regression test).
    pub minimized: String,
    /// The minimized workload: `(function index, args)` pairs.
    pub runs: Vec<(usize, Vec<i64>)>,
}

impl fmt::Display for SeedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "seed {} on target {}: {}",
            self.seed, self.target, self.failure
        )?;
        writeln!(f, "workload:")?;
        for (func, args) in &self.runs {
            writeln!(f, "  call @{func}({args:?})")?;
        }
        writeln!(f, "minimized module:")?;
        write!(f, "{}", self.minimized)
    }
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with panic-hook output suppressed on this thread (the
/// oracles probe panicking pipelines; the default hook would spam
/// stderr with expected backtraces). Other threads keep normal output.
///
/// The previous quiet state is restored by a drop guard, so the flag
/// survives neither an unwinding `f` (a later genuine panic still
/// prints) nor nesting (an inner call cannot un-quiet the outer scope).
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            QUIET.with(|q| q.set(self.0));
        }
    }
    let _restore = Restore(QUIET.with(|q| q.replace(true)));
    f()
}

/// Renders a caught panic payload as a message (shared with the
/// driver's pool so the two layers report panics identically).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// As [`check_case`], but converting pipeline panics (allocator
/// non-convergence, placement validity assertions, insertion bugs) into
/// [`FailureKind::Panic`] failures instead of unwinding.
pub fn check_case_caught(
    module: &spillopt_ir::Module,
    runs: &[(spillopt_ir::FuncId, Vec<i64>)],
    spec: &TargetSpec,
) -> Result<CaseReport, OracleFailure> {
    check_case_caught_with(module, runs, spec, None)
}

/// As [`check_case_with`], but converting pipeline panics into
/// [`FailureKind::Panic`] failures instead of unwinding.
pub fn check_case_caught_with(
    module: &spillopt_ir::Module,
    runs: &[(spillopt_ir::FuncId, Vec<i64>)],
    spec: &TargetSpec,
    exact: Option<&ExactOptions>,
) -> Result<CaseReport, OracleFailure> {
    with_quiet_panics(|| {
        panic::catch_unwind(AssertUnwindSafe(|| {
            check_case_with(module, runs, spec, exact)
        }))
        .unwrap_or_else(|payload| {
            Err(OracleFailure {
                kind: FailureKind::Panic,
                strategy: None,
                detail: panic_message(payload.as_ref()),
            })
        })
    })
}

/// Accepts a minimized case only when it still fails with the original
/// failure's kind *and* strategy; otherwise falls back to the original
/// case.
///
/// Every reduction [`minimize()`] keeps was individually re-checked, but
/// flaky pipelines (fuel-dependent panics, allocator non-convergence)
/// can still re-classify between the last probe and the final report.
/// Reporting the *minimized module* with the *original failure* — what
/// `run_seed` used to do — produced counterexamples that do not
/// reproduce their own headline; the fallback keeps module and failure
/// consistent by construction.
pub fn confirm_minimized(
    original: (spillopt_ir::Module, Vec<(spillopt_ir::FuncId, Vec<i64>)>),
    original_failure: OracleFailure,
    minimized: (spillopt_ir::Module, Vec<(spillopt_ir::FuncId, Vec<i64>)>),
    recheck: Result<CaseReport, OracleFailure>,
) -> (
    spillopt_ir::Module,
    Vec<(spillopt_ir::FuncId, Vec<i64>)>,
    OracleFailure,
) {
    let (kind, strategy) = (original_failure.kind, original_failure.strategy);
    let confirmed = match recheck {
        Err(g) if g.kind == kind && g.strategy == strategy => {
            // Adopt the re-derived detail: it describes the module that
            // will actually be printed.
            (minimized.0, minimized.1, g)
        }
        _ => (original.0, original.1, original_failure),
    };
    debug_assert_eq!(confirmed.2.kind, kind);
    debug_assert_eq!(confirmed.2.strategy, strategy);
    confirmed
}

/// Generates the case for `(spec, seed)`, runs the oracle battery on it,
/// and — on failure — minimizes the counterexample before reporting.
///
/// This is the unit of work the driver's `spillopt stress` subcommand
/// and the test suites fan out over.
///
/// # Errors
///
/// Returns the minimized [`SeedFailure`] if any oracle fires.
pub fn run_seed(spec: &TargetSpec, seed: u64) -> Result<CaseReport, Box<SeedFailure>> {
    run_seed_with(spec, seed, None)
}

/// As [`run_seed`], optionally enabling the optimality-gap oracle.
///
/// # Errors
///
/// Returns the minimized [`SeedFailure`] if any oracle fires.
pub fn run_seed_with(
    spec: &TargetSpec,
    seed: u64,
    exact: Option<&ExactOptions>,
) -> Result<CaseReport, Box<SeedFailure>> {
    let make_failure = |failure: OracleFailure,
                        module: &spillopt_ir::Module,
                        runs: &[(spillopt_ir::FuncId, Vec<i64>)]| {
        Box::new(SeedFailure {
            seed,
            target: spec.name,
            failure,
            minimized: display::module_to_string(module),
            runs: runs.iter().map(|(f, a)| (f.index(), a.clone())).collect(),
        })
    };

    let target = match spec.try_to_target() {
        Ok(t) => t,
        Err(e) => {
            return Err(Box::new(SeedFailure {
                seed,
                target: spec.name,
                failure: OracleFailure {
                    kind: FailureKind::Reference,
                    strategy: None,
                    detail: format!("target malformed: {e}"),
                },
                minimized: String::new(),
                runs: Vec::new(),
            }))
        }
    };
    let case = gen_case(&target, seed);
    match check_case_caught_with(&case.module, &case.runs, spec, exact) {
        Ok(report) => Ok(report),
        Err(failure) => {
            // Shrink while the case stays a well-defined differential
            // subject and the *same* oracle keeps firing on the same
            // technique (a reduction that merely introduces undefined
            // inputs is not a counterexample).
            let (module, runs) = minimize(&case.module, &case.runs, |m, r| {
                closed::is_closed(m, &target)
                    && matches!(
                        check_case_caught_with(m, r, spec, exact),
                        Err(g) if g.kind == failure.kind && g.strategy == failure.strategy
                    )
            });
            // Re-check so the reported detail (costs, function names)
            // describes the module actually printed; fall back to the
            // unminimized case if the failure's identity drifted.
            let recheck = check_case_caught_with(&module, &runs, spec, exact);
            let (module, runs, failure) =
                confirm_minimized((case.module, case.runs), failure, (module, runs), recheck);
            Err(make_failure(failure, &module, &runs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::Module;

    #[test]
    fn run_seed_passes_on_the_default_target() {
        let spec = spillopt_targets::pa_risc_like();
        for seed in 0..4u64 {
            let r = run_seed(&spec, seed);
            match r {
                Ok(report) => assert!(report.functions >= 1),
                Err(f) => panic!("seed {seed} failed:\n{f}"),
            }
        }
    }

    #[test]
    fn quiet_panics_suppress_and_restore() {
        let r = with_quiet_panics(|| std::panic::catch_unwind(|| panic!("expected")).is_err());
        assert!(r);
        assert!(!QUIET.with(Cell::get));
    }

    fn fake_failure(kind: FailureKind, strategy: Option<&'static str>) -> OracleFailure {
        OracleFailure {
            kind,
            strategy,
            detail: "synthetic".to_string(),
        }
    }

    /// The reported module must reproduce the reported failure: a
    /// minimization whose final re-check drifts to a different kind (or
    /// stops failing entirely — e.g. fuel-dependent flakiness) must fall
    /// back to the original case instead of pairing the minimized
    /// module with the stale original failure.
    #[test]
    fn confirm_minimized_falls_back_when_the_failure_kind_drifts() {
        let original = Module::new("original");
        let minimized = Module::new("minimized");
        let orig_fail = fake_failure(FailureKind::NeverWorse, Some(STRATEGIES[3]));

        // Drifted kind: keep the original module and failure.
        let (m, _, f) = confirm_minimized(
            (original.clone(), vec![]),
            orig_fail.clone(),
            (minimized.clone(), vec![]),
            Err(fake_failure(FailureKind::Semantic, Some(STRATEGIES[3]))),
        );
        assert_eq!(m.name(), "original");
        assert_eq!(f.kind, FailureKind::NeverWorse);

        // Same kind, drifted strategy: also a different failure.
        let (m, _, f) = confirm_minimized(
            (original.clone(), vec![]),
            orig_fail.clone(),
            (minimized.clone(), vec![]),
            Err(fake_failure(FailureKind::NeverWorse, Some(STRATEGIES[0]))),
        );
        assert_eq!(m.name(), "original");
        assert_eq!(f.strategy, Some(STRATEGIES[3]));

        // No longer failing at all: fall back.
        let (m, _, f) = confirm_minimized(
            (original.clone(), vec![]),
            orig_fail.clone(),
            (minimized.clone(), vec![]),
            Ok(CaseReport::default()),
        );
        assert_eq!(m.name(), "original");
        assert_eq!(f.detail, "synthetic");

        // Preserved identity: keep the minimized module and adopt the
        // re-derived detail.
        let mut fresh = fake_failure(FailureKind::NeverWorse, Some(STRATEGIES[3]));
        fresh.detail = "re-derived".to_string();
        let (m, _, f) = confirm_minimized(
            (original, vec![]),
            orig_fail,
            (minimized, vec![]),
            Err(fresh),
        );
        assert_eq!(m.name(), "minimized");
        assert_eq!(f.detail, "re-derived");
    }
}
