//! Greedy counterexample minimization.
//!
//! The proptest shim deliberately does not shrink, so the stress
//! subsystem carries its own reducer: given a failing case and a
//! predicate "does this still fail the same way", it greedily applies
//! semantic-preserving-enough reductions — dropping whole functions
//! (rewriting their call sites to opaque externals), dropping workload
//! runs, and deleting straight-line instructions — keeping each reduction
//! only if the failure persists. Any verified module is a legal test
//! subject (the oracles compare a module against *itself*), so
//! reductions are free to change program meaning as long as the same
//! oracle keeps firing.

use spillopt_ir::{Callee, FuncId, InstKind, Module};

/// Budget of predicate evaluations one minimization may spend.
const MAX_CHECKS: usize = 600;

/// Minimizes `(module, runs)` under `still_fails`, which must return
/// `true` for the original input (and for any reduction to keep).
///
/// Returns the smallest failing case found within the evaluation budget.
pub fn minimize(
    module: &Module,
    runs: &[(FuncId, Vec<i64>)],
    mut still_fails: impl FnMut(&Module, &[(FuncId, Vec<i64>)]) -> bool,
) -> (Module, Vec<(FuncId, Vec<i64>)>) {
    let mut best = (module.clone(), runs.to_vec());
    let mut checks = 0usize;
    let spent = |n: &mut usize| {
        *n += 1;
        *n <= MAX_CHECKS
    };

    loop {
        let mut progressed = false;

        // 1. Drop workload runs (keep at least one).
        while best.1.len() > 1 {
            let mut reduced = false;
            for i in (0..best.1.len()).rev() {
                if !spent(&mut checks) {
                    return best;
                }
                let mut runs = best.1.clone();
                runs.remove(i);
                if still_fails(&best.0, &runs) {
                    best.1 = runs;
                    reduced = true;
                    progressed = true;
                    break;
                }
            }
            if !reduced {
                break;
            }
        }

        // 2. Drop whole functions, rewriting their call sites to externals.
        let mut k = best.0.num_funcs();
        while k > 0 {
            k -= 1;
            let victim = FuncId::from_index(k);
            if best.1.iter().any(|(f, _)| *f == victim) {
                continue;
            }
            if !spent(&mut checks) {
                return best;
            }
            let module = drop_function(&best.0, victim);
            let runs: Vec<_> = best
                .1
                .iter()
                .map(|(f, a)| (remap_after_drop(*f, victim), a.clone()))
                .collect();
            if still_fails(&module, &runs) {
                best = (module, runs);
                progressed = true;
            }
        }

        // 3. Trim instructions: whole block bodies first, then one
        //    trailing instruction at a time.
        for fi in 0..best.0.num_funcs() {
            let f = FuncId::from_index(fi);
            let blocks: Vec<_> = best.0.func(f).block_ids().collect();
            for b in blocks {
                let body_len = {
                    let blk = best.0.func(f).block(b);
                    blk.bottom_index()
                };
                if body_len == 0 {
                    continue;
                }
                // All body instructions at once.
                if !spent(&mut checks) {
                    return best;
                }
                let mut m = best.0.clone();
                m.func_mut(f).block_mut(b).insts.drain(0..body_len);
                if still_fails(&m, &best.1) {
                    best.0 = m;
                    progressed = true;
                    continue;
                }
                // One at a time, from the end of the body.
                for i in (0..body_len).rev() {
                    if !spent(&mut checks) {
                        return best;
                    }
                    let mut m = best.0.clone();
                    m.func_mut(f).block_mut(b).insts.remove(i);
                    if still_fails(&m, &best.1) {
                        best.0 = m;
                        progressed = true;
                    }
                }
            }
        }

        if !progressed {
            return best;
        }
    }
}

/// Rebuilds `module` without function `victim`: calls to it become
/// `ext:0`, calls to later functions are renumbered.
fn drop_function(module: &Module, victim: FuncId) -> Module {
    let mut out = Module::new(module.name());
    for (id, func) in module.funcs() {
        if id == victim {
            continue;
        }
        let mut func = func.clone();
        for b in func.block_ids().collect::<Vec<_>>() {
            for inst in &mut func.block_mut(b).insts {
                if let InstKind::Call { callee, .. } = &mut inst.kind {
                    if let Callee::Func(g) = callee {
                        if *g == victim {
                            *callee = Callee::External(0);
                        } else {
                            *g = remap_after_drop(*g, victim);
                        }
                    }
                }
            }
        }
        out.add_func(func);
    }
    out
}

fn remap_after_drop(f: FuncId, victim: FuncId) -> FuncId {
    if f.index() > victim.index() {
        FuncId::from_index(f.index() - 1)
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use spillopt_ir::Target;

    #[test]
    fn minimizer_shrinks_under_a_simple_predicate() {
        // Predicate: "the module still contains a call instruction in f0".
        let target = Target::default();
        let case = (0..50u64)
            .map(|s| gen_case(&target, s))
            .find(|c| c.module.num_funcs() > 1 && has_call(&c.module, FuncId::from_index(0)))
            .expect("some case with a call in f0");
        let (m, runs) = minimize(&case.module, &case.runs, |m, _| {
            has_call(m, FuncId::from_index(0))
        });
        assert!(has_call(&m, FuncId::from_index(0)));
        assert!(m.num_insts() <= case.module.num_insts());
        assert!(runs.len() <= case.runs.len());
        // Functions other than f0 (and run targets) should mostly be gone.
        assert!(m.num_funcs() <= case.module.num_funcs());
        // The reduced module must still be structurally sound enough to
        // re-verify at the virtual discipline (the oracle's entry gate).
        // (Not asserted: reductions may leave dead code, which verifies.)
    }

    fn has_call(m: &Module, f: FuncId) -> bool {
        let func = m.func(f);
        func.block_ids().any(|b| {
            func.block(b)
                .insts
                .iter()
                .any(|i| matches!(i.kind, InstKind::Call { .. }))
        })
    }
}
